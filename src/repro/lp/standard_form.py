"""Conversion of assembled LPs to equality standard form.

The from-scratch simplex backend operates on the classical form

    min  c @ y        s.t.  A @ y == b,   y >= 0.

This module rewrites a general model (bounded variables, ``<=``/``==`` rows)
into that form:

* a finite lower bound ``l`` is shifted out (``y = x - l``);
* a variable with ``l = -inf`` is split into a positive/negative pair;
* a finite upper bound becomes an extra ``<=`` row;
* every ``<=`` row receives a slack variable.

:func:`StandardFormLP.recover` maps a standard-form solution vector back to
the original variable space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import sparse

from repro.lp.problem import AssembledLP


@dataclass
class StandardFormLP:
    """``min c @ y  s.t.  A @ y == b, y >= 0`` plus the recovery recipe."""

    c: np.ndarray
    a: np.ndarray  # dense (m, n) — the simplex backend is dense
    b: np.ndarray
    objective_constant: float
    #: per original variable: (kind, data)
    #:   ("shift", (col, lower))        -> x = y[col] + lower
    #:   ("split", (col_pos, col_neg))  -> x = y[col_pos] - y[col_neg]
    recovery: List[Tuple[str, Tuple]]
    num_original: int
    #: per standard-form row: (kind, original index, sign) with kind one of
    #: "eq" / "ub" / "bound"; ``sign`` is -1 when the row was negated to
    #: normalise its rhs.  Lets backends map row duals back to the original
    #: constraints: dual_original = sign * dual_standard / row_scale.
    row_origin: List[Tuple[str, int, float]] = None  # type: ignore[assignment]
    #: per-row equilibration divisor applied to A and b (max |coeff|); keeps
    #: badly scaled rows from slipping past feasibility tolerances.
    row_scale: np.ndarray = None  # type: ignore[assignment]

    def recover(self, y: np.ndarray) -> np.ndarray:
        """Map a standard-form solution back to the original variables."""
        x = np.zeros(self.num_original)
        for i, (kind, data) in enumerate(self.recovery):
            if kind == "shift":
                col, lower = data
                x[i] = y[col] + lower
            else:
                col_pos, col_neg = data
                x[i] = y[col_pos] - y[col_neg]
        return x


def to_standard_form(asm: AssembledLP) -> StandardFormLP:
    """Rewrite an :class:`AssembledLP` into equality standard form."""
    n = asm.num_variables
    lowers = asm.bounds[:, 0]
    uppers = asm.bounds[:, 1]

    # --- variable rewriting ------------------------------------------------
    recovery: List[Tuple[str, Tuple]] = []
    col_of: List[Tuple[int, ...]] = []  # original var -> std-form column(s)
    next_col = 0
    obj_const = asm.objective_constant
    for i in range(n):
        lo = lowers[i]
        if np.isfinite(lo):
            recovery.append(("shift", (next_col, float(lo))))
            col_of.append((next_col,))
            obj_const += asm.c[i] * lo
            next_col += 1
        else:
            recovery.append(("split", (next_col, next_col + 1)))
            col_of.append((next_col, next_col + 1))
            next_col += 2
    n_std = next_col

    def expand_row(row: "sparse.csr_matrix") -> np.ndarray:
        """Expand a sparse row over original vars into std-form columns."""
        out = np.zeros(n_std)
        row = row.tocoo()
        for j, v in zip(row.col, row.data):
            cols = col_of[j]
            out[cols[0]] += v
            if len(cols) == 2:
                out[cols[1]] -= v
        return out

    # --- objective -----------------------------------------------------------
    c = np.zeros(n_std)
    for j in range(n):
        cols = col_of[j]
        c[cols[0]] += asm.c[j]
        if len(cols) == 2:
            c[cols[1]] -= asm.c[j]

    # --- rows: shift rhs by lower bounds ------------------------------------
    def shifted_rhs(mat: sparse.csr_matrix, rhs: np.ndarray) -> np.ndarray:
        if mat.shape[0] == 0:
            return rhs.copy()
        finite_lo = np.where(np.isfinite(lowers), lowers, 0.0)
        return rhs - mat @ finite_lo

    b_ub = shifted_rhs(asm.a_ub, asm.b_ub)
    b_eq = shifted_rhs(asm.a_eq, asm.b_eq)

    rows: List[np.ndarray] = []
    rhs: List[float] = []
    origins: List[Tuple[str, int, float]] = []
    slack_count = 0

    for r in range(asm.a_eq.shape[0]):
        rows.append(expand_row(asm.a_eq.getrow(r)))
        rhs.append(float(b_eq[r]))
        origins.append(("eq", r, 1.0))

    ub_rows: List[np.ndarray] = []
    for r in range(asm.a_ub.shape[0]):
        ub_rows.append(expand_row(asm.a_ub.getrow(r)))
        rhs.append(float(b_ub[r]))
        origins.append(("ub", r, 1.0))
        slack_count += 1

    # upper bounds become <= rows in shifted space: y <= upper - lower
    bound_rows: List[np.ndarray] = []
    for i in range(n):
        up = uppers[i]
        if np.isfinite(up):
            lo = lowers[i] if np.isfinite(lowers[i]) else 0.0
            row = np.zeros(n_std)
            cols = col_of[i]
            row[cols[0]] = 1.0
            if len(cols) == 2:
                row[cols[1]] = -1.0
            bound_rows.append(row)
            rhs.append(float(up - lo))
            origins.append(("bound", i, 1.0))
            slack_count += 1

    total_rows = len(rows) + len(ub_rows) + len(bound_rows)
    a = np.zeros((total_rows, n_std + slack_count))
    for r, row in enumerate(rows):
        a[r, :n_std] = row
    slack = 0
    for k, row in enumerate(ub_rows):
        r = len(rows) + k
        a[r, :n_std] = row
        a[r, n_std + slack] = 1.0
        slack += 1
    for k, row in enumerate(bound_rows):
        r = len(rows) + len(ub_rows) + k
        a[r, :n_std] = row
        a[r, n_std + slack] = 1.0
        slack += 1

    c_full = np.concatenate([c, np.zeros(slack_count)])
    b_full = np.asarray(rhs, dtype=float)

    # row equilibration: divide every row by its largest structural
    # coefficient so relative and absolute feasibility tolerances agree
    # (a row like 1e-8*x <= -1e-8 is a *100%* violation of x >= 1 even
    # though its absolute residual is tiny)
    if total_rows:
        struct = np.abs(a[:, :n_std])
        scale = struct.max(axis=1)
        scale[scale < 1e-300] = 1.0
        a /= scale[:, None]
        b_full /= scale
    else:
        scale = np.ones(0)

    # normalise rows to b >= 0 (phase-1 requirement)
    neg = b_full < 0
    a[neg] *= -1.0
    b_full[neg] *= -1.0
    origins = [
        (kind, idx, -sign if neg[r] else sign)
        for r, (kind, idx, sign) in enumerate(origins)
    ]

    return StandardFormLP(
        c=c_full,
        a=a,
        b=b_full,
        objective_constant=obj_const,
        recovery=recovery,
        num_original=n,
        row_origin=origins,
        row_scale=scale,
    )
