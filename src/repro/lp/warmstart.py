"""Warm-start state threaded through consecutive simplex solves.

A :class:`WarmStartContext` travels with a *stream* of structurally related
LPs — the epoch controller's per-epoch models.  It owns

* the :class:`~repro.lp.standard_form.StandardFormCache` reusing the
  standard-form rewrite structure across epochs, and
* the :class:`~repro.lp.standard_form.BasisSnapshot` of the previous
  epoch's optimal basis, which the simplex backend repairs onto the next
  model (slack fill-in for new rows, drop of departed columns) and uses as
  its starting point instead of a cold two-phase solve.

The context also keeps per-stream statistics mirrored into the installed
:mod:`repro.obs.registry` (``simplex.warm_solves`` by outcome and
``simplex.warm_pivots_saved``); pivots saved are measured against the most
recent cold solve of the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.lp.standard_form import BasisSnapshot, StandardFormCache, StandardFormLP
from repro.obs.registry import current_registry


@dataclass
class WarmStartContext:
    """Mutable warm-start state for one stream of related solves."""

    std_cache: StandardFormCache = field(default_factory=StandardFormCache)
    snapshot: Optional[BasisSnapshot] = None
    #: pivot count of the most recent cold solve (the warm-saving baseline)
    cold_iterations: Optional[int] = None
    warm_solves: int = 0
    cold_solves: int = 0
    #: warm attempts that had to fall back to a cold solve
    fallbacks: int = 0
    pivots_saved: int = 0
    #: per-shard optimal bases keyed on block identity (see repro.lp.blocks);
    #: lets a shard warm-start from its own previous epoch even as global
    #: column positions shift with workload churn
    shard_basis: Dict[tuple, BasisSnapshot] = field(default_factory=dict)
    #: epoch solves that went through the sharded decomposition
    sharded_solves: int = 0
    #: sharded attempts that fell back to the monolithic solve
    sharded_fallbacks: int = 0
    #: individual shard sub-solves (both rounds)
    shard_solves: int = 0
    #: shard sub-solves re-run in the allocation round
    shard_resolves: int = 0

    def record_solve(
        self,
        std: StandardFormLP,
        basis: np.ndarray,
        iterations: int,
        used_warm: bool,
        attempted: bool,
    ) -> None:
        """Account one finished optimal solve and snapshot its basis."""
        snap = BasisSnapshot.capture(std, basis)
        if snap is not None:
            self.snapshot = snap
        registry = current_registry()
        if used_warm:
            self.warm_solves += 1
            saved = max(0, (self.cold_iterations or 0) - iterations)
            self.pivots_saved += saved
            if registry is not None:
                registry.counter(
                    "simplex.warm_solves", help="simplex solves by warm-start outcome"
                ).inc(outcome="warm")
                registry.counter(
                    "simplex.warm_pivots_saved",
                    help="pivots avoided vs the last cold solve of the stream",
                ).inc(saved)
        else:
            self.cold_solves += 1
            self.cold_iterations = iterations
            if attempted:
                self.fallbacks += 1
            if registry is not None:
                registry.counter(
                    "simplex.warm_solves", help="simplex solves by warm-start outcome"
                ).inc(outcome="fallback" if attempted else "cold")

    def stats(self) -> dict:
        """JSON-ready summary (used by ``repro bench``)."""
        return {
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "fallbacks": self.fallbacks,
            "pivots_saved": self.pivots_saved,
            "std_cache_hits": self.std_cache.hits,
            "std_cache_misses": self.std_cache.misses,
            "sharded_solves": self.sharded_solves,
            "sharded_fallbacks": self.sharded_fallbacks,
            "shard_solves": self.shard_solves,
            "shard_resolves": self.shard_resolves,
        }
