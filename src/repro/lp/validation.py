"""Independent checks on LP solutions.

These run in tests and (optionally) after every scheduler solve to catch
modelling or backend bugs: constraint satisfaction, bound satisfaction, and a
cross-backend optimality (duality-style) gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.lp.problem import LinearProgram, Sense
from repro.lp.result import LPResult


@dataclass
class SolutionReport:
    """Outcome of :func:`check_solution`."""

    feasible: bool
    max_violation: float
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.feasible


def check_solution(lp: LinearProgram, result: LPResult, tol: float = 1e-6) -> SolutionReport:
    """Verify a result satisfies every constraint and bound of ``lp``.

    Violations are collected with human-readable descriptions; ``tol`` is an
    absolute tolerance scaled by the magnitude of each row's terms.
    """
    if result.x is None:
        return SolutionReport(feasible=False, max_violation=float("inf"), violations=["no solution vector"])
    x = result.x
    violations: List[str] = []
    worst = 0.0

    for var in lp.variables:
        v = x[var.index]
        # Scale like the constraint checks below: a solver returning
        # 1e9 * (1 + eps) against an upper bound of 1e9 is at its
        # precision limit, not infeasible.
        lo_tol = tol * max(1.0, abs(var.lower)) if np.isfinite(var.lower) else tol
        hi_tol = tol * max(1.0, abs(var.upper)) if np.isfinite(var.upper) else tol
        if v < var.lower - lo_tol:
            violations.append(f"{var.name} = {v} below lower bound {var.lower}")
            worst = max(worst, var.lower - v)
        if v > var.upper + hi_tol:
            violations.append(f"{var.name} = {v} above upper bound {var.upper}")
            worst = max(worst, v - var.upper)

    for con in lp.constraints:
        lhs = sum(c * x[i] for i, c in con.coeffs.items())
        scale = max(1.0, max((abs(c) for c in con.coeffs.values()), default=1.0), abs(con.rhs))
        slack_tol = tol * scale
        if con.sense is Sense.LE and lhs > con.rhs + slack_tol:
            violations.append(f"{con.name}: {lhs} <= {con.rhs} violated")
            worst = max(worst, lhs - con.rhs)
        elif con.sense is Sense.GE and lhs < con.rhs - slack_tol:
            violations.append(f"{con.name}: {lhs} >= {con.rhs} violated")
            worst = max(worst, con.rhs - lhs)
        elif con.sense is Sense.EQ and abs(lhs - con.rhs) > slack_tol:
            violations.append(f"{con.name}: {lhs} == {con.rhs} violated")
            worst = max(worst, abs(lhs - con.rhs))

    return SolutionReport(feasible=not violations, max_violation=worst, violations=violations)


def duality_gap(lp: LinearProgram, primal: LPResult, reference: LPResult) -> float:
    """Relative objective gap between two solves of the same model.

    Used to cross-validate backends: for two optimal solutions the gap must
    be ~0 regardless of which (possibly different) vertex each backend found.
    """
    if not (primal.is_optimal and reference.is_optimal):
        raise ValueError("both results must be optimal to compare")
    denom = max(1.0, abs(reference.objective))
    return abs(primal.objective - reference.objective) / denom


def objective_value(lp: LinearProgram, x: np.ndarray) -> float:
    """Evaluate the model objective at an arbitrary point."""
    return lp.objective.constant + sum(c * x[i] for i, c in lp.objective.coeffs.items())
