"""Linear-programming substrate used by the LiPS scheduler.

The paper solves its scheduling models with GLPK.  This package provides an
equivalent, self-contained LP layer with two interchangeable backends:

* :class:`~repro.lp.scipy_backend.HighsBackend` — wraps
  :func:`scipy.optimize.linprog` (HiGHS); the default, fast path.
* :class:`~repro.lp.simplex.SimplexBackend` — a from-scratch dense two-phase
  revised simplex implementation used as an independent reference for
  cross-validation in the test suite.

Models are built with :class:`~repro.lp.problem.LinearProgram`, which offers a
small modelling API (named variables, linear expressions, ``<=``/``>=``/``==``
constraints) and assembles the sparse matrices handed to the backends.
"""

from repro.lp.expr import LinExpr, Variable
from repro.lp.presolve import PresolveResult, PresolveStatus, presolve
from repro.lp.problem import Constraint, LinearProgram, Sense
from repro.lp.result import LPResult, LPStatus
from repro.lp.scipy_backend import HighsBackend
from repro.lp.simplex import SimplexBackend, SimplexError
from repro.lp.standard_form import StandardFormLP, to_standard_form
from repro.lp.validation import check_solution, duality_gap

__all__ = [
    "Constraint",
    "HighsBackend",
    "LPResult",
    "LPStatus",
    "LinExpr",
    "LinearProgram",
    "PresolveResult",
    "PresolveStatus",
    "Sense",
    "SimplexBackend",
    "SimplexError",
    "StandardFormLP",
    "Variable",
    "check_solution",
    "duality_gap",
    "presolve",
    "set_default_backend",
    "to_standard_form",
]

#: Default backend used when ``LinearProgram.solve`` is called without one.
DEFAULT_BACKEND = HighsBackend()


def set_default_backend(backend) -> object:
    """Install ``backend`` as the module-wide default; returns the previous one.

    Call sites resolve ``DEFAULT_BACKEND`` at solve time, so installing a
    wrapped backend (e.g. :class:`repro.resilience.ResilientSolver`) here
    reroutes every default-backend solve in the process — the CLI's
    ``--solver-timeout``/``--solver-retries``/``--solver-fallback`` flags use
    this.
    """
    global DEFAULT_BACKEND
    previous = DEFAULT_BACKEND
    DEFAULT_BACKEND = backend
    return previous
