"""Structural block detection over an :class:`~repro.lp.problem.AssembledLP`.

The LiPS epoch model is *almost* block-separable: every job brings its own
coverage/coupling/data rows and its own ``xt``/``xtn``/``fake``/``xd``
columns, and the only rows tying jobs together are shared **capacity** rows
(machine CPU, store capacity, epoch bandwidth) — all-nonnegative rows with a
nonnegative budget on the right-hand side.  This module recovers that
structure directly from the COO pattern:

1. Classify each ``<=`` row as *capacity-like* (every coefficient >= 0 and
   rhs >= 0) or *structural* (anything else).
2. Union-find the columns of every structural row — structural rows must be
   wholly owned by one block, so their columns merge.
3. Columns now partition into connected components (**blocks**).  A
   capacity-like row touching a single block is owned by it; one spanning
   several blocks becomes a **coupling row** of the decomposition.

Capacity-like rows are safe to treat as coupling because they admit the
relaxation argument :mod:`repro.lp.sharded` relies on: with all
coefficients and all participating variables nonnegative, any one block's
usage of the row is bounded by the joint usage, so granting each shard the
*full* budget is a relaxation of the joint problem and the sum of shard
optima is a certified lower bound.  Rows with negative coefficients (job
coverage, xt<=xd coupling, fairness floors) never span blocks — step 2
merges their columns — so the argument never has to cover them.

``detect_blocks`` returns ``None`` whenever the model does not decompose
(equality rows, a single block, structure that breaks the relaxation
argument); callers then solve monolithically.  Fairness rows, for example,
span every job's columns and collapse the model to one block — sharding
silently degrades to the exact monolithic solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.lp.problem import AssembledLP


@dataclass(frozen=True)
class Block:
    """One independent sub-problem of the decomposition.

    ``cols``/``rows`` are sorted original column / ``<=``-row indices (rows
    exclude the shared coupling rows).  ``key`` is a stable, hashable
    identity derived from the column labels — per-shard warm-start bases are
    keyed on it so a block whose membership survives to the next epoch can
    reuse its basis even as positional indices shift.
    """

    cols: np.ndarray
    rows: np.ndarray
    key: Optional[Tuple[str, ...]]


@dataclass(frozen=True)
class BlockPartition:
    """The decomposition of one assembled model."""

    blocks: Tuple[Block, ...]
    #: ``<=`` rows shared by two or more blocks (always capacity-like)
    coupling_rows: np.ndarray
    #: empty rows with rhs >= 0 — trivially satisfied, owned by no shard
    trivial_rows: np.ndarray

    @property
    def num_blocks(self) -> int:
        """Number of independent blocks in the partition."""
        return len(self.blocks)


def _find(parent: np.ndarray, i: int) -> int:
    """Union-find root with path compression."""
    root = i
    while parent[root] != root:
        root = parent[root]
    while parent[i] != root:
        parent[i], i = root, parent[i]
    return root


def _block_key(asm: AssembledLP, cols: np.ndarray) -> Optional[Tuple[str, ...]]:
    """Stable identity of a block: the sorted set of label *subjects*.

    Column labels are ``(kind, subject, ...)`` tuples — ``("xt", job_key,
    l, m)``, ``("fake", job_key)``, ``("xd", data_key, j)`` — where the
    subject (job or data identity) is the part that survives across epochs
    while positions and machine indices shift.  ``repr`` makes mixed-type
    subjects sortable.
    """
    labels = getattr(asm, "col_labels", None)
    if labels is None or len(labels) != asm.num_variables:
        return None
    subjects = set()
    for j in cols:
        label = labels[int(j)]
        if isinstance(label, tuple) and len(label) >= 2:
            subjects.add(repr(label[1]))
        else:
            subjects.add(repr(label))
    return tuple(sorted(subjects))


def detect_blocks(asm: AssembledLP, min_blocks: int = 2) -> Optional[BlockPartition]:
    """Partition ``asm`` into independent blocks joined by capacity rows.

    Returns ``None`` when the model does not decompose into at least
    ``min_blocks`` blocks under the rules above — including any structure
    that would invalidate the shard relaxation bound (equality rows, an
    empty infeasible row, negative lower bounds on coupled columns).
    """
    n = asm.num_variables
    m_ub = asm.a_ub.shape[0]
    if n == 0 or m_ub == 0 or asm.a_eq.shape[0] > 0:
        return None

    a = asm.a_ub.tocsr()
    indptr, indices, data = a.indptr, a.indices, a.data
    counts = np.diff(indptr)

    # row classification (vectorised): min coefficient per non-empty row
    row_min = np.full(m_ub, np.inf)
    nonempty = counts > 0
    if data.shape[0]:
        row_min[nonempty] = np.minimum.reduceat(data, indptr[:-1][nonempty])
    b_ub = np.asarray(asm.b_ub, dtype=float)
    capacity_like = nonempty & (row_min >= 0.0) & (b_ub >= 0.0)
    empty_rows = ~nonempty
    if np.any(empty_rows & (b_ub < 0.0)):
        return None  # an empty row with b < 0 is infeasible; don't shard

    # union columns of every structural (non-capacity) row
    parent = np.arange(n)
    for r in np.nonzero(nonempty & ~capacity_like)[0]:
        cols = indices[indptr[r] : indptr[r + 1]]
        root = _find(parent, int(cols[0]))
        for j in cols[1:]:
            other = _find(parent, int(j))
            if other != root:
                # keep the smaller root for deterministic block ordering
                if other < root:
                    root, other = other, root
                parent[other] = root

    roots = np.fromiter((_find(parent, j) for j in range(n)), dtype=np.int64, count=n)
    unique_roots = np.unique(roots)
    if unique_roots.shape[0] < min_blocks:
        return None
    block_of_root = {int(r): i for i, r in enumerate(unique_roots)}
    block_of_col = np.fromiter(
        (block_of_root[int(r)] for r in roots), dtype=np.int64, count=n
    )

    # assign rows: owned by their single block, or coupling when spanning
    own_rows: List[List[int]] = [[] for _ in unique_roots]
    coupling: List[int] = []
    trivial: List[int] = []
    for r in range(m_ub):
        cols = indices[indptr[r] : indptr[r + 1]]
        if cols.shape[0] == 0:
            trivial.append(r)
            continue
        touched = np.unique(block_of_col[cols])
        if touched.shape[0] == 1:
            own_rows[int(touched[0])].append(r)
        else:
            # only capacity-like rows can span (structural rows were merged)
            coupling.append(r)

    # the relaxation bound needs coupled columns to be nonnegative: a shard
    # variable that may go negative could *reduce* a coupling row's usage,
    # breaking "per-shard usage <= joint usage <= budget"
    if coupling:
        coupled_cols = np.unique(
            np.concatenate([indices[indptr[r] : indptr[r + 1]] for r in coupling])
        )
        if np.any(asm.bounds[coupled_cols, 0] < 0.0):
            return None

    blocks = []
    for i in range(unique_roots.shape[0]):
        cols = np.nonzero(block_of_col == i)[0]
        blocks.append(
            Block(
                cols=cols,
                rows=np.asarray(sorted(own_rows[i]), dtype=np.int64),
                key=_block_key(asm, cols),
            )
        )
    return BlockPartition(
        blocks=tuple(blocks),
        coupling_rows=np.asarray(coupling, dtype=np.int64),
        trivial_rows=np.asarray(trivial, dtype=np.int64),
    )
