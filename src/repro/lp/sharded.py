"""Sharded LP solving: partition, solve concurrently, reconcile exactly.

:func:`solve_sharded` decomposes an epoch model along the block structure
recovered by :func:`repro.lp.blocks.detect_blocks` and solves the shards
over :func:`repro.experiments.parallel.run_tasks` — the same process-pool
primitive the experiment sweeps use.  Reconciliation is *certified*, never
assumed, via resource-directive decomposition:

**Round 0 (optimistic).**  Every shard receives the *full* budget of each
coupling (capacity-like) row it touches.  Because coupling rows have
nonnegative coefficients over nonnegative variables, each shard's problem
is a relaxation of its slice of the joint problem, so the summed shard
optima are a certified **lower bound** on the joint optimum.  If the
merged solution also respects the shared budgets it is feasible — and a
feasible lower bound *is* the optimum, so the solve is exact.

**Reconcile loop (Benders over budget allocations).**  When shards
oversubscribe a shared row, the joint LP is rewritten as
``min_alloc sum_k phi_k(alloc_k)  s.t.  sum_k alloc_rk <= b_r`` where
``phi_k`` is shard ``k``'s optimal value as a function of its slice of the
shared budgets — convex piecewise-linear, with the shard's dual prices on
its coupling rows as subgradients.  The first budget proposal splits each
oversubscribed row proportionally to the shards' round-0 appetites (a
near-feasible point straight away, seeding a tight upper bound); each
round then solves a small in-parent **master LP** built from the
accumulated cutting planes and re-solves only the shards whose budgets
actually moved (warm-started from their own previous basis).  That
tightens two certified bounds: the best *feasible* merged solution
(upper) and the master value (lower).  The loop accepts
as soon as ``UB - LB`` is within ``1e-7`` relative — the returned
objective is then equal to the monolithic optimum within that tolerance,
by construction.

**Fallback.**  Anything else — a gap the loop cannot close within its
round budget, a non-optimal shard, absent duals, a model that does not
decompose — falls through to the monolithic backend solve, so sharding
never changes *what* is computed, only how fast.

Determinism: shard construction and the reconcile loop depend only on the
model (never on the worker count), tasks carry everything they need (see
the determinism contract in :mod:`repro.experiments.parallel`), and
per-shard solves are hidden from :mod:`repro.obs.lpprof` collectors and
the metrics registry in favour of one aggregate record emitted by the
parent — which is why runs with ``shards=1`` (in process) and
``shards=8`` (pool) produce byte-identical traces and ledgers.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.lp.blocks import BlockPartition, detect_blocks
from repro.lp.problem import AssembledLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.standard_form import BasisSnapshot
from repro.lp.warmstart import WarmStartContext
from repro.obs import lpprof
from repro.obs.registry import MetricsRegistry, use_registry

#: environment variable consulted when ``shards`` is not given explicitly
SHARDS_ENV = "REPRO_SHARDS"

#: relative ``UB - LB`` tolerance for accepting a reconciled solution
GAP_RTOL = 1e-7

#: reconcile rounds (shard re-solve + master) before giving up.  Rounds
#: after the first are warm-started and cheap, while the fallback pays a
#: cold monolithic solve — so the budget is deliberately generous.
MAX_ROUNDS = 25

#: deterministic ceiling on shard count — independent of worker count, so
#: the same model always produces the same shard LPs (see module docstring)
MAX_SHARDS = 32


def resolve_shards(shards: Optional[int] = None) -> int:
    """The effective shard count: argument, else ``REPRO_SHARDS``, else 0.

    ``0`` disables sharding (monolithic solve); ``1`` shards but solves in
    process; ``>= 2`` shards and solves over a process pool of that size.
    """
    if shards is not None:
        return max(0, int(shards))
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def _backend_spec(backend) -> Optional[Tuple[str, dict]]:
    """A picklable recipe for rebuilding ``backend`` inside a pool worker."""
    from repro.lp.scipy_backend import HighsBackend
    from repro.lp.simplex import SimplexBackend

    if type(backend) is SimplexBackend and not backend.presolve:
        return (
            "simplex",
            {
                "max_iterations": backend.max_iterations,
                "tol": backend.tol,
                "bland_after": backend.bland_after,
                "presolve": False,
                "refactor_every": backend.refactor_every,
                "dense_engine_max_rows": backend.dense_engine_max_rows,
            },
        )
    if type(backend) is HighsBackend and not backend.presolve:
        # presolve'd backends drop duals, which the reconcile cuts need
        return ("highs", {"method": backend.method, "presolve": False})
    return None


def _build_backend(spec: Tuple[str, dict]):
    kind, params = spec
    if kind == "simplex":
        from repro.lp.simplex import SimplexBackend

        return SimplexBackend(**params)
    from repro.lp.scipy_backend import HighsBackend

    return HighsBackend(**params)


def _solve_shard_task(task):
    """Pool worker: solve one shard LP, warm-started when a basis rides in.

    Runs identically in process and in a pool worker: solve records are
    suppressed and metrics go to a scratch registry in both cases, so the
    execution mode leaves no observable trace (the determinism contract of
    :mod:`repro.experiments.parallel`).

    ``task`` is ``(spec, sub_asm, snapshot, cpl_pos, cpl_ids, n_cpl)``
    where ``cpl_pos[i]`` is the sub-LP row of the coupling row whose index
    into the partition's coupling-row list is ``cpl_ids[i]``.  Returns
    ``(status, objective, x, iterations, snapshot, v)`` with ``v`` the
    shard's nonnegative marginal value per unit budget of every coupling
    row (``-dual``), or None when the backend reported no duals.
    """
    spec, sub_asm, snapshot, cpl_pos, cpl_ids, n_cpl = task
    backend = _build_backend(spec)
    warm: Optional[WarmStartContext] = None
    with lpprof.suppress(), use_registry(MetricsRegistry()):
        if getattr(backend, "supports_warm_start", False):
            warm = WarmStartContext(snapshot=snapshot)
            result = backend.solve_assembled(sub_asm, warm=warm)
        else:
            result = backend.solve_assembled(sub_asm)
    v = None
    if result.dual_ub is not None and cpl_pos.shape[0]:
        v = np.zeros(n_cpl)
        v[cpl_ids] = np.maximum(0.0, -result.dual_ub[cpl_pos])
    elif result.dual_ub is not None:
        v = np.zeros(n_cpl)
    return (
        result.status,
        float(result.objective),
        result.x,
        int(result.iterations),
        warm.snapshot if warm is not None else None,
        v,
    )


class _Shard:
    """One shard: a deterministic group of blocks plus its row slices."""

    __slots__ = ("index", "cols", "rows", "key", "touched", "cpl_pos", "cpl_ids")

    def __init__(
        self,
        index: int,
        cols: np.ndarray,
        own_rows: np.ndarray,
        key: Optional[tuple],
        coupling_rows: np.ndarray,
        touched: np.ndarray,
    ) -> None:
        self.index = index
        self.cols = cols
        self.key = key
        #: boolean mask over the partition's coupling rows: touches shard?
        self.touched = touched
        cpl = coupling_rows[touched]
        #: sub-LP rows: owned rows plus the shard's coupling rows, in
        #: original relative order (stable structure across rounds/epochs)
        self.rows = np.sort(np.concatenate([own_rows, cpl]))
        pos_of = {int(r): i for i, r in enumerate(self.rows)}
        #: positions of the touched coupling rows inside :attr:`rows`
        self.cpl_pos = np.asarray([pos_of[int(r)] for r in cpl], dtype=np.int64)
        #: their indices into the partition's coupling-row list
        self.cpl_ids = np.nonzero(touched)[0]


def _group_blocks(
    asm: AssembledLP, partition: BlockPartition, max_shards: int = MAX_SHARDS
) -> List[_Shard]:
    """Merge blocks into at most ``max_shards`` column-balanced shards.

    Grouping assigns blocks (largest first) to the currently lightest
    shard — a deterministic function of the model alone, so serial and
    pooled runs see identical shard LPs.
    """
    n_blocks = partition.num_blocks
    n_shards = min(n_blocks, max_shards)
    loads = [0] * n_shards
    members: List[List[int]] = [[] for _ in range(n_shards)]
    order = sorted(
        range(n_blocks),
        key=lambda i: (-partition.blocks[i].cols.shape[0], i),
    )
    for i in order:
        k = min(range(n_shards), key=lambda s: (loads[s], s))
        members[k].append(i)
        loads[k] += partition.blocks[i].cols.shape[0]

    a = asm.a_ub.tocsr()
    indptr, indices = a.indptr, a.indices
    col_to_shard = np.empty(asm.num_variables, dtype=np.int64)
    for k, blocks in enumerate(members):
        for i in blocks:
            col_to_shard[partition.blocks[i].cols] = k

    shards = []
    for k, blocks in enumerate(members):
        cols = np.sort(np.concatenate([partition.blocks[i].cols for i in blocks]))
        own = np.sort(np.concatenate([partition.blocks[i].rows for i in blocks]))
        touched = np.zeros(partition.coupling_rows.shape[0], dtype=bool)
        for pos, r in enumerate(partition.coupling_rows):
            rcols = indices[indptr[r] : indptr[r + 1]]
            if np.any(col_to_shard[rcols] == k):
                touched[pos] = True
        keys = [partition.blocks[i].key for i in blocks]
        key = None
        if all(key_i is not None for key_i in keys):
            key = tuple(sorted(subject for key_i in keys for subject in key_i))
        shards.append(_Shard(k, cols, own, key, partition.coupling_rows, touched))
    return shards


def _sub_assembled(
    asm: AssembledLP,
    a_csr: sparse.csr_matrix,
    shard: _Shard,
    coupling_rows: np.ndarray,
    coupling_rhs: np.ndarray,
    c_local: Optional[np.ndarray] = None,
) -> AssembledLP:
    """The shard's sub-LP with this round's coupling budgets.

    ``coupling_rhs`` is indexed like the partition's coupling-row list —
    the full ``b_ub`` values in the optimistic round, the shard's
    allocation afterwards.  ``c_local`` overrides the objective slice
    (used by the Lagrangian bound, which prices coupling rows into the
    costs while keeping the sub-LP's structure — and hence its warm
    basis — unchanged).
    """
    rows = shard.rows
    b_local = np.asarray(asm.b_ub, dtype=float)[rows].copy()
    b_local[shard.cpl_pos] = coupling_rhs[shard.cpl_ids]
    cols = shard.cols
    sub_a = a_csr[rows][:, cols].tocsr()
    col_labels = None
    if asm.col_labels is not None:
        col_labels = [asm.col_labels[int(j)] for j in cols]
    row_labels = None
    if asm.row_labels_ub is not None:
        row_labels = [asm.row_labels_ub[int(r)] for r in rows]
    return AssembledLP(
        c=asm.c[cols] if c_local is None else c_local,
        a_ub=sub_a,
        b_ub=b_local,
        a_eq=sparse.csr_matrix((0, cols.shape[0])),
        b_eq=np.zeros(0),
        bounds=asm.bounds[cols],
        objective_constant=0.0,
        name=f"{asm.name}#s{shard.index}",
        col_labels=col_labels,
        row_labels_ub=row_labels,
    )


class _Cut:
    """One Benders cut: ``phi_k(alloc) >= value + g @ (alloc - point)``.

    ``g`` (the shard's coupling-row duals, ``<= 0``) and ``point`` span the
    full coupling-row list, so cuts stay valid as the master's active row
    set grows.
    """

    __slots__ = ("shard", "value", "g", "point")

    def __init__(self, shard: int, value: float, g: np.ndarray, point: np.ndarray):
        self.shard = shard
        self.value = value
        self.g = g
        self.point = point


def _solve_master(
    shards: List[_Shard],
    cuts: List[_Cut],
    active: np.ndarray,
    b_cpl: np.ndarray,
    theta_lb: np.ndarray,
) -> Optional[Tuple[float, np.ndarray, Optional[np.ndarray]]]:
    """Minimise the cut model over feasible budget allocations.

    Returns ``(master_objective, alloc, prices)`` with ``alloc`` shaped
    ``(n_coupling, n_shards)`` (full budget outside the active set) and
    ``prices`` the nonnegative duals of the budget rows spread over the
    full coupling-row list (None when the backend reported no duals), or
    None when the master cannot be solved.  The master objective is a
    certified lower bound on the joint optimum: the cuts underestimate the
    true per-shard value functions and non-active budgets are granted in
    full to every shard (a relaxation).

    The master is internal bookkeeping of the reconcile loop — not part of
    the user's model solve — so it always runs on the fast HiGHS backend
    regardless of which backend the shards use: its solution is the next
    budget proposal and its value the lower bound either way, and it runs
    identically in serial and pooled modes (the determinism contract).
    """
    from repro.lp.scipy_backend import HighsBackend

    n_shards = len(shards)
    active_list = [int(r) for r in np.nonzero(active)[0]]
    # variable layout: theta_k, then alloc_(r,k) for active r touched by k
    alloc_vars: Dict[Tuple[int, int], int] = {}
    n_vars = n_shards
    for k, s in enumerate(shards):
        for r in active_list:
            if s.touched[r]:
                alloc_vars[(r, k)] = n_vars
                n_vars += 1

    c = np.zeros(n_vars)
    c[:n_shards] = 1.0
    bounds = np.zeros((n_vars, 2))
    bounds[:n_shards, 0] = theta_lb
    bounds[:n_shards, 1] = np.inf
    for (r, _k), j in alloc_vars.items():
        bounds[j] = (0.0, b_cpl[r])

    rows_i: List[int] = []
    cols_i: List[int] = []
    vals: List[float] = []
    rhs: List[float] = []

    def add(row: int, col: int, val: float) -> None:
        rows_i.append(row)
        cols_i.append(col)
        vals.append(val)

    row = 0
    for cut in cuts:
        # -theta_k + sum_active g_r alloc_rk <= sum_active g_r point_r - value
        add(row, cut.shard, -1.0)
        rhs_val = -cut.value
        for r in active_list:
            if shards[cut.shard].touched[r] and cut.g[r] != 0.0:
                add(row, alloc_vars[(r, cut.shard)], float(cut.g[r]))
                rhs_val += float(cut.g[r]) * float(cut.point[r])
        rhs.append(rhs_val)
        row += 1
    for r in active_list:
        for k, s in enumerate(shards):
            if s.touched[r]:
                add(row, alloc_vars[(r, k)], 1.0)
        rhs.append(float(b_cpl[r]))
        row += 1

    a_ub = sparse.csr_matrix(
        (np.asarray(vals), (np.asarray(rows_i), np.asarray(cols_i))),
        shape=(row, n_vars),
    )
    master = AssembledLP(
        c=c,
        a_ub=a_ub,
        b_ub=np.asarray(rhs),
        a_eq=sparse.csr_matrix((0, n_vars)),
        b_eq=np.zeros(0),
        bounds=bounds,
        name="shard-master",
    )
    res = HighsBackend().solve_assembled(master)
    if res.status is not LPStatus.OPTIMAL or res.x is None:
        return None
    alloc = np.tile(b_cpl[:, None], (1, n_shards)).astype(float)
    for (r, k), j in alloc_vars.items():
        alloc[r, k] = res.x[j]
    # hand non-participating shards a zero budget on active rows so the
    # printed allocation sums stay <= b even though they cannot use it
    for k, s in enumerate(shards):
        for r in active_list:
            if not s.touched[r]:
                alloc[r, k] = 0.0
    prices = None
    if res.dual_ub is not None:
        # budget rows sit after the cut rows, in active_list order
        prices = np.zeros(b_cpl.shape[0])
        prices[active_list] = np.maximum(
            0.0, -res.dual_ub[len(cuts) : len(cuts) + len(active_list)]
        )
    return float(res.objective), alloc, prices


def _shard_snapshot(
    warm: Optional[WarmStartContext], key: Optional[tuple]
) -> Optional[BasisSnapshot]:
    if warm is None or key is None:
        return None
    return warm.shard_basis.get(key)


def _store_snapshot(
    warm: Optional[WarmStartContext],
    key: Optional[tuple],
    snapshot: Optional[BasisSnapshot],
) -> None:
    if warm is not None and key is not None and snapshot is not None:
        warm.shard_basis[key] = snapshot


def solve_sharded(
    asm: AssembledLP,
    backend=None,
    shards: Optional[int] = None,
    warm: Optional[WarmStartContext] = None,
) -> LPResult:
    """Solve ``asm``, decomposed into shards when its structure allows.

    With ``shards`` resolved to 0 this is exactly
    ``backend.solve_assembled(asm, warm=warm)``.  Otherwise the model is
    partitioned, shard LPs are solved via
    :func:`repro.experiments.parallel.run_tasks` with ``workers=shards``
    and reconciled per the module docstring; any shape this machinery
    cannot certify falls back to the monolithic solve.  Duals are not
    reported on a sharded solve (row identities are split across shards —
    same caveat as presolve).
    """
    if backend is None:
        from repro.lp import DEFAULT_BACKEND

        backend = DEFAULT_BACKEND
    n_shards = resolve_shards(shards)
    supports_warm = getattr(backend, "supports_warm_start", False)

    def monolithic() -> LPResult:
        if supports_warm:
            return backend.solve_assembled(asm, warm=warm)
        return backend.solve_assembled(asm)

    if n_shards <= 0:
        return monolithic()

    if not lpprof.active():
        result, _, _ = _solve_sharded_info(asm, backend, n_shards, warm, monolithic)
        return result

    # one aggregate record for the whole decomposition; sub-solves (and the
    # monolithic fallback, if taken) run suppressed
    t0 = time.perf_counter()
    with lpprof.suppress():
        result, shard_count, sharded = _solve_sharded_info(
            asm, backend, n_shards, warm, monolithic
        )
    lpprof.observe(
        lpprof.LPSolveRecord(
            name=getattr(asm, "name", "lp"),
            backend=f"{backend.name}+sharded" if sharded else backend.name,
            wall_seconds=time.perf_counter() - t0,
            iterations=result.iterations,
            status=result.status.value,
            meta={**lpprof.current_scope(), "shard_count": shard_count},
            **lpprof.describe_assembled(asm),
        )
    )
    return result


def _solve_sharded_info(
    asm: AssembledLP,
    backend,
    n_shards: int,
    warm: Optional[WarmStartContext],
    monolithic,
) -> Tuple[LPResult, int, bool]:
    """Partition + reconcile loop; returns ``(result, shards, sharded)``."""
    from repro.experiments.parallel import run_tasks

    spec = _backend_spec(backend)
    partition = detect_blocks(asm) if spec is not None else None
    if partition is None:
        if warm is not None:
            warm.sharded_fallbacks += 1
        return monolithic(), 0, False

    shards = _group_blocks(asm, partition)
    a_csr = asm.a_ub.tocsr()
    coupling = partition.coupling_rows
    n_cpl = coupling.shape[0]
    b_ub = np.asarray(asm.b_ub, dtype=float)
    b_cpl = b_ub[coupling]
    cpl_mat = a_csr[coupling] if n_cpl else None
    feas_tol = 1e-9 * np.maximum(1.0, np.abs(b_cpl))

    def fallback() -> Tuple[LPResult, int, bool]:
        if warm is not None:
            warm.sharded_fallbacks += 1
        return monolithic(), len(shards), False

    def solve_round(
        targets: List[_Shard],
        alloc: np.ndarray,
        costs: Optional[List[np.ndarray]] = None,
        store: bool = True,
    ) -> Optional[list]:
        tasks = [
            (
                spec,
                _sub_assembled(
                    asm,
                    a_csr,
                    s,
                    coupling,
                    alloc[:, s.index],
                    c_local=None if costs is None else costs[i],
                ),
                _shard_snapshot(warm, s.key),
                s.cpl_pos,
                s.cpl_ids,
                n_cpl,
            )
            for i, s in enumerate(targets)
        ]
        outs = run_tasks(_solve_shard_task, tasks, workers=n_shards)
        for s, out in zip(targets, outs):
            if store:
                _store_snapshot(warm, s.key, out[4])
            if warm is not None:
                warm.shard_solves += 1
        if any(out[0] is not LPStatus.OPTIMAL for out in outs):
            return None
        return outs

    # -- round 0: every shard sees the full coupling budgets ---------------
    alloc = np.tile(b_cpl[:, None], (1, len(shards))).astype(float)
    outs = solve_round(shards, alloc)
    if outs is None:
        return fallback()
    current = list(outs)  # latest (status, obj, x, iters, snap, v) per shard
    solved_alloc = alloc.copy()  # the allocation each shard last solved with
    total_iters = sum(out[3] for out in outs)
    relax_lb = sum(out[1] for out in outs)  # certified: sum of relaxations
    theta_lb = np.asarray([out[1] for out in outs])
    cuts: List[_Cut] = []
    for s, out in zip(shards, outs):
        if out[5] is not None:
            cuts.append(_Cut(s.index, out[1], -out[5], alloc[:, s.index].copy()))

    def usage_matrix() -> np.ndarray:
        u = np.zeros((n_cpl, len(shards)))
        if n_cpl:
            for s, out in zip(shards, current):
                u[:, s.index] = cpl_mat[:, s.cols] @ out[2]
        return u

    def accept(objective: float) -> Tuple[LPResult, int, bool]:
        x_full = np.zeros(asm.num_variables)
        for s, out in zip(shards, current):
            x_full[s.cols] = out[2]
        if warm is not None:
            warm.sharded_solves += 1
        return (
            LPResult(
                status=LPStatus.OPTIMAL,
                objective=float(objective + asm.objective_constant),
                x=x_full,
                by_name={},
                iterations=total_iters,
                backend=f"{backend.name}+sharded",
                dual_ub=None,
                dual_eq=None,
            ),
            len(shards),
            True,
        )

    usage = usage_matrix()
    violated = usage.sum(axis=1) > b_cpl + feas_tol
    if not np.any(violated):
        # the relaxation's solution is jointly feasible: exact optimum
        return accept(relax_lb)

    if any(out[5] is None for out in outs):
        return fallback()  # no duals -> no cuts -> cannot certify

    lower = relax_lb
    best_ub = np.inf
    best_solution: Optional[list] = None
    active = violated.copy()

    def try_proposal(prop: np.ndarray) -> bool:
        """Solve the shards whose budgets moved; harvest cuts and bounds."""
        nonlocal best_ub, best_solution, active, total_iters, usage
        moved = [
            s
            for s in shards
            if np.any(
                np.abs(prop[:, s.index] - solved_alloc[:, s.index])
                > 1e-12 * np.maximum(1.0, np.abs(b_cpl))
            )
        ]
        if warm is not None:
            warm.shard_resolves += len(moved)
        outs2 = solve_round(moved, prop)
        if outs2 is None or any(out[5] is None for out in outs2):
            return False
        for s, out in zip(moved, outs2):
            current[s.index] = out
            solved_alloc[:, s.index] = prop[:, s.index]
            total_iters += out[3]
            cuts.append(_Cut(s.index, out[1], -out[5], prop[:, s.index].copy()))
        usage = usage_matrix()
        over = usage.sum(axis=1) > b_cpl + len(shards) * feas_tol
        active |= over
        if not np.any(over):
            ub = sum(out[1] for out in current)
            if ub < best_ub:
                best_ub = ub
                best_solution = list(current)
        return True

    # Seed the upper bound before any master round: split each
    # oversubscribed row's budget proportionally to the shards' round-0
    # appetites.  That usually lands at (or next to) a jointly feasible
    # point straight away, so the loop starts with a tight upper bound and
    # only has to drive the lower bound up to it.
    proposal = alloc.copy()
    totals = usage.sum(axis=1)
    for r in np.nonzero(violated)[0]:
        proposal[r] = b_cpl[r] * usage[r] / totals[r]
    if not try_proposal(proposal):
        return fallback()

    def gap_closed() -> bool:
        return best_solution is not None and best_ub - lower <= GAP_RTOL * max(
            1.0, abs(best_ub)
        )

    for _round in range(MAX_ROUNDS):
        master = _solve_master(shards, cuts, active, b_cpl, theta_lb)
        if master is None:
            return fallback()
        master_obj, alloc, _prices = master
        lower = max(lower, master_obj)
        if gap_closed():
            current = best_solution
            return accept(best_ub)
        if not try_proposal(alloc):
            return fallback()

    return fallback()


__all__ = [
    "SHARDS_ENV",
    "GAP_RTOL",
    "MAX_ROUNDS",
    "MAX_SHARDS",
    "resolve_shards",
    "solve_sharded",
]
