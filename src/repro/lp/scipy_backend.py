"""HiGHS backend — solves assembled LPs via :func:`scipy.optimize.linprog`.

This is the production path (the paper used GLPK's simplex; HiGHS is its
modern equivalent).  The from-scratch :mod:`repro.lp.simplex` backend exists
to cross-check this one in tests.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import linprog

from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus
from repro.obs import lpprof

# scipy linprog status codes → our normalised statuses
_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ITERATION_LIMIT,
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.NUMERICAL,  # "numerical difficulties encountered"
}


class HighsBackend:
    """Solve LPs with scipy's HiGHS wrappers.

    Parameters
    ----------
    method:
        A ``linprog`` method name. ``"highs"`` lets HiGHS pick between its
        dual simplex and interior-point solvers.
    """

    name = "highs"

    def __init__(self, method: str = "highs", presolve: bool = False) -> None:
        self.method = method
        #: apply repro.lp.presolve reductions before handing the model to
        #: HiGHS; duals are then not reported (row identities change under
        #: row elimination).  The pattern cache makes repeated presolves on
        #: structurally identical epoch models near-free.
        self.presolve = presolve
        from repro.lp.presolve import PresolveCache

        self._presolve_cache = PresolveCache()
        #: (fixed_vars, dropped_rows) of the most recent presolve, for the
        #: profiling wrapper
        self._last_presolve = None

    def solve(self, lp: LinearProgram) -> LPResult:
        """Assemble and solve a LinearProgram, mapping names."""
        result = self.solve_assembled(lp.assemble())
        if result.x is not None:
            result.by_name = lp.value_map(result.x)
        return result

    def solve_assembled(self, asm) -> LPResult:
        """Solve a pre-assembled sparse LP (fast path for big models).

        When an :mod:`repro.obs.lpprof` collector is installed (simulator or
        epoch-controller runs), the solve's shape, wall time, iterations and
        status are recorded; otherwise profiling costs nothing.
        """
        if not lpprof.active():
            return self._solve_assembled(asm)
        self._last_presolve = None
        t0 = time.perf_counter()
        result = self._solve_assembled(asm)
        fixed, dropped = self._last_presolve or (0, 0)
        lpprof.observe(
            lpprof.LPSolveRecord(
                name=getattr(asm, "name", "lp"),
                backend=self.name,
                wall_seconds=time.perf_counter() - t0,
                iterations=result.iterations,
                status=result.status.value,
                presolve_fixed_vars=fixed,
                presolve_dropped_rows=dropped,
                presolve_applied=self.presolve,
                meta=lpprof.current_scope(),
                **lpprof.describe_assembled(asm),
            )
        )
        return result

    def _solve_assembled(self, asm) -> LPResult:
        if self.presolve:
            from repro.lp.presolve import PresolveStatus, presolve

            pre = presolve(asm, cache=self._presolve_cache)
            self._last_presolve = (pre.fixed_variables, pre.dropped_rows)
            if pre.status is PresolveStatus.INFEASIBLE:
                return LPResult(
                    status=LPStatus.INFEASIBLE,
                    objective=float("nan"),
                    x=None,
                    backend=self.name,
                    message="presolve proved infeasibility",
                )
            inner = self._solve_raw(pre.reduced)
            if inner.x is not None:
                inner.x = pre.restore(inner.x)
            # row identities changed; duals no longer line up with asm rows
            inner.dual_ub = None
            inner.dual_eq = None
            return inner
        return self._solve_raw(asm)

    def _solve_raw(self, asm) -> LPResult:
        if asm.num_variables == 0:
            # Degenerate empty model: feasible iff there are no constraints
            # with nonzero rhs requirements.
            feasible = bool(np.all(asm.b_ub >= 0)) and bool(np.all(asm.b_eq == 0))
            status = LPStatus.OPTIMAL if feasible else LPStatus.INFEASIBLE
            return LPResult(
                status=status,
                objective=asm.objective_constant if feasible else float("nan"),
                x=np.zeros(0),
                by_name={},
                backend=self.name,
            )

        res = linprog(
            c=asm.c,
            A_ub=asm.a_ub if asm.a_ub.shape[0] else None,
            b_ub=asm.b_ub if asm.b_ub.shape[0] else None,
            A_eq=asm.a_eq if asm.a_eq.shape[0] else None,
            b_eq=asm.b_eq if asm.b_eq.shape[0] else None,
            bounds=asm.bounds,
            method=self.method,
        )
        status = _STATUS_MAP.get(res.status, LPStatus.ERROR)
        x = np.asarray(res.x) if res.x is not None else None
        objective = (
            float(res.fun) + asm.objective_constant
            if status is LPStatus.OPTIMAL
            else float("nan")
        )
        dual_ub = None
        dual_eq = None
        if status is LPStatus.OPTIMAL:
            ineq = getattr(res, "ineqlin", None)
            if ineq is not None and getattr(ineq, "marginals", None) is not None:
                dual_ub = np.asarray(ineq.marginals)
            eq = getattr(res, "eqlin", None)
            if eq is not None and getattr(eq, "marginals", None) is not None:
                dual_eq = np.asarray(eq.marginals)
        return LPResult(
            status=status,
            objective=objective,
            x=x,
            by_name={},
            iterations=int(getattr(res, "nit", 0) or 0),
            backend=self.name,
            message=str(res.message),
            dual_ub=dual_ub,
            dual_eq=dual_eq,
        )
