"""LP model builder with sparse constraint assembly.

:class:`LinearProgram` is a minimal modelling layer in the spirit of
PuLP/GLPK's MathProg: create named variables, add ``<=``/``>=``/``==``
constraints built from :class:`~repro.lp.expr.LinExpr`, set a linear
objective, and hand the assembled sparse matrices to a solver backend.

Only what the LiPS scheduling models need is implemented — continuous
variables, linear constraints, minimisation — but that subset is complete and
exactly mirrors the formulations in the paper's Figures 2–4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.lp.expr import LinExpr, Variable
from repro.lp.result import LPResult


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Constraint:
    """A stored constraint ``expr (sense) rhs``.

    The expression's constant term has already been folded into ``rhs`` by
    :meth:`LinearProgram.add_constraint`.
    """

    name: str
    coeffs: Dict[int, float]
    sense: Sense
    rhs: float


class LinearProgram:
    """A minimisation LP over continuous variables.

    Example
    -------
    >>> lp = LinearProgram("diet")
    >>> x = lp.new_var("x", lower=0.0)
    >>> y = lp.new_var("y", lower=0.0)
    >>> lp.add_constraint(x + y, Sense.GE, 1.0, name="cover")
    >>> lp.set_objective(2.0 * x + 3.0 * y)
    >>> res = lp.solve()
    >>> round(res.objective, 6)
    2.0
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._variables: List[Variable] = []
        self._constraints: List[Constraint] = []
        self._objective: LinExpr = LinExpr.zero()
        self._var_names: Dict[str, int] = {}

    # -- variables --------------------------------------------------------
    def new_var(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = float("inf"),
    ) -> Variable:
        """Create a continuous variable with the given bounds.

        Names must be unique within the model; the scheduling code uses
        structured names like ``xt[k,l,m]`` so collisions indicate bugs.
        """
        if name in self._var_names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Variable(index=len(self._variables), name=name, lower=lower, upper=upper)
        self._variables.append(var)
        self._var_names[name] = var.index
        return var

    def new_vars(self, names: Sequence[str], lower: float = 0.0, upper: float = float("inf")) -> List[Variable]:
        """Create several variables with shared bounds."""
        return [self.new_var(n, lower=lower, upper=upper) for n in names]

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables in creation order."""
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        """Number of variables."""
        return len(self._variables)

    def variable_by_name(self, name: str) -> Variable:
        """Look a variable up by its unique name."""
        try:
            return self._variables[self._var_names[name]]
        except KeyError:
            raise KeyError(f"no variable named {name!r}") from None

    # -- constraints --------------------------------------------------------
    def add_constraint(
        self,
        expr: LinExpr | Variable,
        sense: Sense,
        rhs: float,
        name: Optional[str] = None,
    ) -> Constraint:
        """Add ``expr (sense) rhs``; the expression's constant is moved to rhs."""
        if isinstance(expr, Variable):
            expr = expr + 0.0
        if not isinstance(expr, LinExpr):
            raise TypeError("constraint left-hand side must be a LinExpr or Variable")
        con = Constraint(
            name=name or f"c{len(self._constraints)}",
            coeffs=expr.nonzero_terms(),
            sense=sense,
            rhs=float(rhs) - expr.constant,
        )
        self._constraints.append(con)
        return con

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        """All constraints in insertion order."""
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        """Number of constraints."""
        return len(self._constraints)

    # -- objective ----------------------------------------------------------
    def set_objective(self, expr: LinExpr | Variable) -> None:
        """Set the (minimisation) objective."""
        if isinstance(expr, Variable):
            expr = expr + 0.0
        if not isinstance(expr, LinExpr):
            raise TypeError("objective must be a LinExpr or Variable")
        self._objective = expr.copy()

    @property
    def objective(self) -> LinExpr:
        """The (minimisation) objective expression."""
        return self._objective

    # -- matrix assembly ------------------------------------------------------
    def assemble(self) -> "AssembledLP":
        """Assemble the model into the sparse matrix form backends consume.

        Returns matrices for ``min c @ x`` subject to ``A_ub @ x <= b_ub``,
        ``A_eq @ x == b_eq`` and variable bounds.  ``>=`` rows are negated
        into ``<=`` rows.
        """
        n = self.num_variables
        c = np.zeros(n)
        for idx, coeff in self._objective.coeffs.items():
            c[idx] = coeff

        ub_rows: List[Tuple[int, Dict[int, float], float]] = []
        eq_rows: List[Tuple[int, Dict[int, float], float]] = []
        for con in self._constraints:
            if con.sense is Sense.LE:
                ub_rows.append((len(ub_rows), con.coeffs, con.rhs))
            elif con.sense is Sense.GE:
                negated = {i: -v for i, v in con.coeffs.items()}
                ub_rows.append((len(ub_rows), negated, -con.rhs))
            else:
                eq_rows.append((len(eq_rows), con.coeffs, con.rhs))

        def build(rows: List[Tuple[int, Dict[int, float], float]]) -> Tuple[sparse.csr_matrix, np.ndarray]:
            if not rows:
                return sparse.csr_matrix((0, n)), np.zeros(0)
            data, ri, ci = [], [], []
            b = np.zeros(len(rows))
            for r, coeffs, rhs in rows:
                b[r] = rhs
                for i, v in coeffs.items():
                    ri.append(r)
                    ci.append(i)
                    data.append(v)
            mat = sparse.csr_matrix((data, (ri, ci)), shape=(len(rows), n))
            return mat, b

        a_ub, b_ub = build(ub_rows)
        a_eq, b_eq = build(eq_rows)
        bounds = np.array([[v.lower, v.upper] for v in self._variables]) if n else np.zeros((0, 2))
        return AssembledLP(
            c=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            objective_constant=self._objective.constant,
            name=self.name,
        )

    # -- solving ----------------------------------------------------------
    def solve(self, backend: object = None) -> LPResult:
        """Solve the model; defaults to the HiGHS backend."""
        if backend is None:
            from repro.lp import DEFAULT_BACKEND

            backend = DEFAULT_BACKEND
        return backend.solve(self)  # type: ignore[attr-defined]

    def value_map(self, x: np.ndarray) -> Dict[str, float]:
        """Map a raw solution vector to ``{variable-name: value}``."""
        return {v.name: float(x[v.index]) for v in self._variables}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinearProgram({self.name!r}, vars={self.num_variables}, "
            f"cons={self.num_constraints})"
        )


@dataclass
class AssembledLP:
    """Sparse matrix form of a :class:`LinearProgram` (minimisation)."""

    c: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    bounds: np.ndarray  # shape (n, 2): [lower, upper]
    objective_constant: float = 0.0
    #: model name carried into LP solve profiles (see repro.obs.lpprof)
    name: str = "lp"
    #: optional stable per-column identities (hashables) attached by
    #: labelled assemblers; enables simplex warm-start basis mapping
    col_labels: Optional[list] = None
    #: optional stable per-row identities for a_ub (same purpose)
    row_labels_ub: Optional[list] = None

    @property
    def num_variables(self) -> int:
        """Number of columns in the assembled system."""
        return int(self.c.shape[0])
