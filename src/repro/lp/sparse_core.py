"""Basis-factorisation engines for the revised simplex.

The revised simplex never needs the basis inverse itself — only the two
products ``B^-1 v`` (FTRAN: pivot directions, basic values) and ``w B^-1``
(BTRAN: row prices, inverse rows).  This module provides two interchangeable
engines behind that interface:

* :class:`DenseInverseEngine` — the classic explicit ``(m, m)`` inverse with
  product-form rank-one updates.  O(m^2) per pivot and per refactorisation
  inversion, but with tiny constants; it wins below ~100 rows where the LP
  test corpus and per-shard sub-LPs live.
* :class:`SparseLUEngine` — a sparse LU factorisation of the basis
  (``scipy.sparse.linalg.splu``) plus an **eta file**: each pivot appends one
  sparse eta vector instead of touching m^2 entries, FTRAN applies the etas
  forward after the LU solve, BTRAN applies them in reverse before the
  transposed LU solve.  Work per pivot is proportional to the basis fill-in,
  not m^2 — this is what removes the dense ceiling at 1k+ machines.

:func:`make_engine` picks an engine by row count (callers can force either).
Both engines are refreshed by :meth:`refactor`; the simplex drives a periodic
refactorisation (``refactor_every``) that simultaneously bounds numerical
drift and the eta-file length.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg


class BasisSingularError(RuntimeError):
    """The selected basis matrix is (numerically) singular."""


#: Default crossover: bases with at most this many rows use the dense engine.
DENSE_ENGINE_MAX_ROWS = 128


def dense_column(a: sparse.csc_matrix, j: int) -> np.ndarray:
    """Dense copy of column ``j`` of a CSC matrix (one indptr slice)."""
    out = np.zeros(a.shape[0])
    start, end = a.indptr[j], a.indptr[j + 1]
    out[a.indices[start:end]] = a.data[start:end]
    return out


def _basis_matrix(a: sparse.csc_matrix, basis: np.ndarray) -> sparse.csc_matrix:
    """The basis columns of ``a`` as a fresh CSC matrix."""
    return a[:, basis].tocsc()


class DenseInverseEngine:
    """Explicit dense basis inverse with product-form (eta) updates."""

    kind = "dense"

    def __init__(self, a: sparse.csc_matrix, basis: np.ndarray) -> None:
        self.b_inv: np.ndarray = np.zeros((0, 0))
        self.refactor(a, basis)

    def refactor(self, a: sparse.csc_matrix, basis: np.ndarray) -> None:
        """Recompute the inverse from scratch (drift control)."""
        cols = _basis_matrix(a, basis).toarray()
        try:
            b_inv = np.linalg.inv(cols)
        except np.linalg.LinAlgError:
            raise BasisSingularError("singular basis matrix") from None
        if not np.all(np.isfinite(b_inv)):
            raise BasisSingularError("non-finite basis inverse")
        # LAPACK will "invert" an exactly singular matrix when rounding
        # leaves it a tiny nonzero pivot; a 1-norm condition estimate
        # (O(m^2), cheap next to the O(m^3) inversion) catches that
        if cols.size:
            cond = float(
                np.abs(cols).sum(axis=0).max() * np.abs(b_inv).sum(axis=0).max()
            )
            if not np.isfinite(cond) or cond > 1e14:
                raise BasisSingularError("numerically singular basis (cond estimate)")
        self.b_inv = b_inv

    def ftran(self, v: np.ndarray) -> np.ndarray:
        """``B^-1 @ v``."""
        return self.b_inv @ v

    def btran(self, w: np.ndarray) -> np.ndarray:
        """``w @ B^-1``."""
        return w @ self.b_inv

    def unit_btran(self, i: int) -> np.ndarray:
        """Row ``i`` of ``B^-1`` (BTRAN of a unit vector)."""
        return self.b_inv[i].copy()

    def update(self, leaving: int, direction: np.ndarray) -> None:
        """Rank-one product-form update for one pivot, O(m^2)."""
        pivot = direction[leaving]
        coef = direction / (-pivot)
        coef[leaving] = 0.0
        pivot_row = self.b_inv[leaving].copy()
        self.b_inv += np.outer(coef, pivot_row)
        self.b_inv[leaving] = pivot_row / pivot


class SparseLUEngine:
    """Sparse LU of the basis plus an eta file of pivot updates.

    After a pivot replacing the basic variable of row ``r`` with a column
    whose FTRAN'd direction is ``d``, the new inverse is ``E @ B^-1`` with
    ``E`` the identity except column ``r`` (``E[i, r] = -d_i/d_r``,
    ``E[r, r] = 1/d_r``).  Instead of forming ``E`` we store the sparse
    triple ``(r, nonzeros of d off the pivot row, d_r)``:

    * FTRAN: ``x = LU^-1 v``; then per eta in order:
      ``t = x[r]/d_r;  x[nz] -= t * d[nz];  x[r] = t``.
    * BTRAN: per eta in **reverse**: ``u[r] = (u[r] - u[nz]@d[nz]) / d_r``;
      then the transposed LU solve.
    """

    kind = "sparse-lu"

    def __init__(self, a: sparse.csc_matrix, basis: np.ndarray) -> None:
        self._lu = None
        #: eta file: (pivot_row, offdiag indices, offdiag values, pivot value)
        self._etas: List[Tuple[int, np.ndarray, np.ndarray, float]] = []
        self.refactor(a, basis)

    def refactor(self, a: sparse.csc_matrix, basis: np.ndarray) -> None:
        """Refactorise the basis and drop the eta file."""
        bmat = _basis_matrix(a, basis)
        if bmat.shape[0] != bmat.shape[1]:
            raise BasisSingularError(
                f"basis matrix is not square: {bmat.shape}"
            )
        try:
            lu = sparse_linalg.splu(bmat.astype(float))
        except (RuntimeError, ValueError) as exc:  # "factor is exactly singular"
            raise BasisSingularError(str(exc)) from None
        # splu can succeed on a numerically degenerate basis — an exactly
        # singular matrix often factors with a ~1e-19 pivot instead of
        # raising — so vet the U diagonal once per refactorisation (cheap).
        udiag = np.abs(lu.U.diagonal())
        if udiag.shape[0] and udiag.min() <= 1e-12 * max(1.0, float(udiag.max())):
            raise BasisSingularError("numerically singular basis (tiny U pivot)")
        probe = lu.solve(np.ones(bmat.shape[0]))
        if not np.all(np.isfinite(probe)):
            raise BasisSingularError("non-finite LU factors")
        self._lu = lu
        self._etas = []

    @property
    def eta_count(self) -> int:
        """Pivots applied since the last refactorisation."""
        return len(self._etas)

    def ftran(self, v: np.ndarray) -> np.ndarray:
        """``B^-1 @ v`` through the LU factors and the eta file."""
        x = self._lu.solve(np.asarray(v, dtype=float))
        for r, idx, vals, piv in self._etas:
            t = x[r] / piv
            if idx.shape[0]:
                x[idx] -= t * vals
            x[r] = t
        return x

    def btran(self, w: np.ndarray) -> np.ndarray:
        """``w @ B^-1`` — reversed eta file, then the transposed LU solve."""
        u = np.array(w, dtype=float, copy=True)
        for r, idx, vals, piv in reversed(self._etas):
            s = float(u[idx] @ vals) if idx.shape[0] else 0.0
            u[r] = (u[r] - s) / piv
        return self._lu.solve(u, trans="T")

    def unit_btran(self, i: int) -> np.ndarray:
        """Row ``i`` of ``B^-1``."""
        e = np.zeros(self._lu.shape[0])
        e[i] = 1.0
        return self.btran(e)

    def update(self, leaving: int, direction: np.ndarray) -> None:
        """Append one eta vector — O(nnz(direction)), never O(m^2)."""
        piv = float(direction[leaving])
        nz = np.nonzero(direction)[0]
        nz = nz[nz != leaving]
        self._etas.append((leaving, nz, direction[nz].copy(), piv))


def make_engine(
    a: sparse.csc_matrix,
    basis: np.ndarray,
    dense_max_rows: int = DENSE_ENGINE_MAX_ROWS,
):
    """Factorise ``a[:, basis]`` with the engine suited to its size.

    Raises :class:`BasisSingularError` when the basis cannot be factorised.
    """
    if basis.shape[0] <= dense_max_rows:
        return DenseInverseEngine(a, basis)
    return SparseLUEngine(a, basis)
