"""From-scratch two-phase revised simplex solver.

The paper solves its scheduling LPs with GLPK's simplex; this module is an
independent, dependency-free (NumPy/SciPy only) reference implementation used
to cross-validate the HiGHS backend in the test suite, in the LP-backend
ablation benchmark, and as the engine behind the sharded epoch-LP
decomposition (:mod:`repro.lp.sharded`).

Implementation notes
--------------------
* Operates on :class:`~repro.lp.standard_form.StandardFormLP`
  (``min c@y, A@y == b, y >= 0, b >= 0``) whose matrix is sparse CSC.
* Phase 1 minimises the sum of artificial variables to find a basic feasible
  solution; phase 2 optimises the true objective from there.
* Pricing uses Dantzig's rule (most negative reduced cost) with an automatic
  switch to Bland's rule after a stall to guarantee termination under
  degeneracy.
* The basis factorisation lives behind the engine interface of
  :mod:`repro.lp.sparse_core`: small bases keep the classic explicit dense
  inverse (rank-one product-form updates), large bases use a sparse LU
  factorisation plus an eta file whose per-pivot cost tracks basis fill-in
  instead of m^2.  Basic values are maintained incrementally across pivots
  and recomputed at each periodic refactorisation (``refactor_every``),
  which bounds both numerical drift and the eta-file length.
* **Warm starts**: ``solve_assembled(asm, warm=ctx)`` threads a
  :class:`~repro.lp.warmstart.WarmStartContext` through a stream of related
  models.  The previous epoch's optimal basis is repaired onto the new
  model by stable row/column labels (departed columns fall back to the
  row's slack), re-factorised once, and then repaired by dual simplex when
  the start is primal infeasible.  Any miss — unlabelled model, singular
  basis, dual-infeasible start, non-convergence — falls back to the cold
  two-phase path, so warm solves can only differ from cold solves within
  solver tolerances, never in correctness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus
from repro.lp.sparse_core import (
    DENSE_ENGINE_MAX_ROWS,
    BasisSingularError,
    dense_column,
    make_engine,
)
from repro.lp.standard_form import StandardFormLP, to_standard_form
from repro.lp.warmstart import WarmStartContext
from repro.obs import lpprof


class SimplexError(RuntimeError):
    """Raised on internal simplex failures (singular basis, iteration cap).

    ``status`` carries the structured :class:`LPStatus` the failure maps to
    (``ITERATION_LIMIT`` for pivot-cap exhaustion, ``NUMERICAL`` for
    degenerate/singular pivots and non-convergence), so callers catching the
    exception — or receiving the :class:`LPResult` it is converted into —
    never have to classify by message text.
    """

    def __init__(self, message: str, status: LPStatus = LPStatus.NUMERICAL) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class _Tableau:
    """Mutable simplex state: basis indices, factorisation engine, values."""

    a: sparse.csc_matrix
    b: np.ndarray
    basis: np.ndarray  # column index of each basic variable, len m
    engine: object  # sparse_core engine: ftran/btran/unit_btran/update/refactor
    xb_val: np.ndarray  # current basic values B^-1 b, maintained incrementally
    pivots_since_refactor: int = 0

    def xb(self) -> np.ndarray:
        return self.xb_val


class SimplexBackend:
    """Two-phase revised simplex over a sparse basis factorisation.

    Parameters
    ----------
    max_iterations:
        Safety cap on total pivots across both phases.
    tol:
        Numerical tolerance for reduced costs / ratio tests.
    bland_after:
        Number of non-improving pivots after which pricing switches from
        Dantzig to Bland's anti-cycling rule.
    refactor_every:
        Refactorise the basis after this many eta updates (0 disables).
        Eta files accumulate rounding and length; periodic refactorisation
        keeps long solves and warm-started chains well conditioned.
    dense_engine_max_rows:
        Bases with at most this many rows use the explicit dense inverse
        engine; larger bases use the sparse LU + eta-file engine (see
        :mod:`repro.lp.sparse_core`).  ``0`` forces sparse everywhere.
    """

    name = "simplex"
    #: the incremental pipeline may pass ``warm=`` to :meth:`solve_assembled`
    supports_warm_start = True

    def __init__(
        self,
        max_iterations: int = 20000,
        tol: float = 1e-9,
        bland_after: int = 50,
        presolve: bool = False,
        refactor_every: int = 256,
        dense_engine_max_rows: int = DENSE_ENGINE_MAX_ROWS,
    ) -> None:
        self.max_iterations = max_iterations
        self.tol = tol
        self.bland_after = bland_after
        #: apply repro.lp.presolve reductions first; duals are then not
        #: reported (row identities change under row elimination)
        self.presolve = presolve
        self.refactor_every = refactor_every
        self.dense_engine_max_rows = dense_engine_max_rows
        #: (fixed_vars, dropped_rows) of the most recent presolve, for the
        #: profiling wrapper
        self._last_presolve = None

    # -- public API -----------------------------------------------------------
    def solve(self, lp: LinearProgram) -> LPResult:
        """Assemble and solve a LinearProgram, mapping names."""
        result = self.solve_assembled(lp.assemble())
        if result.x is not None:
            result.by_name = lp.value_map(result.x)
        return result

    def solve_assembled(self, asm, warm: Optional[WarmStartContext] = None) -> LPResult:
        """Solve a pre-assembled LP.

        When an :mod:`repro.obs.lpprof` collector is installed the solve is
        profiled (shape, presolve reductions, wall time, iterations,
        status); the presolve-then-solve path reports as a single record.

        ``warm`` carries warm-start state across a stream of related models
        (see :class:`~repro.lp.warmstart.WarmStartContext`); it is ignored
        on the presolve path, where row/column identities change.
        """
        if not lpprof.active():
            return self._solve_assembled(asm, warm=warm)
        self._last_presolve = None
        t0 = time.perf_counter()
        result = self._solve_assembled(asm, warm=warm)
        fixed, dropped = self._last_presolve or (0, 0)
        lpprof.observe(
            lpprof.LPSolveRecord(
                name=getattr(asm, "name", "lp"),
                backend=self.name,
                wall_seconds=time.perf_counter() - t0,
                iterations=result.iterations,
                status=result.status.value,
                presolve_fixed_vars=fixed,
                presolve_dropped_rows=dropped,
                presolve_applied=self.presolve,
                meta=lpprof.current_scope(),
                **lpprof.describe_assembled(asm),
            )
        )
        return result

    def _solve_assembled(self, asm, warm: Optional[WarmStartContext] = None) -> LPResult:
        if self.presolve:
            from repro.lp.presolve import PresolveStatus, presolve

            pre = presolve(asm)
            self._last_presolve = (pre.fixed_variables, pre.dropped_rows)
            if pre.status is PresolveStatus.INFEASIBLE:
                return LPResult(
                    status=LPStatus.INFEASIBLE,
                    objective=float("nan"),
                    x=None,
                    backend=self.name,
                    message="presolve proved infeasibility",
                )
            inner = SimplexBackend(
                max_iterations=self.max_iterations,
                tol=self.tol,
                bland_after=self.bland_after,
                presolve=False,
                refactor_every=self.refactor_every,
                dense_engine_max_rows=self.dense_engine_max_rows,
            )._solve_assembled(pre.reduced)
            if inner.x is not None:
                inner.x = pre.restore(inner.x)
            inner.dual_ub = None  # row identities changed under elimination
            inner.dual_eq = None
            return inner
        if asm.num_variables == 0:
            feasible = bool(np.all(asm.b_ub >= 0)) and bool(np.all(asm.b_eq == 0))
            return LPResult(
                status=LPStatus.OPTIMAL if feasible else LPStatus.INFEASIBLE,
                objective=asm.objective_constant if feasible else float("nan"),
                x=np.zeros(0),
                by_name={},
                backend=self.name,
            )
        std = to_standard_form(asm, cache=warm.std_cache if warm is not None else None)
        warm_out = None
        attempted = False
        if warm is not None and warm.snapshot is not None:
            attempted = True
            warm_out = self._try_warm(std, warm)
        if warm_out is not None:
            status, y, iters, pi, tab = warm_out
        else:
            try:
                status, y, iters, pi, tab = self._solve_standard(std)
            except SimplexError as exc:
                return LPResult(
                    status=exc.status,
                    objective=float("nan"),
                    x=None,
                    backend=self.name,
                    message=str(exc),
                )
        if status is not LPStatus.OPTIMAL:
            return LPResult(
                status=status,
                objective=float("nan") if status is LPStatus.INFEASIBLE else float("-inf"),
                x=None,
                backend=self.name,
                iterations=iters,
            )
        if warm is not None and tab is not None:
            warm.record_solve(
                std, tab.basis, iters, used_warm=warm_out is not None, attempted=attempted
            )
        x = std.recover(y)
        objective = float(std.c @ y) + std.objective_constant
        dual_ub, dual_eq = self._map_duals(std, pi, asm)
        return LPResult(
            status=LPStatus.OPTIMAL,
            objective=objective,
            x=x,
            by_name={},
            iterations=iters,
            backend=self.name,
            dual_ub=dual_ub,
            dual_eq=dual_eq,
        )

    @staticmethod
    def _map_duals(std, pi, asm):
        """Map standard-form row prices back to the assembled rows.

        ``pi[i]`` is d(objective)/d(b_std[i]); a standard row is ``sign``
        times the original, so the original marginal is ``sign * pi[i]``.
        Bound rows fold into variable reduced costs and are not reported.
        """
        if pi is None:
            return None, None
        dual_ub = np.zeros(asm.a_ub.shape[0])
        dual_eq = np.zeros(asm.a_eq.shape[0])
        for i, (kind, idx, sign) in enumerate(std.row_origin):
            # undo equilibration: the scaled row is (orig / scale), so the
            # marginal w.r.t. the original rhs picks up a 1/scale factor
            value = sign * pi[i] / std.row_scale[i]
            if kind == "ub":
                dual_ub[idx] = value
            elif kind == "eq":
                dual_eq[idx] = value
        return dual_ub, dual_eq

    # -- tableau helpers --------------------------------------------------------
    def _make_tableau(
        self, a: sparse.csc_matrix, b: np.ndarray, basis: np.ndarray
    ) -> _Tableau:
        """Factorise ``basis`` and seed the incremental basic values."""
        engine = make_engine(a, basis, self.dense_engine_max_rows)
        return _Tableau(a=a, b=b, basis=basis, engine=engine, xb_val=engine.ftran(b))

    # -- warm start -------------------------------------------------------------
    def _try_warm(self, std: StandardFormLP, warm: WarmStartContext):
        """Attempt a warm solve from the context's repaired basis.

        Returns the same tuple as :meth:`_solve_standard` on success, or
        ``None`` when the snapshot cannot be used — the caller then runs the
        cold two-phase path.  An unbounded/infeasible claim reached from a
        warm basis is *not* trusted (the repaired start could be atypical);
        those also fall back to the cold certificate.
        """
        basis = warm.snapshot.map_onto(std)
        if basis is None:
            return None
        a, b, c = std.a, std.b, std.c
        m = a.shape[0]
        if m == 0 or basis.shape[0] != m:
            return None
        try:
            tab = self._make_tableau(a, b, basis.copy())
        except BasisSingularError:
            return None
        if not np.all(np.isfinite(tab.xb_val)):
            return None
        at = a.T  # CSR view: reduced-cost products are row-major
        scale_b = max(1.0, float(np.max(np.abs(b), initial=0.0)))
        scale_c = max(1.0, float(np.max(np.abs(c), initial=0.0)))
        feas_tol = 1e-9 * scale_b
        try:
            iters_repair = 0
            if float(np.min(tab.xb(), initial=0.0)) < -feas_tol:
                # primal-infeasible start: dual simplex repair is only valid
                # from a dual-feasible basis
                reduced = c - at @ tab.engine.btran(c[tab.basis])
                reduced[tab.basis] = 0.0
                if float(np.min(reduced)) < -1e-7 * scale_c:
                    return None
                status, iters_repair = self._iterate_dual(tab, c)
                if status is not LPStatus.OPTIMAL:
                    return None
            status, iters_opt = self._iterate(tab, c)
        except SimplexError:
            return None
        if status is not LPStatus.OPTIMAL:
            return None
        # validate the final basis against the original data: the eta chain
        # must still reproduce a primal-feasible solution
        xb = tab.xb()
        if float(np.min(xb, initial=0.0)) < -1e-6 * scale_b:
            return None
        resid = a[:, tab.basis] @ xb - b
        if float(np.max(np.abs(resid), initial=0.0)) > 1e-6 * scale_b:
            return None
        y = np.zeros(a.shape[1])
        y[tab.basis] = xb
        pi = tab.engine.btran(c[tab.basis])
        return LPStatus.OPTIMAL, y, iters_repair + iters_opt, pi, tab

    # -- standard form driver ---------------------------------------------------
    def _solve_standard(
        self, std: StandardFormLP
    ) -> tuple[LPStatus, np.ndarray, int, "np.ndarray | None", "_Tableau | None"]:
        a, b, c = std.a, std.b, std.c
        m, n = a.shape
        if m == 0:
            # No constraints: optimum is 0 for c >= 0, else unbounded.
            if np.any(c < -self.tol):
                return LPStatus.UNBOUNDED, np.zeros(n), 0, None, None
            return LPStatus.OPTIMAL, np.zeros(n), 0, np.zeros(0), None

        # ---- phase 1: artificial basis ----
        a1 = sparse.hstack([a, sparse.identity(m, format="csc")], format="csc")
        c1 = np.concatenate([np.zeros(n), np.ones(m)])
        try:
            tab = self._make_tableau(a1, b, np.arange(n, n + m))
        except BasisSingularError as exc:
            raise SimplexError(str(exc)) from None
        status, iters1 = self._iterate(tab, c1)
        if status is not LPStatus.OPTIMAL:
            raise SimplexError("phase 1 did not converge")
        phase1_obj = float(c1[tab.basis] @ tab.xb())
        if phase1_obj > 1e-7:
            return LPStatus.INFEASIBLE, np.zeros(n), iters1, None, None

        # Drive any artificial variables still in the basis out (degeneracy).
        self._purge_artificials(tab, n)

        # ---- phase 2 ----
        # Narrowing to the structural columns does not disturb the engine:
        # only column *indices* are renamed, the basis matrix itself (and
        # hence its factorisation) is unchanged.
        tab.a = tab.a[:, :n].tocsc()
        c2 = c
        # Rows whose basic variable is an un-purgeable artificial correspond
        # to redundant constraints; freeze them by keeping the artificial at
        # zero with zero cost.
        art_rows = tab.basis >= n
        if np.any(art_rows):
            keep = sparse.identity(m, format="csc")[:, np.where(art_rows)[0]]
            tab.a = sparse.hstack([tab.a, keep], format="csc")
            c2 = np.concatenate([c, np.zeros(int(art_rows.sum()))])
            remap = {}
            for new_j, row in enumerate(np.where(art_rows)[0]):
                remap[n + row] = n + new_j
            tab.basis = np.array([remap.get(j, j) for j in tab.basis])
        status, iters2 = self._iterate(tab, c2)
        if status is LPStatus.UNBOUNDED:
            return LPStatus.UNBOUNDED, np.zeros(n), iters1 + iters2, None, None
        if status is not LPStatus.OPTIMAL:
            raise SimplexError("phase 2 did not converge")
        y = np.zeros(tab.a.shape[1])
        y[tab.basis] = tab.xb()
        pi = tab.engine.btran(c2[tab.basis])  # row prices: d(obj)/d(b)
        return LPStatus.OPTIMAL, y[:n], iters1 + iters2, pi, tab

    # -- pivoting ---------------------------------------------------------------
    def _iterate(self, tab: _Tableau, c: np.ndarray) -> tuple[LPStatus, int]:
        m = tab.b.shape[0]
        at = tab.a.T  # CSR view of the transpose, shared data
        stall = 0
        last_obj = np.inf
        for it in range(self.max_iterations):
            xb = tab.xb()
            obj = float(c[tab.basis] @ xb)
            if obj < last_obj - self.tol:
                stall = 0
            else:
                stall += 1
            last_obj = obj
            use_bland = stall > self.bland_after

            # reduced costs: r = c - (c_B B^-1) A
            y_dual = tab.engine.btran(c[tab.basis])
            reduced = c - at @ y_dual
            reduced[tab.basis] = 0.0  # numerical exactness for basics

            if use_bland:
                candidates = np.where(reduced < -self.tol)[0]
                if candidates.size == 0:
                    return LPStatus.OPTIMAL, it
                entering = int(candidates[0])
            else:
                entering = int(np.argmin(reduced))
                if reduced[entering] >= -self.tol:
                    return LPStatus.OPTIMAL, it

            direction = tab.engine.ftran(dense_column(tab.a, entering))
            positive = direction > self.tol
            if not np.any(positive):
                return LPStatus.UNBOUNDED, it

            ratios = np.full(m, np.inf)
            ratios[positive] = xb[positive] / direction[positive]
            if use_bland:
                min_ratio = ratios.min()
                ties = np.where(ratios <= min_ratio + self.tol)[0]
                # Bland: leave the tied row whose basic variable has the
                # smallest index.
                leaving = int(ties[np.argmin(tab.basis[ties])])
            else:
                leaving = int(np.argmin(ratios))

            self._pivot(tab, entering, leaving, direction)
        raise SimplexError(
            f"iteration cap {self.max_iterations} reached",
            status=LPStatus.ITERATION_LIMIT,
        )

    def _iterate_dual(self, tab: _Tableau, c: np.ndarray) -> tuple[LPStatus, int]:
        """Dual simplex: restore primal feasibility from a dual-feasible basis.

        Used only for warm-start repair — the caller guarantees reduced
        costs are non-negative on entry, and every pivot preserves that.
        Returns ``OPTIMAL`` once no basic variable is negative (the basis is
        then primal feasible *and* dual feasible, i.e. optimal).
        """
        at = tab.a.T
        feas_tol = 1e-9 * max(1.0, float(np.max(np.abs(tab.b), initial=0.0)))
        for it in range(self.max_iterations):
            xb = tab.xb()
            violated = np.where(xb < -feas_tol)[0]
            if violated.size == 0:
                return LPStatus.OPTIMAL, it
            leaving = int(violated[np.argmin(xb[violated])])
            y_dual = tab.engine.btran(c[tab.basis])
            reduced = c - at @ y_dual
            reduced[tab.basis] = 0.0
            row = at @ tab.engine.unit_btran(leaving)
            row[tab.basis] = 0.0  # basic columns never re-enter on their own row
            candidates = np.where(row < -self.tol)[0]
            if candidates.size == 0:
                # the row proves primal infeasibility — but a warm-start
                # repair must not certify that; callers fall back cold
                raise SimplexError(
                    "dual simplex found no entering column",
                    status=LPStatus.INFEASIBLE,
                )
            ratios = reduced[candidates] / (-row[candidates])
            entering = int(candidates[np.argmin(ratios)])
            direction = tab.engine.ftran(dense_column(tab.a, entering))
            self._pivot(tab, entering, leaving, direction)
        raise SimplexError(
            "dual simplex iteration cap reached", status=LPStatus.ITERATION_LIMIT
        )

    def _pivot(self, tab: _Tableau, entering: int, leaving: int, direction: np.ndarray) -> None:
        """One basis exchange: engine eta update plus incremental values.

        The same value update serves primal and dual pivots — the new basic
        values are ``E @ xb`` for the eta matrix ``E`` of this pivot.
        """
        pivot = direction[leaving]
        if abs(pivot) < 1e-12:
            raise SimplexError("numerically singular pivot")
        tab.engine.update(leaving, direction)
        t = tab.xb_val[leaving] / pivot
        tab.xb_val -= t * direction
        tab.xb_val[leaving] = t
        tab.basis[leaving] = entering
        tab.pivots_since_refactor += 1
        if self.refactor_every and tab.pivots_since_refactor >= self.refactor_every:
            self._refactor(tab)

    @staticmethod
    def _refactor(tab: _Tableau) -> None:
        """Refactorise the basis and refresh the basic values (drift control)."""
        try:
            tab.engine.refactor(tab.a, tab.basis)
        except BasisSingularError:
            raise SimplexError("singular basis at refactorisation") from None
        tab.xb_val = tab.engine.ftran(tab.b)
        tab.pivots_since_refactor = 0

    def _purge_artificials(self, tab: _Tableau, n: int) -> None:
        """Pivot basic artificial variables out where a real column can enter."""
        m = tab.b.shape[0]
        struct_t = tab.a[:, :n].T.tocsr()
        for row in range(m):
            if tab.basis[row] < n:
                continue
            row_vec = struct_t @ tab.engine.unit_btran(row)
            candidates = np.where(np.abs(row_vec) > 1e-9)[0]
            if candidates.size == 0:
                continue  # redundant row; handled in phase 2
            entering = int(candidates[0])
            direction = tab.engine.ftran(dense_column(tab.a, entering))
            self._pivot(tab, entering, row, direction)
        tab.pivots_since_refactor = 0
