"""LP presolve: cheap reductions before the solver sees the model.

Implements the classic safe reductions on an
:class:`~repro.lp.problem.AssembledLP`:

* **fixed variables** (``lower == upper``) are substituted out;
* **empty rows** are dropped (or prove infeasibility);
* **bound-redundant <= rows** — rows whose worst-case lhs under the
  variable bounds already satisfies the rhs — are dropped;
* **trivially infeasible <= rows** — best-case lhs above rhs — abort early.

HiGHS presolves internally; these reductions mainly serve the from-scratch
simplex (dense: every removed row/column is quadratic work saved) and give
tests a place to pin presolve semantics independently of any solver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy import sparse

from repro.lp.problem import AssembledLP


class PresolveStatus(enum.Enum):
    REDUCED = "reduced"
    INFEASIBLE = "infeasible"


#: primal feasibility tolerance presolve honours when declaring
#: infeasibility — matched to HiGHS's default so presolve never rejects a
#: model the backend would accept
FEASIBILITY_TOL = 1e-7


@dataclass
class PresolveResult:
    """Outcome of :func:`presolve`."""

    status: PresolveStatus
    reduced: Optional[AssembledLP]
    #: maps a reduced-space solution vector back to the full variable space
    restore: Optional[Callable[[np.ndarray], np.ndarray]]
    fixed_variables: int = 0
    dropped_rows: int = 0

    @property
    def is_feasible(self) -> bool:
        """True unless presolve proved infeasibility."""
        return self.status is PresolveStatus.REDUCED


class PresolveCache:
    """Reuses the COO pattern of ``a_ub`` across repeated presolves.

    Soundness rests on *array identity*, not value comparison: when the
    matrix's ``indices``/``indptr`` are the very array objects seen last
    time (which is what :class:`repro.core.assembly.AssemblyCache` produces
    on a structure hit), the expanded row/col index arrays are reused.
    Anything value-dependent (signs, interval sums, redundancy decisions) is
    recomputed every call.
    """

    def __init__(self) -> None:
        self._indices_ref: Optional[np.ndarray] = None
        self._indptr_ref: Optional[np.ndarray] = None
        self._pattern: Optional[tuple] = None
        self.hits = 0
        self.misses = 0

    def coo_pattern(self, mat: sparse.csr_matrix):
        """``(row, col, row_counts)`` index arrays for a CSR matrix."""
        if (
            self._pattern is not None
            and mat.indices is self._indices_ref
            and mat.indptr is self._indptr_ref
        ):
            self.hits += 1
            return self._pattern
        self.misses += 1
        row_counts = np.diff(mat.indptr)
        rows = np.repeat(np.arange(mat.shape[0]), row_counts)
        self._indices_ref = mat.indices
        self._indptr_ref = mat.indptr
        self._pattern = (rows, mat.indices, row_counts)
        return self._pattern


def presolve(
    asm: AssembledLP, tol: float = 1e-12, cache: Optional[PresolveCache] = None
) -> PresolveResult:
    """Apply the reductions; never changes the optimal objective.

    ``cache`` (optional) reuses pattern-dependent index arrays across calls
    on structurally identical models — see :class:`PresolveCache`.
    """
    lowers = asm.bounds[:, 0].copy()
    uppers = asm.bounds[:, 1].copy()

    fixed = np.isfinite(lowers) & (np.abs(uppers - lowers) <= tol)
    keep = ~fixed
    any_fixed = bool(np.any(fixed))
    fixed_vals = np.where(fixed, lowers, 0.0)

    # objective constant from fixed variables
    obj_const = asm.objective_constant + float(asm.c @ fixed_vals)
    c_red = asm.c[keep]

    def shrink(mat: sparse.csr_matrix, rhs: np.ndarray):
        if mat.shape[0] == 0:
            return mat.tocsr(), rhs.copy()
        if not any_fixed:
            # nothing substituted out: the matrix passes through untouched
            # (and keeps its index arrays, which is what lets the pattern
            # cache hit across epochs)
            return mat, rhs.copy()
        rhs_adj = rhs - mat @ fixed_vals
        return mat.tocsc()[:, keep].tocsr(), rhs_adj

    a_ub, b_ub = shrink(asm.a_ub, asm.b_ub)
    a_eq, b_eq = shrink(asm.a_eq, asm.b_eq)
    lo_red, up_red = lowers[keep], uppers[keep]

    # --- row analysis on the reduced <= system ---
    dropped = 0
    if a_ub.shape[0]:
        if cache is not None and not any_fixed:
            rr, jj, _counts = cache.coo_pattern(a_ub)
            vv = a_ub.data
        else:
            coo = a_ub.tocoo()
            rr, jj, vv = coo.row, coo.col, coo.data
        # interval arithmetic per row: min/max achievable lhs under bounds
        pos = vv > 0
        lo_c = vv * np.where(pos, lo_red[jj], up_red[jj])
        hi_c = vv * np.where(pos, up_red[jj], lo_red[jj])
        lo_c = np.where(np.isfinite(lo_c), lo_c, -np.inf)
        hi_c = np.where(np.isfinite(hi_c), hi_c, np.inf)
        m_ub = a_ub.shape[0]
        dense_rows_min = np.bincount(rr, weights=lo_c, minlength=m_ub)
        dense_rows_max = np.bincount(rr, weights=hi_c, minlength=m_ub)

        # conservative: only declare infeasibility beyond solver feasibility
        # tolerances (HiGHS accepts ~1e-7 violations), scaled by row size
        slack = np.maximum(
            FEASIBILITY_TOL,
            1e-6
            * np.maximum.reduce(
                [np.ones_like(b_ub), np.abs(b_ub), np.abs(dense_rows_min)]
            ),
        )
        infeasible = dense_rows_min > b_ub + slack
        if np.any(infeasible):
            return PresolveResult(
                status=PresolveStatus.INFEASIBLE,
                reduced=None,
                restore=None,
                fixed_variables=int(fixed.sum()),
            )
        redundant = dense_rows_max <= b_ub + 1e-12
        row_counts = np.diff(a_ub.indptr)
        empty = row_counts == 0
        bad_empty = empty & (b_ub < -FEASIBILITY_TOL)
        if np.any(bad_empty):
            return PresolveResult(
                status=PresolveStatus.INFEASIBLE,
                reduced=None,
                restore=None,
                fixed_variables=int(fixed.sum()),
            )
        keep_rows = ~(redundant | empty)
        dropped = int((~keep_rows).sum())
        a_ub = a_ub[keep_rows]
        b_ub = b_ub[keep_rows]

    if a_eq.shape[0]:
        row_counts = np.diff(a_eq.indptr)
        empty = row_counts == 0
        if np.any(empty & (np.abs(b_eq) > FEASIBILITY_TOL)):
            return PresolveResult(
                status=PresolveStatus.INFEASIBLE,
                reduced=None,
                restore=None,
                fixed_variables=int(fixed.sum()),
            )
        dropped += int(empty.sum())
        a_eq = a_eq[~empty]
        b_eq = b_eq[~empty]

    keep_idx = np.where(keep)[0]

    def restore(x_red: np.ndarray) -> np.ndarray:
        x = fixed_vals.copy()
        x[keep_idx] = x_red
        return x

    reduced = AssembledLP(
        c=c_red,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        bounds=np.column_stack([lo_red, up_red]) if keep_idx.size else np.zeros((0, 2)),
        objective_constant=obj_const,
    )
    return PresolveResult(
        status=PresolveStatus.REDUCED,
        reduced=reduced,
        restore=restore,
        fixed_variables=int(fixed.sum()),
        dropped_rows=dropped,
    )
