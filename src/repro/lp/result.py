"""Solver-independent LP results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


class LPStatus(enum.Enum):
    """Outcome of an LP solve, normalised across backends.

    ``ITERATION_LIMIT`` and ``NUMERICAL`` are structured failure statuses
    (pivot-limit exhaustion and numerical breakdown respectively) so retry
    layers like :class:`~repro.resilience.ResilientSolver` can classify
    failures without string-matching exception messages; ``ERROR`` remains
    the catch-all for anything a backend cannot attribute.
    """

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL = "numerical"
    ERROR = "error"

    @property
    def is_failure(self) -> bool:
        """True for any non-optimal terminal status."""
        return self is not LPStatus.OPTIMAL


@dataclass
class LPResult:
    """Result of solving a :class:`~repro.lp.problem.LinearProgram`.

    ``x`` is indexed by variable index; ``by_name`` offers name-based access.
    ``objective`` includes the model's constant objective term.
    """

    status: LPStatus
    objective: float
    x: Optional[np.ndarray]
    by_name: Dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    backend: str = ""
    message: str = ""
    #: dual values (marginals) of the ``A_ub`` rows, when the backend
    #: provides them: d(objective)/d(b_ub); <= 0 for binding <= rows of a
    #: minimisation.  None when unavailable.
    dual_ub: Optional[np.ndarray] = None
    #: dual values of the ``A_eq`` rows, when available.
    dual_eq: Optional[np.ndarray] = None

    @property
    def is_optimal(self) -> bool:
        """True when the solve reached optimality."""
        return self.status is LPStatus.OPTIMAL

    def __getitem__(self, name: str) -> float:
        return self.by_name[name]

    def require_optimal(self) -> "LPResult":
        """Raise if the solve did not reach optimality; returns self."""
        if not self.is_optimal:
            raise RuntimeError(
                f"LP solve failed: status={self.status.value} "
                f"backend={self.backend!r} message={self.message!r}"
            )
        return self
