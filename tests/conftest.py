"""Shared test fixtures: small clusters and workloads."""

from __future__ import annotations

import pytest

from repro.cluster.builder import ClusterBuilder, build_paper_testbed
from repro.cluster.topology import Topology
from repro.core.model import SchedulingInput
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def tiny_cluster():
    """2 machines / 2 stores / 1 zone; machine 1 is 4x cheaper and faster."""
    b = ClusterBuilder(topology=Topology.of(["z"]), default_uptime=10_000.0)
    b.add_machine("exp", ecu=1.0, cpu_cost=4.0e-5, zone="z")
    b.add_machine("cheap", ecu=4.0, cpu_cost=1.0e-5, zone="z")
    return b.build()


@pytest.fixture
def two_zone_cluster():
    """4 machines over 2 zones; zone-b is cheap; cross-zone transfer costs."""
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), default_uptime=10_000.0)
    b.add_machine("a0", ecu=2.0, cpu_cost=5.0e-5, zone="za")
    b.add_machine("a1", ecu=2.0, cpu_cost=5.0e-5, zone="za")
    b.add_machine("b0", ecu=5.0, cpu_cost=1.0e-5, zone="zb")
    b.add_machine("b1", ecu=5.0, cpu_cost=1.0e-5, zone="zb")
    return b.build()


@pytest.fixture
def small_workload():
    """Two data jobs + one input-less job, 1 GB total."""
    data = [
        DataObject(data_id=0, name="d0", size_mb=640.0, origin_store=0),
        DataObject(data_id=1, name="d1", size_mb=384.0, origin_store=1),
    ]
    jobs = [
        Job(job_id=0, name="scan", tcp=20.0 / 64.0, data_ids=[0], num_tasks=10),
        Job(job_id=1, name="count", tcp=90.0 / 64.0, data_ids=[1], num_tasks=6),
        Job(job_id=2, name="pi", tcp=0.0, num_tasks=4, cpu_seconds_noinput=400.0),
    ]
    return Workload(jobs=jobs, data=data)


@pytest.fixture
def small_input(two_zone_cluster, small_workload):
    return SchedulingInput.from_parts(two_zone_cluster, small_workload)


@pytest.fixture
def paper_cluster():
    return build_paper_testbed(12, c1_medium_fraction=0.5, seed=1)
