"""Tests for CSV export of experiment results."""

import csv

import pytest

from repro.experiments.export import (
    export_all,
    fig5_table,
    fig8_table,
    frontier_table,
    write_csv,
)


def read(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


def test_write_csv_roundtrip(tmp_path):
    p = write_csv(tmp_path / "t.csv", ["a", "b"], [[1, 2], [3, 4]])
    rows = read(p)
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_write_csv_creates_directories(tmp_path):
    p = write_csv(tmp_path / "deep" / "dir" / "t.csv", ["x"], [[1]])
    assert p.exists()


def test_fig5_table(tmp_path):
    from repro.experiments.fig5_simulated_savings import run, SMALL_SIZES

    res = run(sizes=SMALL_SIZES[:2], seeds=(0,))
    header, rows = fig5_table(res)
    assert header[0] == "tasks"
    assert len(rows) == 2
    p = write_csv(tmp_path / "fig5.csv", header, rows)
    assert len(read(p)) == 3


def test_fig8_table():
    from repro.experiments.fig8_epoch_tradeoff import Fig8Result

    res = Fig8Result(epochs=[100.0, 200.0], costs=[2.0, 1.0], exec_times=[10.0, 20.0])
    header, rows = fig8_table(res)
    assert rows == [[100.0, 2.0, 10.0], [200.0, 1.0, 20.0]]


def test_frontier_table(small_input, tmp_path):
    from repro.core.deadline import cost_deadline_frontier

    frontier = cost_deadline_frontier(small_input, num_points=4)
    header, rows = frontier_table(frontier)
    assert len(rows) == 4
    p = write_csv(tmp_path / "f.csv", header, rows)
    assert read(p)[0] == ["deadline_s", "cost", "feasible"]


def test_export_all(tmp_path):
    from repro.experiments.fig5_simulated_savings import run, SMALL_SIZES

    res = run(sizes=SMALL_SIZES[:1], seeds=(0,))
    written = export_all(tmp_path, fig5=res)
    assert [p.name for p in written] == ["fig5.csv"]


def test_export_all_unknown_kind(tmp_path):
    with pytest.raises(KeyError, match="unknown result kind"):
        export_all(tmp_path, fig99=None)
