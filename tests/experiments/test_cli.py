"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_parser_requires_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table IV" in out


def test_fig1_command(capsys):
    assert main(["fig1"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_multiple_commands(capsys):
    assert main(["tables", "fig1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Figure 1" in out


def test_duplicates_run_once(capsys):
    assert main(["fig1", "fig1"]) == 0
    out = capsys.readouterr().out
    assert out.count("Figure 1 —") == 1


def test_unknown_command(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_all_expands_to_every_command():
    # 'all' must reference only registered commands (no stale names)
    assert set(COMMANDS) == {
        "tables", "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fairness", "frontier", "interference", "check",
    }


def test_frontier_command(capsys):
    assert main(["frontier"]) == 0
    out = capsys.readouterr().out
    assert "frontier" in out
    assert "deadline" in out


def test_csv_export_flag(tmp_path, capsys):
    assert main(["fig5", "--csv", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert (tmp_path / "fig5.csv").exists()
    header = (tmp_path / "fig5.csv").read_text().splitlines()[0]
    assert header == "tasks,stores,machines,lips_cost,default_cost,reduction"
