"""Tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_parser_requires_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table IV" in out


def test_fig1_command(capsys):
    assert main(["fig1"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_multiple_commands(capsys):
    assert main(["tables", "fig1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Figure 1" in out


def test_duplicates_run_once(capsys):
    assert main(["fig1", "fig1"]) == 0
    out = capsys.readouterr().out
    assert out.count("Figure 1 —") == 1


def test_unknown_command(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_all_expands_to_every_command():
    # 'all' must reference only registered commands (no stale names)
    assert set(COMMANDS) == {
        "tables", "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fairness", "frontier", "interference", "check",
    }


def test_frontier_command(capsys):
    assert main(["frontier"]) == 0
    out = capsys.readouterr().out
    assert "frontier" in out
    assert "deadline" in out


def test_csv_export_flag(tmp_path, capsys):
    assert main(["fig5", "--csv", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert (tmp_path / "fig5.csv").exists()
    header = (tmp_path / "fig5.csv").read_text().splitlines()[0]
    assert header == "tasks,stores,machines,lips_cost,default_cost,reduction"


def test_tables_csv_export(tmp_path, capsys):
    assert main(["tables", "--csv", str(tmp_path)]) == 0
    assert "wrote" in capsys.readouterr().out
    for name in ("table1", "table3", "table4"):
        assert (tmp_path / f"{name}.csv").exists()
    header = (tmp_path / "table1.csv").read_text().splitlines()[0]
    assert header == "app,property,cpu_s_per_64mb_block"


class TestObservabilityFlags:
    def test_trace_flag_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["fig8", "--trace", str(path)]) == 0
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert records
        cats = {r["cat"] for r in records}
        assert {"epoch", "task", "lp"} <= cats
        assert any(r["type"] == "lp_solve" for r in records)

    def test_metrics_flag_writes_registry_dump(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["fig8", "--metrics", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        dump = json.loads(path.read_text())
        names = {m["name"] for m in dump}
        assert {"tasks_run", "lp_solves", "makespan"} <= names

    def test_no_flags_no_files(self, tmp_path, capsys):
        assert main(["fig1"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestReportSubcommand:
    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        main(["fig8", "--trace", str(path)])
        capsys.readouterr()  # swallow the experiment output
        return path

    def test_renders_tables(self, trace_path, capsys):
        assert main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        for section in ("records", "Per-epoch", "Per-solve", "Per-machine"):
            assert section in out

    def test_chrome_conversion(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        assert main(["report", str(trace_path), "--chrome", str(out_path)]) == 0
        assert "traceEvents" in json.loads(out_path.read_text())

    def test_limit_flag(self, trace_path, capsys):
        assert main(["report", str(trace_path), "--limit", "2"]) == 0
        assert "first 2 of" in capsys.readouterr().out

    def test_missing_path_exits(self):
        with pytest.raises(SystemExit):
            main(["report"])

    def test_nonexistent_trace_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_garbage_trace_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n")
        assert main(["report", str(path)]) == 2
        assert "not a JSONL trace" in capsys.readouterr().err


def test_unwritable_trace_path(capsys):
    assert main(["fig1", "--trace", "/nonexistent-dir/t.jsonl"]) == 2
    assert "cannot write trace" in capsys.readouterr().err
