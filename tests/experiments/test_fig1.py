"""Unit tests for the Figure 1 break-even experiment."""

import pytest

from repro.experiments.fig1_breakeven import DEFAULT_RATIOS, run


def test_curves_cover_all_apps():
    res = run()
    assert set(res.savings) == {"grep", "stress1", "stress2", "wordcount", "pi"}
    assert all(len(c) == len(DEFAULT_RATIOS) for c in res.savings.values())


def test_break_even_ordering_matches_cpu_intensity():
    res = run()
    be = res.break_even_ratio
    assert be["pi"] < be["wordcount"] < be["stress2"] < be["stress1"] < be["grep"]


def test_savings_monotone_in_ratio():
    res = run()
    for curve in res.savings.values():
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))


def test_moving_at_ratio_one_never_positive_for_data_apps():
    res = run(ratios=(1.0,))
    for app in ("grep", "stress1", "stress2", "wordcount"):
        assert res.savings[app][0] <= 0.0
    assert res.savings["pi"][0] == pytest.approx(0.0)


def test_break_even_formula():
    """Break-even ratio satisfies c*a == c*b + d exactly."""
    from repro.experiments.fig1_breakeven import DST_PRICE, TRANSFER_PER_MB
    from repro.workload.apps import APP_PROFILES

    res = run()
    for app, prof in APP_PROFILES.items():
        if prof.is_input_less:
            continue
        r = res.break_even_ratio[app]
        lhs = prof.tcp * r * DST_PRICE
        rhs = prof.tcp * DST_PRICE + TRANSFER_PER_MB
        assert lhs == pytest.approx(rhs, rel=1e-9)
