"""Small-scale unit tests of the figure experiment modules.

The benchmarks run these at reporting scale; here each module's ``run`` and
row-formatting functions are exercised on tiny inputs so refactors break
fast, not after a minute of simulation.
"""

import pytest

from repro.experiments.common import DEFAULT, DELAY, LIPS
from repro.workload.apps import make_job
from repro.workload.job import DataObject, Workload


@pytest.fixture(scope="module")
def tiny_table4():
    """A shrunken Table IV: same app mix, 1/16 of the tasks."""
    data = [
        DataObject(data_id=0, name="wc", size_mb=640.0, origin_store=0),
        DataObject(data_id=1, name="grep", size_mb=1280.0, origin_store=1),
        DataObject(data_id=2, name="stress", size_mb=640.0, origin_store=2),
    ]
    jobs = [
        make_job("pi", 0, num_tasks=1),
        make_job("wordcount", 1, data_ids=[0], num_tasks=10),
        make_job("grep", 2, data_ids=[1], num_tasks=20),
        make_job("stress2", 3, data_ids=[2], num_tasks=10),
    ]
    return Workload(jobs=jobs, data=data)


class TestFig6Module:
    def test_run_and_rows(self, tiny_table4):
        from repro.experiments.fig6_cost_reduction import fig6_rows, fig7_rows, run

        res = run(mixes=(0.0, 0.5), total_nodes=6, epoch_length=900.0, workload=tiny_table4)
        assert len(res.comparisons) == 2
        assert len(res.savings()) == 2
        rows6 = fig6_rows(res)
        rows7 = fig7_rows(res)
        assert len(rows6) == len(rows7) == 2
        assert rows6[0][0] == "0% c1.medium"
        # every comparison ran all three schedulers
        for comp in res.comparisons:
            assert set(comp.metrics) == {DEFAULT, DELAY, LIPS}

    def test_savings_and_slowdowns_align(self, tiny_table4):
        from repro.experiments.fig6_cost_reduction import run

        res = run(mixes=(0.5,), total_nodes=6, epoch_length=900.0, workload=tiny_table4)
        comp = res.comparisons[0]
        assert res.savings()[0] == pytest.approx(comp.saving_vs(DELAY))
        assert res.slowdowns()[0] == pytest.approx(comp.slowdown_vs(DELAY))


class TestFig8Module:
    def test_run_shapes(self, tiny_table4):
        from repro.experiments.fig8_epoch_tradeoff import run

        res = run(epochs=(300.0, 1200.0), total_nodes=6, workload=tiny_table4)
        assert len(res.costs) == len(res.exec_times) == 2
        assert all(c > 0 for c in res.costs)


class TestFig11Module:
    def test_run_and_metrics(self, tiny_table4):
        from repro.experiments.fig11_cpu_breakdown import run

        res = run(epochs=(300.0, 600.0), total_nodes=6, workload=tiny_table4)
        for e in (300.0, 600.0):
            vec = res.cpu_per_node[e]
            assert vec.shape == (6,)
            assert vec.sum() == pytest.approx(
                tiny_table4.total_cpu_seconds(), rel=1e-6
            )
        assert 0 < res.concentration(300.0) <= 1.0
        assert 1 <= res.active_nodes(600.0) <= 6


class TestFig9Module:
    def test_reduced_run_rows(self):
        from repro.experiments.fig9_100node_cost import fig9_rows, fig10_rows, run

        res = run(num_nodes=9, num_jobs=12, duration_s=1200.0, epoch_length=300.0)
        r9, r10 = fig9_rows(res), fig10_rows(res)
        assert len(r9) == len(r10) == 1
        assert "9 nodes / 12 jobs" in r9[0][0]

    def test_weak_scaling_shrinks_classes(self):
        from repro.experiments.fig9_100node_cost import run

        res = run(num_nodes=9, num_jobs=12, duration_s=1200.0, epoch_length=300.0)
        # at 9/100 scale the long class tops out well below 1500 maps
        biggest = max(
            m.tasks_run for m in res.comparison.metrics.values()
        )
        assert biggest < 2000
