"""Unit tests for the shared experiment plumbing."""

import pytest

from repro.cluster.builder import build_paper_testbed
from repro.experiments.common import (
    DEFAULT,
    DELAY,
    LIPS,
    ComparisonResult,
    compare_schedulers,
    scheduler_lineup,
)
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture(scope="module")
def comparison():
    cluster = build_paper_testbed(6, c1_medium_fraction=0.5, seed=2)
    data = [DataObject(data_id=0, name="d", size_mb=640.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="scan", tcp=0.5, data_ids=[0], num_tasks=10),
        Job(job_id=1, name="pi", tcp=0.0, num_tasks=2, cpu_seconds_noinput=200.0),
    ]
    w = Workload(jobs=jobs, data=data)
    return compare_schedulers(cluster, w, epoch_length=900.0)


def test_lineup_keys():
    lineup = scheduler_lineup(600.0)
    assert set(lineup) == {DEFAULT, DELAY, LIPS}
    # LiPS never speculates; the baselines do (Hadoop default)
    assert lineup[LIPS][1] is False
    assert lineup[DEFAULT][1] is True


def test_all_schedulers_ran(comparison):
    assert set(comparison.metrics) == {DEFAULT, DELAY, LIPS}
    for m in comparison.metrics.values():
        assert m.tasks_run == 12


def test_saving_and_slowdown_consistent(comparison):
    s = comparison.saving_vs(DELAY, LIPS)
    assert s == pytest.approx(1.0 - comparison.cost(LIPS) / comparison.cost(DELAY))
    sd = comparison.slowdown_vs(DELAY, LIPS)
    assert sd == pytest.approx(comparison.makespan(LIPS) / comparison.makespan(DELAY) - 1.0)


def test_zero_baseline_degenerate():
    c = ComparisonResult(metrics={})
    c.metrics = {"a": type("M", (), {"total_cost": 0.0, "makespan": 0.0})(), "b": type("M", (), {"total_cost": 1.0, "makespan": 1.0})()}
    assert c.saving_vs("a", "b") == 0.0
    assert c.slowdown_vs("a", "b") == 0.0
