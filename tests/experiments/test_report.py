"""Unit tests for ASCII report rendering."""

from repro.experiments.report import format_series, format_table, percent


def test_table_alignment():
    text = format_table(["a", "bee"], [("x", 1), ("longer", 2.5)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bee" in lines[1]
    # separator row present
    assert set(lines[2]) <= {"-", "+"}
    # all data rows have the same width
    assert len(lines[3]) == len(lines[4])


def test_table_float_formatting():
    text = format_table(["v"], [(0.123456,), (1234.5,), (0.0,)])
    assert "0.1235" in text
    assert "1.23e+03" in text or "1235" in text or "1.23" in text


def test_series_formatting():
    text = format_series("name", ["a", "b"], [1.0, 2.0])
    lines = text.splitlines()
    assert lines[0] == "name"
    assert "1.0000" in lines[1]


def test_percent():
    assert percent(0.5) == "50.0%"
    assert percent(0.123) == "12.3%"
