"""Unit tests for the table emitters."""

from repro.experiments.tables import main, table1, table3, table4


def test_table1_contents():
    text = table1()
    for app in ("grep", "stress1", "stress2", "wordcount", "pi"):
        assert app in text
    assert "inf" in text


def test_table3_contents():
    text = table3()
    assert "c1.medium" in text
    assert "0.17-0.23" in text


def test_table4_totals_row():
    text = table4()
    assert "1608" in text
    assert "100" in text


def test_main_prints_all(capsys):
    main([])
    out = capsys.readouterr().out
    assert "Table I" in out and "Table III" in out and "Table IV" in out


def test_main_selective(capsys):
    main(["table1"])
    out = capsys.readouterr().out
    assert "Table I" in out and "Table III" not in out
