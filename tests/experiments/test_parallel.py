"""The process-pool sweep path must reproduce the serial path exactly."""

import numpy as np
import pytest

from repro.experiments import fig5_simulated_savings as fig5
from repro.experiments.common import LipsFactory, compare_schedulers, scheduler_lineup
from repro.experiments.parallel import resolve_workers, run_tasks


class TestResolveWorkers:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(None) == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 0

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert resolve_workers(None) == 0

    def test_negative_clamped(self):
        assert resolve_workers(-2) == 0


def _square(seeded_task):
    base, seed = seeded_task
    return base * base + seed


class TestRunTasks:
    def test_serial_and_pool_agree(self):
        tasks = [(i, 100 + i) for i in range(6)]
        assert run_tasks(_square, tasks, workers=0) == run_tasks(
            _square, tasks, workers=2
        )

    def test_order_preserved(self):
        tasks = [(i, 0) for i in (5, 1, 4, 2)]
        assert run_tasks(_square, tasks, workers=2) == [25, 1, 16, 4]

    def test_single_task_stays_in_process(self):
        assert run_tasks(_square, [(3, 1)], workers=8) == [10]


class TestLipsFactory:
    def test_picklable(self):
        import pickle

        factory = LipsFactory(epoch_length=300.0)
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory
        assert clone().epoch_length == 300.0

    def test_lineup_uses_factory(self):
        lineup = scheduler_lineup(450.0)
        factory, speculative = lineup["lips"]
        assert isinstance(factory, LipsFactory)
        assert factory.epoch_length == 450.0
        assert speculative is False


class TestParallelEqualsSerial:
    def test_fig5_grid(self):
        sizes = ((40, 3, 3), (60, 4, 4))
        serial = fig5.run(sizes=sizes, seeds=(0, 1), workers=0)
        parallel = fig5.run(sizes=sizes, seeds=(0, 1), workers=2)
        np.testing.assert_array_equal(serial.lp_costs, parallel.lp_costs)
        np.testing.assert_array_equal(serial.default_costs, parallel.default_costs)
        np.testing.assert_array_equal(serial.reductions, parallel.reductions)

    def test_compare_schedulers(self, two_zone_cluster, small_workload):
        kwargs = dict(epoch_length=400.0, placement_seed=7)
        serial = compare_schedulers(
            two_zone_cluster, small_workload, workers=0, **kwargs
        )
        parallel = compare_schedulers(
            two_zone_cluster, small_workload, workers=2, **kwargs
        )
        assert set(serial.metrics) == set(parallel.metrics)
        for name in serial.metrics:
            assert serial.cost(name) == pytest.approx(parallel.cost(name), rel=0, abs=0)
            assert serial.makespan(name) == parallel.makespan(name)
