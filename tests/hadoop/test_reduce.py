"""Tests for the reduce/shuffle phase of the simulator."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler, LipsScheduler
from repro.workload.apps import make_job
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), store_capacity_mb=1e6)
    b.add_machine("a0", ecu=2.0, cpu_cost=5e-5, zone="za", reduce_slots=1)
    b.add_machine("a1", ecu=2.0, cpu_cost=5e-5, zone="za", reduce_slots=1)
    b.add_machine("b0", ecu=5.0, cpu_cost=1e-5, zone="zb", reduce_slots=1)
    return b.build()


def wc_workload(num_reduces=2):
    data = [DataObject(data_id=0, name="docs", size_mb=640.0, origin_store=0)]
    jobs = [make_job("wordcount", 0, data_ids=[0], num_tasks=10, num_reduces=num_reduces)]
    return Workload(jobs=jobs, data=data)


def run(cluster, w, scheduler=None, **cfg):
    cfg.setdefault("placement_seed", 0)
    cfg.setdefault("speculative", False)
    sim = HadoopSimulator(cluster, w, scheduler or FifoScheduler(), SimConfig(**cfg))
    return sim, sim.run()


class TestReduceLifecycle:
    def test_reduces_run_after_maps(self, cluster):
        sim, res = run(cluster, wc_workload())
        assert res.metrics.tasks_run == 10
        assert res.metrics.reduces_run == 2
        assert sim.jobtracker.jobs[0].is_complete

    def test_job_not_complete_until_reduces_done(self, cluster):
        sim, res = run(cluster, wc_workload())
        job = sim.jobtracker.jobs[0]
        # finish_time must be after the last reduce, which started after maps
        last_map_cpu = max(t.cpu_seconds for t in job.tasks)
        assert job.finish_time > last_map_cpu

    def test_shuffle_volume_matches_ratio(self, cluster):
        sim, res = run(cluster, wc_workload())
        expected = 640.0 * 0.3  # wordcount shuffle_ratio
        assert res.metrics.shuffle_mb == pytest.approx(expected, rel=1e-6)

    def test_reduce_input_split_evenly(self, cluster):
        sim, res = run(cluster, wc_workload(num_reduces=4))
        job = sim.jobtracker.jobs[0]
        per = 640.0 * 0.3 / 4
        for t in job.reduce_tasks:
            assert t.input_mb == pytest.approx(per, rel=1e-6)
            assert t.is_reduce

    def test_map_only_jobs_unaffected(self, cluster):
        w = wc_workload(num_reduces=0)
        # make_job with num_reduces=0 clears shuffle parameters
        assert w.jobs[0].shuffle_ratio == 0.0
        sim, res = run(cluster, w)
        assert res.metrics.reduces_run == 0
        assert sim.jobtracker.jobs[0].is_complete


class TestShuffleCost:
    def test_cross_zone_shuffle_priced(self, cluster):
        sim, res = run(cluster, wc_workload())
        # maps spread over both zones (random placement): some shuffle
        # segments cross zones and are charged
        shuffle_charges = [
            r for r in res.metrics.ledger.records if r.detail == "shuffle"
        ]
        total_map_output = 640.0 * 0.3
        charged = sum(r.amount for r in shuffle_charges)
        # bounded by all output crossing zones at the cross-zone price
        assert 0.0 <= charged <= total_map_output * 9.765625e-6 * 1.001

    def test_intra_zone_cluster_shuffles_free(self):
        b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
        for i in range(3):
            b.add_machine(f"m{i}", ecu=2.0, cpu_cost=1e-5, zone="z", reduce_slots=1)
        cluster = b.build()
        sim, res = run(cluster, wc_workload())
        charged = sum(r.amount for r in res.metrics.ledger.records if r.detail == "shuffle")
        assert charged == 0.0


class TestLipsReducePlacement:
    def test_lips_places_reduce_on_cheap_machine(self, cluster):
        sim, res = run(cluster, wc_workload(), scheduler=LipsScheduler(epoch_length=600.0))
        job = sim.jobtracker.jobs[0]
        assert job.is_complete
        # with all map output in zone-b (LiPS ran maps on cheap b0), the
        # cheap machine also wins the reduces
        # cheaper overall than FIFO for the same workload
        _, fifo = run(cluster, wc_workload())
        assert res.metrics.total_cost <= fifo.metrics.total_cost * 1.01

    def test_lips_reduce_cost_helper(self, cluster):
        sched = LipsScheduler(epoch_length=600.0)
        sim = HadoopSimulator(cluster, wc_workload(), sched, SimConfig(speculative=False))
        sched.bind(sim)
        from repro.hadoop.tasktracker import SimTask

        task = SimTask(
            job_id=0, task_index=10, input_mb=10.0, cpu_seconds=5.0,
            is_reduce=True, shuffle_sources={0: 10.0},
        )
        # machine 0 hosts the data: no shuffle transfer, pricey cpu
        c0 = sched._reduce_cost(task, 0)
        # machine 2 (cheap, cross-zone): transfer + cheap cpu
        c2 = sched._reduce_cost(task, 2)
        assert c0 == pytest.approx(5.0 * 5e-5)
        assert c2 == pytest.approx(10.0 * 9.765625e-6 + 5.0 * 1e-5)


class TestValidation:
    def test_negative_reduce_params_rejected(self):
        with pytest.raises(ValueError):
            Job(job_id=0, name="bad", tcp=1.0, data_ids=[0], num_reduces=-1)
        with pytest.raises(ValueError):
            Job(job_id=0, name="bad", tcp=1.0, data_ids=[0], shuffle_ratio=-0.1)

    def test_pi_cannot_have_reduces(self):
        with pytest.raises(ValueError, match="no shuffle"):
            make_job("pi", 0, num_tasks=2, num_reduces=1)

    def test_create_reduces_requires_maps_done(self, cluster):
        from repro.hadoop.hdfs import HDFS
        from repro.hadoop.jobtracker import JobTracker

        w = wc_workload()
        hdfs = HDFS(cluster, replication=1, seed=0)
        hdfs.populate(w.data)
        jt = JobTracker(hdfs)
        state = jt.submit(w.jobs[0], w, now=0.0)
        with pytest.raises(RuntimeError, match="maps not complete"):
            jt.create_reduces(state)
