"""Unit tests for TaskTracker slot bookkeeping."""

import pytest

from repro.cluster.machine import Machine
from repro.hadoop.tasktracker import SimTask, TaskAttempt, TaskTracker


def machine(slots=2):
    return Machine(machine_id=0, name="m", ecu=4.0, cpu_cost=1e-5, map_slots=slots)


def task(cpu=10.0, mb=64.0):
    return SimTask(job_id=0, task_index=0, input_mb=mb, cpu_seconds=cpu)


def attempt(aid=0, read=1.0, compute=2.0):
    return TaskAttempt(
        attempt_id=aid,
        task=task(),
        machine_id=0,
        source_store=0,
        start_time=0.0,
        read_seconds=read,
        compute_seconds=compute,
    )


def test_free_slots_track_launches():
    t = TaskTracker(machine(slots=2))
    assert t.free_slots == 2
    t.launch(attempt(0))
    assert t.free_slots == 1
    t.launch(attempt(1))
    assert not t.has_free_slot


def test_overcommit_rejected():
    t = TaskTracker(machine(slots=1))
    t.launch(attempt(0))
    with pytest.raises(RuntimeError, match="no free slot"):
        t.launch(attempt(1))


def test_complete_frees_slot_and_accumulates():
    t = TaskTracker(machine())
    a = attempt(0)
    t.launch(a)
    t.complete(a)
    assert t.free_slots == 2
    assert t.cpu_busy_seconds == pytest.approx(10.0)
    assert t.wall_busy_seconds == pytest.approx(3.0)


def test_killed_attempt_not_counted_busy():
    t = TaskTracker(machine())
    a = attempt(0)
    t.launch(a)
    t.kill(a)
    t.complete(a)
    assert t.cpu_busy_seconds == 0.0


def test_attempt_duration_and_finish():
    a = attempt(read=1.5, compute=4.5)
    assert a.duration == pytest.approx(6.0)
    assert a.finish_time == pytest.approx(6.0)


def test_kill_cancels_finish_event():
    class FakeEvent:
        cancelled = False

        def cancel(self):
            self.cancelled = True

    t = TaskTracker(machine())
    a = attempt(0)
    a.finish_event = FakeEvent()
    t.launch(a)
    t.kill(a)
    assert a.killed
    assert a.finish_event.cancelled
    assert t.free_slots == 2


def test_sim_task_key():
    s = SimTask(job_id=3, task_index=7, input_mb=0.0, cpu_seconds=1.0)
    assert s.key == (3, 7)
