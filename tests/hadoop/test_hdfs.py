"""Unit tests for the HDFS block/placement model."""

import numpy as np
import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.hdfs import HDFS, ExplicitPlacement, ZoneSpreadPlacement
from repro.workload.job import DataObject


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), store_capacity_mb=10_000.0)
    for i in range(4):
        b.add_machine(f"m{i}", ecu=1.0, cpu_cost=1e-5, zone="za" if i < 2 else "zb")
    return b.build()


def data(size_mb=640.0, data_id=0):
    return DataObject(data_id=data_id, name=f"d{data_id}", size_mb=size_mb, origin_store=0)


def test_populate_splits_into_blocks(cluster):
    h = HDFS(cluster, replication=1)
    h.populate([data(640.0)])
    blocks = h.blocks_of(0)
    assert len(blocks) == 10
    assert sum(b.size_mb for b in blocks) == pytest.approx(640.0)


def test_last_block_is_remainder(cluster):
    h = HDFS(cluster, replication=1)
    h.populate([data(100.0)])
    blocks = h.blocks_of(0)
    assert [b.size_mb for b in blocks] == [64.0, 36.0]


def test_replication_creates_distinct_replicas(cluster):
    h = HDFS(cluster, replication=3)
    h.populate([data(128.0)])
    for b in h.blocks_of(0):
        assert len(b.replicas) == 3
        assert len(set(b.replicas)) == 3


def test_used_mb_accounts_replicas(cluster):
    h = HDFS(cluster, replication=2)
    h.populate([data(128.0)])
    assert h.total_stored_mb() == pytest.approx(256.0)


def test_capacity_respected(cluster):
    h = HDFS(cluster, replication=1)
    # 4 stores x 10 GB: 50 GB cannot fit
    with pytest.raises(RuntimeError, match="capacity"):
        h.populate([data(50_000.0)])


def test_double_populate_rejected(cluster):
    h = HDFS(cluster, replication=1)
    h.populate([data(64.0)])
    with pytest.raises(ValueError, match="already populated"):
        h.populate([data(64.0)])


def test_local_blocks_query(cluster):
    h = HDFS(cluster, replication=1, seed=1)
    h.populate([data(640.0)])
    total_local = sum(len(h.local_blocks(0, m.machine_id)) for m in cluster.machines)
    assert total_local == 10  # every block local to exactly one machine


def test_stores_with(cluster):
    h = HDFS(cluster, replication=1, seed=1)
    h.populate([data(640.0)])
    stores = h.stores_with(0)
    assert stores <= {0, 1, 2, 3}
    assert stores  # at least one


def test_move_block_updates_everything(cluster):
    h = HDFS(cluster, replication=2, seed=0)
    h.populate([data(64.0)])
    block = h.blocks_of(0)[0]
    before = h.total_stored_mb()
    target = next(s for s in range(4) if s not in block.replicas)
    moved = h.move_block(block, target)
    assert moved == pytest.approx(64.0)
    assert block.replicas == [target]
    # replica collapse frees the duplicate copy
    assert h.total_stored_mb() == pytest.approx(before - 64.0)


def test_move_block_noop_when_present(cluster):
    h = HDFS(cluster, replication=1, seed=0)
    h.populate([data(64.0)])
    block = h.blocks_of(0)[0]
    assert h.move_block(block, block.replicas[0]) == 0.0


def test_zone_spread_placement(cluster):
    h = HDFS(cluster, replication=2, policy=ZoneSpreadPlacement(), seed=0)
    h.populate([data(64.0)])
    block = h.blocks_of(0)[0]
    zones = {cluster.stores[s].zone for s in block.replicas}
    assert len(zones) == 2  # replicas spread across both zones


def test_explicit_placement_follows_fractions(cluster):
    xd = np.array([[0.0, 0.5, 0.5, 0.0]])
    h = HDFS(cluster, replication=1, policy=ExplicitPlacement(xd), seed=0)
    h.populate([data(640.0)])
    counts = {s: 0 for s in range(4)}
    for b in h.blocks_of(0):
        counts[b.replicas[0]] += 1
    assert counts[0] == 0 and counts[3] == 0
    assert counts[1] == 5 and counts[2] == 5


def test_explicit_placement_rejects_zero_fractions(cluster):
    h = HDFS(cluster, replication=1, policy=ExplicitPlacement(np.zeros((1, 4))))
    with pytest.raises(RuntimeError, match="no placement fractions"):
        h.populate([data(64.0)])


def test_random_placement_deterministic_by_seed(cluster):
    a = HDFS(cluster, replication=1, seed=5)
    a.populate([data(640.0)])
    b = HDFS(cluster, replication=1, seed=5)
    b.populate([data(640.0)])
    assert [x.replicas for x in a.blocks_of(0)] == [x.replicas for x in b.blocks_of(0)]
