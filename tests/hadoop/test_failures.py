"""Tests for machine-failure injection and recovery."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.failures import FailureEvent, FailurePlan, random_failure_plan
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler, LipsScheduler
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
    for i in range(3):
        b.add_machine(f"m{i}", ecu=2.0, cpu_cost=1e-5, zone="z", map_slots=2)
    return b.build()


def workload(tasks=12, cpu=600.0):
    jobs = [Job(job_id=0, name="pi", tcp=0.0, num_tasks=tasks, cpu_seconds_noinput=cpu)]
    return Workload(jobs=jobs, data=[])


def data_workload():
    data = [DataObject(data_id=0, name="d", size_mb=640.0, origin_store=0)]
    jobs = [Job(job_id=0, name="scan", tcp=1.0, data_ids=[0], num_tasks=10)]
    return Workload(jobs=jobs, data=data)


class TestPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(machine_id=0, fail_time=-1.0)
        with pytest.raises(ValueError):
            FailureEvent(machine_id=0, fail_time=10.0, recover_time=5.0)

    def test_plan_validates_machine_ids(self):
        plan = FailurePlan()
        plan.add(99, 10.0)
        with pytest.raises(ValueError, match="unknown machine"):
            plan.validate(3)

    def test_overlapping_outages_rejected(self):
        plan = FailurePlan()
        plan.add(0, 10.0, 100.0)
        plan.add(0, 50.0, 150.0)
        with pytest.raises(ValueError, match="overlapping"):
            plan.validate(3)

    def test_sequential_outages_allowed(self):
        plan = FailurePlan()
        plan.add(0, 10.0, 20.0)
        plan.add(0, 30.0, 40.0)
        plan.validate(3)

    def test_random_plan_within_horizon(self):
        plan = random_failure_plan(10, horizon_s=1000.0, mean_time_to_failure_s=300.0, seed=1)
        for e in plan.events:
            assert 0 <= e.fail_time < 1000.0
            assert e.recover_time is not None

    def test_random_plan_caps_concurrency(self):
        plan = random_failure_plan(
            10, 1000.0, mean_time_to_failure_s=50.0, mean_repair_s=500.0,
            seed=2, max_concurrent_fraction=0.3,
        )
        # at any failure instant no more than 3 machines down
        for e in plan.events:
            down = sum(
                1
                for o in plan.events
                if o.fail_time <= e.fail_time and (o.recover_time or 1e18) > e.fail_time
            )
            assert down <= 3


class TestFailureHandling:
    def test_work_migrates_to_survivors(self, cluster):
        plan = FailurePlan()
        plan.add(0, fail_time=10.0)  # permanent loss of m0
        sim = HadoopSimulator(cluster, workload(), FifoScheduler(), SimConfig(), failures=plan)
        res = sim.run()
        assert res.metrics.machine_failures == 1
        assert sim.jobtracker.all_complete()
        # the dead machine did no work after t=10 (50s tasks, killed ones rerun)
        assert res.metrics.tasks_run == 12

    def test_failed_attempts_requeued_and_rerun(self, cluster):
        plan = FailurePlan()
        plan.add(0, fail_time=10.0)
        sim = HadoopSimulator(cluster, workload(), FifoScheduler(), SimConfig(), failures=plan)
        res = sim.run()
        # m0 had 2 slots busy at t=10: both re-queued
        assert res.metrics.failed_attempts == 2
        assert res.metrics.killed_attempts >= 2

    def test_partial_burn_billed(self, cluster):
        plan = FailurePlan()
        plan.add(0, fail_time=10.0)
        sim = HadoopSimulator(cluster, workload(), FifoScheduler(), SimConfig(), failures=plan)
        res = sim.run()
        wasted = [r for r in res.metrics.ledger.records if r.detail == "machine-failure"]
        assert wasted and all(r.amount > 0 for r in wasted)

    def test_recovery_restores_capacity(self, cluster):
        plan = FailurePlan()
        plan.add(0, fail_time=10.0, recover_time=60.0)
        sim = HadoopSimulator(cluster, workload(tasks=24, cpu=1200.0), FifoScheduler(), SimConfig(), failures=plan)
        res = sim.run()
        assert sim.trackers[0].alive
        # the recovered machine ran work again after rejoining
        assert res.metrics.machine_cpu_seconds.get(0, 0.0) > 0

    def test_reads_fall_back_to_live_replicas(self, cluster):
        plan = FailurePlan()
        plan.add(0, fail_time=1.0)  # store 0's host dies almost immediately
        sim = HadoopSimulator(
            cluster, data_workload(), FifoScheduler(),
            SimConfig(replication=2, placement_seed=3), failures=plan,
        )
        sim.run()
        assert sim.jobtracker.all_complete()

    def test_makespan_grows_under_failure(self, cluster):
        base = HadoopSimulator(cluster, workload(), FifoScheduler(), SimConfig()).run()
        plan = FailurePlan()
        plan.add(0, fail_time=10.0)
        failed = HadoopSimulator(
            cluster, workload(), FifoScheduler(), SimConfig(), failures=plan
        ).run()
        assert failed.metrics.makespan >= base.metrics.makespan

    def test_lips_replans_after_failure(self, cluster):
        plan = FailurePlan()
        plan.add(1, fail_time=30.0, recover_time=2000.0)
        sim = HadoopSimulator(
            cluster, data_workload(), LipsScheduler(epoch_length=120.0),
            SimConfig(replication=2, placement_seed=3, speculative=False),
            failures=plan,
        )
        res = sim.run()
        assert sim.jobtracker.all_complete()
        assert res.metrics.tasks_run == 10


class TestExplicitGenerator:
    """Satellite: random_failure_plan accepts a caller-owned Generator."""

    def test_rng_param_is_deterministic(self):
        import numpy as np

        a = random_failure_plan(
            8, 2000.0, mean_time_to_failure_s=400.0, rng=np.random.default_rng(7)
        )
        b = random_failure_plan(
            8, 2000.0, mean_time_to_failure_s=400.0, rng=np.random.default_rng(7)
        )
        assert a.events == b.events
        assert len(a.events) > 0

    def test_rng_overrides_seed(self):
        import numpy as np

        from_rng = random_failure_plan(
            8, 2000.0, mean_time_to_failure_s=400.0, seed=999,
            rng=np.random.default_rng(7),
        )
        from_seed7 = random_failure_plan(
            8, 2000.0, mean_time_to_failure_s=400.0, seed=7
        )
        assert from_rng.events == from_seed7.events

    def test_shared_stream_advances(self):
        import numpy as np

        rng = np.random.default_rng(7)
        first = random_failure_plan(8, 2000.0, mean_time_to_failure_s=400.0, rng=rng)
        second = random_failure_plan(8, 2000.0, mean_time_to_failure_s=400.0, rng=rng)
        assert first.events != second.events  # one stream, no reuse


class TestFailureDuringEpochRequeue:
    """Machine dies mid-epoch: LiPS re-queues, replans, and the burn is billed."""

    def test_mid_epoch_death_requeues_and_bills(self, cluster):
        plan = FailurePlan()
        # LiPS first plans at t=120 (epoch 1); machine 2 dies while its
        # planned attempts are still running
        plan.add(2, fail_time=130.0, recover_time=5000.0)
        sched = LipsScheduler(epoch_length=120.0)
        sim = HadoopSimulator(
            cluster, data_workload(), sched,
            SimConfig(replication=2, placement_seed=3), failures=plan,
        )
        res = sim.run()
        # every task still completed exactly once
        assert sim.jobtracker.all_complete()
        job = sim.jobtracker.jobs[0]
        assert job.completed_maps == len(job.tasks)
        assert not job.pending and not sim.trackers[2].running
        # the dead machine's in-flight work was lost and re-offered
        assert res.metrics.failed_attempts > 0
        # ... and its partially-burned cycles were still billed
        burned = [
            r for r in res.metrics.ledger.records if r.detail == "machine-failure"
        ]
        assert burned and all(r.amount > 0 for r in burned)
        # the re-queued tasks were replanned in a later epoch onto survivors
        assert res.metrics.tasks_run == 10
        assert res.metrics.machine_cpu_seconds.get(2, 0.0) < sum(
            res.metrics.machine_cpu_seconds.values()
        )
