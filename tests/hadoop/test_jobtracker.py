"""Unit tests for the JobTracker: expansion, attempts, speculation."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.hdfs import HDFS
from repro.hadoop.jobtracker import JobTracker, expand_job
from repro.hadoop.tasktracker import TaskTracker
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def env():
    b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
    for i in range(2):
        b.add_machine(f"m{i}", ecu=2.0, cpu_cost=1e-5, zone="z")
    cluster = b.build()
    data = [DataObject(data_id=0, name="d", size_mb=320.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="scan", tcp=0.5, data_ids=[0], num_tasks=5),
        Job(job_id=1, name="pi", tcp=0.0, num_tasks=3, cpu_seconds_noinput=300.0),
    ]
    w = Workload(jobs=jobs, data=data)
    hdfs = HDFS(cluster, replication=1, seed=0)
    hdfs.populate(w.data)
    return cluster, w, hdfs


def test_expand_data_job_one_task_per_block(env):
    cluster, w, hdfs = env
    tasks = expand_job(w.jobs[0], w, hdfs)
    assert len(tasks) == 5  # 320 MB / 64 MB
    assert sum(t.input_mb for t in tasks) == pytest.approx(320.0)
    assert sum(t.cpu_seconds for t in tasks) == pytest.approx(160.0)
    for t in tasks:
        assert t.candidate_stores  # replicas recorded


def test_expand_input_less_job(env):
    cluster, w, hdfs = env
    tasks = expand_job(w.jobs[1], w, hdfs)
    assert len(tasks) == 3
    assert all(t.input_mb == 0 for t in tasks)
    assert sum(t.cpu_seconds for t in tasks) == pytest.approx(300.0)


def test_submit_and_queue(env):
    cluster, w, hdfs = env
    jt = JobTracker(hdfs)
    jt.submit(w.jobs[0], w, now=1.0)
    assert jt.has_pending_tasks()
    with pytest.raises(ValueError, match="already submitted"):
        jt.submit(w.jobs[0], w, now=2.0)


def test_attempt_lifecycle(env):
    cluster, w, hdfs = env
    jt = JobTracker(hdfs)
    state = jt.submit(w.jobs[1], w, now=0.0)
    tracker = TaskTracker(cluster.machines[0])
    task = state.pending[0]
    state.take_pending(task)
    a = jt.new_attempt(state, task, tracker, None, 0.0, 0.0, 10.0)
    assert state.num_running == 1
    siblings = jt.finish_attempt(state, a, now=10.0)
    assert siblings == []
    assert task.key in state.completed
    assert not state.is_complete  # two tasks left


def test_job_completion_sets_finish_time(env):
    cluster, w, hdfs = env
    jt = JobTracker(hdfs)
    state = jt.submit(w.jobs[1], w, now=5.0)
    tracker = TaskTracker(cluster.machines[0])
    for task in list(state.pending):
        state.take_pending(task)
        a = jt.new_attempt(state, task, tracker, None, 5.0, 0.0, 1.0)
        jt.finish_attempt(state, a, now=6.0)
    assert state.is_complete
    assert state.finish_time == 6.0
    assert state.duration == pytest.approx(1.0)
    assert jt.makespan() == 6.0


def test_finish_returns_siblings_to_kill(env):
    cluster, w, hdfs = env
    jt = JobTracker(hdfs)
    state = jt.submit(w.jobs[1], w, now=0.0)
    tracker = TaskTracker(cluster.machines[0])
    task = state.pending[0]
    state.take_pending(task)
    primary = jt.new_attempt(state, task, tracker, None, 0.0, 0.0, 100.0)
    spec = jt.new_attempt(state, task, tracker, None, 50.0, 0.0, 100.0, speculative=True)
    siblings = jt.finish_attempt(state, primary, now=100.0)
    assert siblings == [spec]


def test_speculation_candidate_picks_longest_runner(env):
    cluster, w, hdfs = env
    jt = JobTracker(hdfs)
    state = jt.submit(w.jobs[1], w, now=0.0)
    tracker = TaskTracker(cluster.machines[0])
    # empty the pending queue (speculation only kicks when nothing pending)
    t_fast, t_slow, t3 = state.pending[:3]
    for t in (t_fast, t_slow, t3):
        state.take_pending(t)
    jt.new_attempt(state, t_fast, tracker, None, 0.0, 0.0, 50.0)
    slow_attempt = jt.new_attempt(state, t_slow, tracker, None, 0.0, 0.0, 500.0)
    jt.new_attempt(state, t3, tracker, None, 0.0, 0.0, 10.0)
    cand = jt.speculation_candidate(now=100.0)
    assert cand is not None
    _job, task, attempt = cand
    assert attempt is slow_attempt


def test_speculation_respects_min_elapsed(env):
    cluster, w, hdfs = env
    jt = JobTracker(hdfs)
    state = jt.submit(w.jobs[1], w, now=0.0)
    tracker = TaskTracker(cluster.machines[0])
    for t in list(state.pending):
        state.take_pending(t)
        jt.new_attempt(state, t, tracker, None, 0.0, 0.0, 500.0)
    assert jt.speculation_candidate(now=10.0, min_elapsed=60.0) is None
    assert jt.speculation_candidate(now=100.0, min_elapsed=60.0) is not None


def test_speculation_skips_jobs_with_pending(env):
    cluster, w, hdfs = env
    jt = JobTracker(hdfs)
    state = jt.submit(w.jobs[1], w, now=0.0)
    tracker = TaskTracker(cluster.machines[0])
    t = state.pending[0]
    state.take_pending(t)
    jt.new_attempt(state, t, tracker, None, 0.0, 0.0, 500.0)
    # two tasks still pending: no speculation for this job
    assert jt.speculation_candidate(now=1000.0) is None


def test_speculation_caps_copies(env):
    cluster, w, hdfs = env
    jt = JobTracker(hdfs)
    state = jt.submit(w.jobs[1], w, now=0.0)
    tracker = TaskTracker(cluster.machines[0])
    for t in list(state.pending):
        state.take_pending(t)
    t0 = state.tasks[0]
    jt.new_attempt(state, t0, tracker, None, 0.0, 0.0, 500.0)
    jt.new_attempt(state, t0, tracker, None, 0.0, 0.0, 500.0, speculative=True)
    for t in state.tasks[1:]:
        jt.new_attempt(state, t, tracker, None, 0.0, 0.0, 1.0)
    cand = jt.speculation_candidate(now=100.0, max_copies=2)
    # t0 already has 2 copies; others finish soon but are the only eligible
    if cand is not None:
        assert cand[1].key != t0.key
