"""Tests for the co-location interference model."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.interference import NO_INTERFERENCE, InterferenceModel
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler
from repro.workload.job import Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
    b.add_machine("m0", ecu=4.0, cpu_cost=1e-5, zone="z", map_slots=4)
    return b.build()


@pytest.fixture
def workload():
    jobs = [Job(job_id=0, name="pi", tcp=0.0, num_tasks=8, cpu_seconds_noinput=800.0)]
    return Workload(jobs=jobs, data=[])


class TestModel:
    def test_slowdown_formula(self):
        m = InterferenceModel(cpu_penalty=0.1, io_penalty=0.2)
        assert m.slowdown(0, 0) == 1.0
        assert m.slowdown(3, 1) == pytest.approx(1.0 + 0.3 + 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterferenceModel(cpu_penalty=-0.1)
        with pytest.raises(ValueError):
            InterferenceModel().slowdown(-1, 0)

    def test_no_interference_constant(self):
        assert NO_INTERFERENCE.slowdown(10, 10) == 1.0


class TestSimulatorEffect:
    def _run(self, cluster, workload, model):
        sim = HadoopSimulator(
            cluster, workload, FifoScheduler(), SimConfig(interference=model)
        )
        return sim.run().metrics

    def test_makespan_grows_with_interference(self, cluster, workload):
        base = self._run(cluster, workload, None)
        slow = self._run(cluster, workload, InterferenceModel(cpu_penalty=0.2))
        assert slow.makespan > base.makespan

    def test_cost_unchanged_by_interference(self, cluster, workload):
        """Per-CPU-second pricing: interference stretches time, not dollars."""
        base = self._run(cluster, workload, None)
        slow = self._run(cluster, workload, InterferenceModel(cpu_penalty=0.2))
        assert slow.total_cost == pytest.approx(base.total_cost, rel=1e-9)

    def test_zero_penalty_matches_disabled(self, cluster, workload):
        base = self._run(cluster, workload, None)
        zero = self._run(cluster, workload, NO_INTERFERENCE)
        assert zero.makespan == pytest.approx(base.makespan)

    def test_single_slot_unaffected(self, workload):
        """One slot per node: no co-runners, no interference effect."""
        b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
        b.add_machine("m0", ecu=1.0, cpu_cost=1e-5, zone="z", map_slots=1)
        cluster = b.build()
        base = self._run(cluster, workload, None)
        slow = self._run(cluster, workload, InterferenceModel(cpu_penalty=0.5))
        assert slow.makespan == pytest.approx(base.makespan)
