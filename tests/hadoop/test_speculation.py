"""End-to-end tests of speculative execution in the simulator."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler
from repro.workload.job import Job, Workload


@pytest.fixture
def straggler_cluster():
    """One fast node and one crawler: the classic speculation scenario."""
    b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
    b.add_machine("fast", ecu=8.0, cpu_cost=1e-5, zone="z", map_slots=4)
    b.add_machine("slow", ecu=0.5, cpu_cost=1e-5, zone="z", map_slots=1)
    return b.build()


@pytest.fixture
def workload():
    jobs = [Job(job_id=0, name="pi", tcp=0.0, num_tasks=5, cpu_seconds_noinput=1000.0)]
    return Workload(jobs=jobs, data=[])


def run(cluster, w, speculative, min_elapsed=10.0):
    sim = HadoopSimulator(
        cluster, w, FifoScheduler(),
        SimConfig(speculative=speculative, speculation_min_elapsed=min_elapsed),
    )
    return sim, sim.run().metrics


class TestSpeculation:
    def test_duplicates_straggler_and_wins(self, straggler_cluster, workload):
        """The slow node's 400s task gets duplicated on the fast node."""
        sim, m = run(straggler_cluster, workload, speculative=True)
        assert m.speculative_attempts >= 1
        assert m.killed_attempts >= 1
        # the duplicate shortens the run vs no speculation
        _, base = run(straggler_cluster, workload, speculative=False)
        assert m.makespan < base.makespan

    def test_disabled_launches_nothing(self, straggler_cluster, workload):
        _, m = run(straggler_cluster, workload, speculative=False)
        assert m.speculative_attempts == 0
        assert m.killed_attempts == 0

    def test_killed_copies_cost_dollars(self, straggler_cluster, workload):
        """The paper: keeping speculation on 'will also increase their
        dollar cost' — the killed copy's burned cycles are billed."""
        _, spec = run(straggler_cluster, workload, speculative=True)
        _, base = run(straggler_cluster, workload, speculative=False)
        assert spec.total_cost > base.total_cost
        wasted = [r for r in spec.ledger.records if r.detail == "killed-speculative"]
        assert wasted and all(r.amount >= 0 for r in wasted)

    def test_min_elapsed_gates_duplication(self, straggler_cluster, workload):
        """A huge min-elapsed threshold means no candidate ever qualifies."""
        _, m = run(straggler_cluster, workload, speculative=True, min_elapsed=1e9)
        assert m.speculative_attempts == 0

    def test_task_completes_exactly_once(self, straggler_cluster, workload):
        sim, m = run(straggler_cluster, workload, speculative=True)
        # 5 logical tasks despite duplicates
        assert m.tasks_run == 5
        job = sim.jobtracker.jobs[0]
        assert len(job.completed) == 5

    def test_cpu_accounting_includes_partial_burn(self, straggler_cluster, workload):
        """Executed CPU-seconds exceed the demand by the killed copies' burn."""
        _, m = run(straggler_cluster, workload, speculative=True)
        executed_cost = m.ledger.category_total("cpu")
        # cost with no waste would be exactly demand * unit price
        clean = workload.total_cpu_seconds() * 1e-5
        assert executed_cost > clean
