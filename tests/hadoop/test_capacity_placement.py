"""Tests for the Purlieus-style capacity-aware placement policy."""

import numpy as np
import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.hdfs import HDFS, CapacityAwarePlacement
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def hetero_cluster():
    """One 5-ECU machine and two 1-ECU machines (plus a remote store)."""
    b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
    b.add_machine("big", ecu=5.0, cpu_cost=1e-5, zone="z", map_slots=10)
    b.add_machine("small-0", ecu=1.0, cpu_cost=1e-5, zone="z")
    b.add_machine("small-1", ecu=1.0, cpu_cost=1e-5, zone="z")
    b.add_remote_store("s3", capacity_mb=1e6, zone="z")
    return b.build()


def big_data(size_mb=64.0 * 200):
    return [DataObject(data_id=0, name="d", size_mb=size_mb, origin_store=0)]


def test_blocks_follow_ecu_share(hetero_cluster):
    hdfs = HDFS(hetero_cluster, replication=1, policy=CapacityAwarePlacement(), seed=0)
    hdfs.populate(big_data())
    counts = np.zeros(hetero_cluster.num_stores)
    for b in hdfs.blocks_of(0):
        counts[b.replicas[0]] += 1
    # remote store never receives data
    assert counts[3] == 0
    # the 5-ECU machine gets roughly 5/7 of the blocks
    share = counts[0] / counts.sum()
    assert 0.6 <= share <= 0.85, share


def test_replicas_distinct(hetero_cluster):
    hdfs = HDFS(hetero_cluster, replication=2, policy=CapacityAwarePlacement(), seed=1)
    hdfs.populate(big_data(64.0 * 10))
    for b in hdfs.blocks_of(0):
        assert len(set(b.replicas)) == len(b.replicas) == 2


def test_fallback_when_local_full():
    b = ClusterBuilder(topology=Topology.of(["z"]))
    b.add_machine("m0", ecu=1.0, cpu_cost=1e-5, zone="z", store_capacity_mb=64.0)
    b.add_remote_store("s3", capacity_mb=1e6, zone="z")
    cluster = b.build()
    hdfs = HDFS(cluster, replication=1, policy=CapacityAwarePlacement(), seed=0)
    hdfs.populate([DataObject(data_id=0, name="d", size_mb=192.0, origin_store=0)])
    stores = [blk.replicas[0] for blk in hdfs.blocks_of(0)]
    # the co-located store holds one block; the rest spilled to the remote
    assert stores.count(0) == 1
    assert stores.count(1) == 2


def test_capacity_placement_speeds_up_locality_scheduler(hetero_cluster):
    """Data near compute: the big machine's slots stay fed with local work."""
    jobs = [Job(job_id=0, name="scan", tcp=2.0, data_ids=[0], num_tasks=200)]
    w = Workload(jobs=jobs, data=big_data())
    results = {}
    for mode in ("random", "capacity"):
        sim = HadoopSimulator(
            hetero_cluster, w, FifoScheduler(),
            SimConfig(placement_seed=5, populate=mode, replication=1),
        )
        results[mode] = sim.run().metrics
    assert results["capacity"].makespan <= results["random"].makespan * 1.02
    assert results["capacity"].data_locality >= results["random"].data_locality - 0.02


def test_populate_option_validated(hetero_cluster):
    with pytest.raises(ValueError, match="populate"):
        SimConfig(populate="everywhere")
