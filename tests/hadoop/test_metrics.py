"""Unit tests for run metrics."""

import pytest

from repro.hadoop.metrics import SimMetrics


@pytest.fixture
def metrics():
    m = SimMetrics()
    m.ledger.charge_cpu(2.0, job_id=0, machine_id=0)
    m.ledger.charge_runtime_transfer(0.5, machine_id=0, store_id=1)
    m.makespan = 100.0
    m.local_read_mb = 60.0
    m.zone_read_mb = 30.0
    m.remote_read_mb = 10.0
    m.machine_wall_busy = {0: 50.0, 1: 25.0}
    m.machine_cpu_seconds = {0: 80.0, 1: 20.0}
    m.job_durations = {0: 40.0, 1: 60.0}
    return m


def test_total_cost(metrics):
    assert metrics.total_cost == pytest.approx(2.5)


def test_locality_fraction(metrics):
    assert metrics.data_locality == pytest.approx(0.6)


def test_locality_defaults_one_with_no_reads():
    assert SimMetrics().data_locality == 1.0


def test_total_job_execution_time(metrics):
    assert metrics.total_job_execution_time == pytest.approx(100.0)


def test_utilization(metrics):
    assert metrics.utilization(2) == pytest.approx(75.0 / 200.0)
    assert SimMetrics().utilization(2) == 0.0


def test_machine_cpu_vector(metrics):
    v = metrics.machine_cpu_vector(3)
    assert v.tolist() == [80.0, 20.0, 0.0]


def test_summary_keys(metrics):
    s = metrics.summary()
    assert {"total_cost", "makespan", "data_locality", "tasks_run"} <= set(s)
