"""Tests for the job-history attempt log."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.failures import FailurePlan
from repro.hadoop.history import KILLED, SUCCESS, AttemptRecord, JobHistory, render_timeline
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
    for i in range(2):
        b.add_machine(f"m{i}", ecu=2.0, cpu_cost=1e-5, zone="z")
    return b.build()


@pytest.fixture
def workload():
    data = [DataObject(data_id=0, name="d", size_mb=320.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="scan", tcp=0.5, data_ids=[0], num_tasks=5),
        Job(job_id=1, name="pi", tcp=0.0, num_tasks=2, cpu_seconds_noinput=100.0),
    ]
    return Workload(jobs=jobs, data=data)


def run(cluster, w, **cfg):
    cfg.setdefault("placement_seed", 1)
    cfg.setdefault("record_history", True)
    sim = HadoopSimulator(cluster, w, FifoScheduler(), SimConfig(**cfg))
    return sim, sim.run()


class TestRecording:
    def test_one_record_per_task(self, cluster, workload):
        sim, res = run(cluster, workload)
        assert sim.history is not None
        assert len(sim.history.successes()) == 7

    def test_disabled_by_default(self, cluster, workload):
        sim = HadoopSimulator(cluster, workload, FifoScheduler(), SimConfig())
        sim.run()
        assert sim.history is None

    def test_records_carry_placement(self, cluster, workload):
        sim, _ = run(cluster, workload)
        for r in sim.history.for_job(0):
            assert r.source_store is not None
            assert r.finish_time > r.start_time
        for r in sim.history.for_job(1):
            assert r.source_store is None

    def test_for_machine_sorted(self, cluster, workload):
        sim, _ = run(cluster, workload)
        for m in (0, 1):
            recs = sim.history.for_machine(m)
            starts = [r.start_time for r in recs]
            assert starts == sorted(starts)

    def test_killed_attempts_recorded(self, cluster, workload):
        plan = FailurePlan()
        plan.add(0, fail_time=5.0, recover_time=500.0)
        sim = HadoopSimulator(
            cluster, workload, FifoScheduler(),
            SimConfig(placement_seed=1, record_history=True), failures=plan,
        )
        sim.run()
        killed = sim.history.killed()
        assert killed
        assert all(r.outcome == KILLED and r.detail == "machine-failure" for r in killed)

    def test_span_matches_makespan(self, cluster, workload):
        sim, res = run(cluster, workload)
        assert sim.history.span() == pytest.approx(res.metrics.makespan)


class TestTimeline:
    def test_render_empty(self):
        assert "empty" in render_timeline(JobHistory(), [0])

    def test_render_rows_and_width(self, cluster, workload):
        sim, _ = run(cluster, workload)
        text = render_timeline(sim.history, [0, 1], width=40)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 machines
        body = lines[1].split("|")[1]
        assert len(body) == 40

    def test_render_counts_concurrency(self):
        h = JobHistory()
        for k in range(3):
            h.add(
                AttemptRecord(
                    job_id=0, task_index=k, machine_id=0,
                    start_time=0.0, finish_time=10.0,
                    read_seconds=0.0, compute_seconds=10.0, outcome=SUCCESS,
                )
            )
        text = render_timeline(h, [0], width=10)
        assert "3" in text.splitlines()[1]

    def test_labels(self, cluster, workload):
        sim, _ = run(cluster, workload)
        text = render_timeline(sim.history, [0], labels={0: "cheap-node"})
        assert "cheap-node" in text
