"""Integration-level tests of the Hadoop simulator."""

import pytest

from repro.cluster.builder import ClusterBuilder, build_paper_testbed
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), store_capacity_mb=1e6)
    b.add_machine("a0", ecu=2.0, cpu_cost=5e-5, zone="za")
    b.add_machine("b0", ecu=5.0, cpu_cost=1e-5, zone="zb")
    return b.build()


@pytest.fixture
def workload():
    data = [DataObject(data_id=0, name="d", size_mb=640.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="scan", tcp=0.5, data_ids=[0], num_tasks=10),
        Job(job_id=1, name="pi", tcp=0.0, num_tasks=2, cpu_seconds_noinput=100.0, arrival_time=30.0),
    ]
    return Workload(jobs=jobs, data=data)


def run(cluster, workload, **cfg):
    sim = HadoopSimulator(cluster, workload, FifoScheduler(), SimConfig(**cfg))
    return sim, sim.run()


def test_all_tasks_complete(cluster, workload):
    sim, res = run(cluster, workload)
    assert res.metrics.tasks_run == 12
    assert sim.jobtracker.all_complete()


def test_makespan_after_last_arrival(cluster, workload):
    _, res = run(cluster, workload)
    assert res.metrics.makespan > 30.0


def test_cpu_cost_conservation(cluster, workload):
    """Ledger CPU dollars == sum over tasks of cpu x host price."""
    sim, res = run(cluster, workload)
    total_cpu_cost = res.metrics.ledger.category_total("cpu")
    recomputed = 0.0
    for m_id, cpu in res.metrics.machine_cpu_seconds.items():
        recomputed += cpu * cluster.machines[m_id].cpu_cost
    assert total_cpu_cost == pytest.approx(recomputed, rel=1e-9)


def test_total_cpu_seconds_conserved(cluster, workload):
    _, res = run(cluster, workload)
    assert sum(res.metrics.machine_cpu_seconds.values()) == pytest.approx(
        workload.total_cpu_seconds(), rel=1e-9
    )


def test_read_accounting_totals(cluster, workload):
    _, res = run(cluster, workload)
    assert res.metrics.total_read_mb == pytest.approx(640.0)


def test_determinism_same_seed(cluster, workload):
    _, a = run(cluster, workload, placement_seed=3)
    _, b = run(cluster, workload, placement_seed=3)
    assert a.metrics.total_cost == b.metrics.total_cost
    assert a.metrics.makespan == b.metrics.makespan


def test_placement_seed_changes_layout(cluster, workload):
    _, a = run(cluster, workload, placement_seed=1)
    _, b = run(cluster, workload, placement_seed=2)
    # different layouts usually change locality mix (not guaranteed equal)
    assert (
        a.metrics.local_read_mb != b.metrics.local_read_mb
        or a.metrics.total_cost != b.metrics.total_cost
        or True  # smoke: both ran to completion
    )


def test_origin_populate_mode(cluster, workload):
    sim, res = run(cluster, workload, populate="origin", replication=1)
    # every block of data 0 sits at its origin store 0
    for block in sim.hdfs.blocks_of(0):
        assert block.replicas == [0]


def test_utilization_in_unit_range(cluster, workload):
    _, res = run(cluster, workload)
    slots = sum(m.map_slots for m in cluster.machines)
    u = res.metrics.utilization(slots)
    assert 0.0 < u <= 1.0


def test_incomplete_detection():
    """A scheduler that never assigns must raise, not hang."""
    from repro.schedulers.base import TaskScheduler

    class NeverScheduler(TaskScheduler):
        def select_task(self, tracker, now):
            return None

    b = ClusterBuilder(topology=Topology.of(["z"]))
    b.add_machine("m", ecu=1.0, cpu_cost=0.0, zone="z")
    cluster = b.build()
    w = Workload(
        jobs=[Job(job_id=0, name="pi", tcp=0.0, num_tasks=1, cpu_seconds_noinput=1.0)],
        data=[],
    )
    sim = HadoopSimulator(cluster, w, NeverScheduler(), SimConfig(starvation_timeout_s=60.0))
    with pytest.raises(RuntimeError, match="starvation"):
        sim.run()


def test_paper_testbed_end_to_end():
    from repro.workload.apps import table4_jobs

    cluster = build_paper_testbed(12, c1_medium_fraction=0.5, seed=2)
    sim = HadoopSimulator(cluster, table4_jobs(), FifoScheduler(), SimConfig(placement_seed=4))
    res = sim.run()
    assert res.metrics.tasks_run == 1608
    assert res.metrics.total_cost > 0
