"""Unit tests for the discrete-event queue."""

import pytest

from repro.hadoop.events import EventQueue


def test_events_fire_in_time_order():
    q = EventQueue()
    fired = []
    q.schedule(5.0, lambda: fired.append("b"))
    q.schedule(1.0, lambda: fired.append("a"))
    q.schedule(9.0, lambda: fired.append("c"))
    q.run()
    assert fired == ["a", "b", "c"]


def test_same_time_fifo_by_seq():
    q = EventQueue()
    fired = []
    for i in range(5):
        q.schedule(1.0, lambda i=i: fired.append(i))
    q.run()
    assert fired == [0, 1, 2, 3, 4]


def test_priority_orders_same_time():
    q = EventQueue()
    fired = []
    q.schedule(1.0, lambda: fired.append("low"), priority=5)
    q.schedule(1.0, lambda: fired.append("high"), priority=-1)
    q.run()
    assert fired == ["high", "low"]


def test_clock_advances():
    q = EventQueue()
    seen = []
    q.schedule(3.0, lambda: seen.append(q.now))
    q.run()
    assert seen == [3.0]
    assert q.now == 3.0


def test_schedule_in_relative():
    q = EventQueue()
    out = []
    q.schedule(2.0, lambda: q.schedule_in(1.5, lambda: out.append(q.now)))
    q.run()
    assert out == [3.5]


def test_scheduling_in_past_rejected():
    q = EventQueue()
    q.schedule(5.0, lambda: None)
    q.step()
    with pytest.raises(ValueError, match="before now"):
        q.schedule(1.0, lambda: None)


def test_negative_delay_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.schedule_in(-1.0, lambda: None)


def test_cancellation():
    q = EventQueue()
    fired = []
    h = q.schedule(1.0, lambda: fired.append("x"))
    h.cancel()
    q.run()
    assert fired == []
    assert h.cancelled


def test_events_scheduled_during_run():
    q = EventQueue()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            q.schedule_in(1.0, lambda: chain(n + 1))

    q.schedule(0.0, lambda: chain(0))
    q.run()
    assert fired == [0, 1, 2, 3]
    assert q.now == 3.0


def test_run_until_stops_clock():
    q = EventQueue()
    fired = []
    q.schedule(1.0, lambda: fired.append(1))
    q.schedule(10.0, lambda: fired.append(10))
    q.run(until=5.0)
    assert fired == [1]
    assert q.now == 5.0


def test_max_events_guard():
    q = EventQueue()

    def forever():
        q.schedule_in(1.0, forever)

    q.schedule(0.0, forever)
    with pytest.raises(RuntimeError, match="max_events"):
        q.run(max_events=100)


def test_peek_skips_cancelled():
    q = EventQueue()
    h = q.schedule(1.0, lambda: None)
    q.schedule(2.0, lambda: None)
    h.cancel()
    assert q.peek_time() == 2.0


def test_len_counts_live_events():
    q = EventQueue()
    h = q.schedule(1.0, lambda: None)
    q.schedule(2.0, lambda: None)
    assert len(q) == 2
    h.cancel()
    assert len(q) == 1


class TestCompaction:
    """Cancelled entries must not accumulate in the heap forever."""

    def test_heap_compacts_when_cancelled_dominate(self):
        q = EventQueue()
        handles = [q.schedule(float(i), lambda: None) for i in range(300)]
        keep = q.schedule(1000.0, lambda: None)
        for h in handles:
            h.cancel()
        # compaction fired somewhere along the way and evicted the garbage
        assert q.compactions >= 1
        assert len(q._heap) < 300
        assert len(q) == 1
        assert q.peek_time() == keep.time

    def test_small_heaps_stay_lazy(self):
        q = EventQueue()
        handles = [q.schedule(float(i), lambda: None) for i in range(20)]
        for h in handles:
            h.cancel()
        # below the floor, lazy skipping is cheaper than rebuilding
        assert q.compactions == 0

    def test_cancel_is_idempotent_in_the_accounting(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        h.cancel()
        h.cancel()
        assert len(q) == 1  # double-cancel must not double-count

    def test_ordering_survives_compaction(self):
        q = EventQueue()
        fired = []
        cancels = [
            q.schedule(float(i), (lambda i=i: fired.append(i)))
            for i in range(200)
        ]
        survivors = [
            q.schedule(500.0 + i, (lambda i=i: fired.append(500 + i)), priority=i)
            for i in range(5)
        ]
        for h in cancels:
            h.cancel()
        assert q.compactions >= 1
        q.run()
        assert fired == [500, 501, 502, 503, 504]
        assert all(not h.cancelled for h in survivors)

    def test_compaction_preserves_pop_results(self):
        # the same schedule/cancel interleaving with and without compaction
        # must fire the identical event sequence
        def run(compact_min):
            import repro.hadoop.events as ev

            old = ev.COMPACT_MIN_CANCELLED
            ev.COMPACT_MIN_CANCELLED = compact_min
            try:
                q = EventQueue()
                fired = []
                handles = {}
                for i in range(150):
                    handles[i] = q.schedule(
                        float(i % 17), (lambda i=i: fired.append(i)), priority=i % 3
                    )
                for i in range(0, 150, 2):
                    handles[i].cancel()
                q.run()
                return fired
            finally:
                ev.COMPACT_MIN_CANCELLED = old
        assert run(compact_min=8) == run(compact_min=10**9)
