"""Unit tests for the network transfer timing model."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.transfer import NetworkSimulator


@pytest.fixture
def net():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]))
    b.add_machine("a0", ecu=1.0, cpu_cost=1e-5, zone="za")
    b.add_machine("b0", ecu=1.0, cpu_cost=1e-5, zone="zb")
    return NetworkSimulator(b.build())


def test_local_read_uses_disk_rate(net):
    # machine 0 reading its own store 0: 400 MB/s, no latency adder
    assert net.read_time(0, 0, 400.0) == pytest.approx(1.0)


def test_intra_zone_remote_has_latency(net):
    t = net.read_time(1, 1, 62.5)  # wait: store 1 belongs to machine 1 — local
    assert t == pytest.approx(62.5 / 400.0)


def test_cross_zone_read_slower(net):
    t = net.read_time(0, 1, 31.25)  # 250 Mbps = 31.25 MB/s
    assert t == pytest.approx(net.per_flow_latency_s + 1.0)


def test_zero_bytes_zero_time(net):
    assert net.read_time(0, 1, 0.0) == 0.0


def test_negative_bytes_rejected(net):
    with pytest.raises(ValueError):
        net.read_time(0, 1, -1.0)


def test_contention_divides_bandwidth(net):
    base = net.read_time(0, 1, 31.25)
    net.flow_started(0)
    contended = net.read_time(0, 1, 31.25)
    # one active flow + the new one => half bandwidth
    assert contended == pytest.approx(net.per_flow_latency_s + 2.0)
    assert contended > base


def test_flow_counting(net):
    net.flow_started(0)
    net.flow_started(0)
    assert net.active_flows(0) == 2
    net.flow_finished(0)
    assert net.active_flows(0) == 1
    net.flow_finished(0)
    assert net.active_flows(0) == 0
    net.flow_finished(0)  # extra finish is safe
    assert net.active_flows(0) == 0


def test_store_move_time(net):
    # cross-zone store-to-store at 31.25 MB/s
    assert net.store_move_time(0, 1, 62.5) == pytest.approx(2.0)
    assert net.store_move_time(0, 0, 62.5) == pytest.approx(62.5 / 400.0)
    assert net.store_move_time(0, 1, 0.0) == 0.0
