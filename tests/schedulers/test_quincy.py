"""Tests for the Quincy-style min-cost-flow scheduler."""

import pytest

from repro.cluster.builder import ClusterBuilder, build_paper_testbed
from repro.cluster.topology import Topology
from repro.hadoop.failures import FailurePlan
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler, QuincyScheduler
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), store_capacity_mb=1e6)
    b.add_machine("a0", ecu=2.0, cpu_cost=5e-5, zone="za")
    b.add_machine("a1", ecu=2.0, cpu_cost=5e-5, zone="za")
    b.add_machine("b0", ecu=5.0, cpu_cost=1e-5, zone="zb")
    return b.build()


@pytest.fixture
def workload():
    data = [DataObject(data_id=0, name="d", size_mb=640.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="scan", tcp=0.5, data_ids=[0], num_tasks=10),
        Job(job_id=1, name="pi", tcp=0.0, num_tasks=4, cpu_seconds_noinput=400.0),
    ]
    return Workload(jobs=jobs, data=data)


def run(cluster, w, sched, **cfg):
    cfg.setdefault("placement_seed", 3)
    cfg.setdefault("speculative", False)
    sim = HadoopSimulator(cluster, w, sched, SimConfig(**cfg))
    return sim, sim.run()


def test_parameter_validation():
    with pytest.raises(ValueError):
        QuincyScheduler(objective="speed")
    with pytest.raises(ValueError):
        QuincyScheduler(refresh_s=0.0)
    with pytest.raises(ValueError):
        QuincyScheduler(slots_lookahead=0)


def test_completes_all_tasks(cluster, workload):
    sched = QuincyScheduler("locality")
    sim, res = run(cluster, workload, sched)
    assert res.metrics.tasks_run == 14
    assert sched.solves >= 1


def test_locality_objective_maximises_locality(cluster, workload):
    sched = QuincyScheduler("locality")
    _, quincy = run(cluster, workload, sched, replication=1)
    _, fifo = run(cluster, workload, FifoScheduler(), replication=1)
    assert quincy.metrics.data_locality >= fifo.metrics.data_locality - 1e-9


def test_dollar_objective_cheaper_than_locality(cluster, workload):
    _, loc = run(cluster, workload, QuincyScheduler("locality"))
    _, dol = run(cluster, workload, QuincyScheduler("dollars"))
    assert dol.metrics.total_cost <= loc.metrics.total_cost * 1.01


def test_dollar_objective_prefers_cheap_machine(cluster, workload):
    _, res = run(cluster, workload, QuincyScheduler("dollars"))
    cpu = res.metrics.machine_cpu_seconds
    total = sum(cpu.values())
    # machine 2 (b0) is 5x cheaper: it should dominate
    assert cpu.get(2, 0.0) / total > 0.6


def test_batchwise_resolve_counts(cluster, workload):
    sched = QuincyScheduler("locality", slots_lookahead=1)
    _, _ = run(cluster, workload, sched)
    more = QuincyScheduler("locality", slots_lookahead=4)
    _, _ = run(cluster, workload, more)
    # more lookahead => fewer solves
    assert more.solves <= sched.solves


def test_survives_machine_failure(cluster, workload):
    plan = FailurePlan()
    plan.add(0, fail_time=5.0)
    sim, res = run(
        cluster, workload, QuincyScheduler("locality"),
        replication=2, placement_seed=3,
    )
    assert sim.jobtracker.all_complete()
    sim2 = HadoopSimulator(
        cluster, workload, QuincyScheduler("locality"),
        SimConfig(replication=2, placement_seed=3, speculative=False),
        failures=plan,
    )
    res2 = sim2.run()
    assert sim2.jobtracker.all_complete()
    assert res2.metrics.machine_failures == 1


def test_deterministic(cluster, workload):
    def once():
        _, res = run(cluster, workload, QuincyScheduler("dollars"))
        return (res.metrics.total_cost, res.metrics.makespan)

    assert once() == once()


def test_paper_testbed_run():
    cluster = build_paper_testbed(9, c1_medium_fraction=1 / 3, seed=2)
    data = [DataObject(data_id=0, name="d", size_mb=1280.0, origin_store=0)]
    jobs = [Job(job_id=0, name="scan", tcp=0.4, data_ids=[0], num_tasks=20)]
    sim, res = run(cluster, Workload(jobs=jobs, data=data), QuincyScheduler("dollars"))
    assert res.metrics.tasks_run == 20
