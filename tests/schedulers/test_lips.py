"""Unit tests for the LiPS simulator scheduler."""

import pytest

from repro.cluster.builder import build_paper_testbed
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler, LipsScheduler
from repro.schedulers.lips import build_zone_aggregate
from repro.workload.apps import table4_jobs
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def cluster():
    return build_paper_testbed(9, c1_medium_fraction=1.0 / 3.0, seed=3)


@pytest.fixture
def workload():
    data = [
        DataObject(data_id=0, name="d0", size_mb=640.0, origin_store=0),
        DataObject(data_id=1, name="d1", size_mb=320.0, origin_store=1),
    ]
    jobs = [
        Job(job_id=0, name="scan", tcp=0.5, data_ids=[0], num_tasks=10),
        Job(job_id=1, name="count", tcp=1.4, data_ids=[1], num_tasks=5),
        Job(job_id=2, name="pi", tcp=0.0, num_tasks=2, cpu_seconds_noinput=200.0),
    ]
    return Workload(jobs=jobs, data=data)


class TestZoneAggregate:
    def test_one_store_per_zone(self, cluster):
        agg = build_zone_aggregate(cluster)
        assert agg.num_stores == 3
        assert agg.num_machines == cluster.num_machines

    def test_capacity_sums(self, cluster):
        agg = build_zone_aggregate(cluster)
        assert agg.store_capacity_vector().sum() == pytest.approx(
            cluster.store_capacity_vector().sum()
        )

    def test_machines_preserved(self, cluster):
        agg = build_zone_aggregate(cluster)
        for a, b in zip(agg.machines, cluster.machines):
            assert a.ecu == b.ecu and a.cpu_cost == b.cpu_cost and a.zone == b.zone

    def test_intra_zone_store_free(self, cluster):
        agg = build_zone_aggregate(cluster)
        for l, m in enumerate(agg.machines):
            for s in agg.stores:
                expected = 0.0 if s.zone == m.zone else agg.network.ms_cost.max()
                assert agg.network.ms_cost[l, s.store_id] == pytest.approx(expected)


class TestLipsRuns:
    def test_completes_all_tasks(self, cluster, workload):
        sim = HadoopSimulator(
            cluster, workload, LipsScheduler(epoch_length=600.0),
            SimConfig(placement_seed=2, speculative=False),
        )
        res = sim.run()
        assert res.metrics.tasks_run == 17

    def test_validates_epoch_parameter(self):
        with pytest.raises(ValueError):
            LipsScheduler(epoch_length=0.0)

    def test_lp_solves_counted(self, cluster, workload):
        sim = HadoopSimulator(
            cluster, workload, LipsScheduler(epoch_length=600.0),
            SimConfig(placement_seed=2, speculative=False),
        )
        res = sim.run()
        assert res.metrics.lp_solves >= 1
        assert res.metrics.lp_solve_seconds > 0

    def test_not_more_expensive_than_fifo(self, cluster):
        w = table4_jobs()
        lips = HadoopSimulator(
            cluster, w, LipsScheduler(epoch_length=1800.0),
            SimConfig(placement_seed=2, speculative=False),
        ).run()
        fifo = HadoopSimulator(
            cluster, w, FifoScheduler(), SimConfig(placement_seed=2, speculative=False)
        ).run()
        assert lips.metrics.total_cost <= fifo.metrics.total_cost * 1.02

    def test_moves_data_and_charges_placement(self, cluster):
        w = table4_jobs()
        sim = HadoopSimulator(
            cluster, w, LipsScheduler(epoch_length=1800.0),
            SimConfig(placement_seed=2, speculative=False),
        )
        res = sim.run()
        assert res.metrics.moved_mb > 0
        # intra-zone moves are free; cost only for cross-zone relocations
        assert res.metrics.ledger.category_total("placement-transfer") >= 0.0

    def test_plans_pin_tasks_to_stores(self, cluster, workload):
        sched = LipsScheduler(epoch_length=600.0)
        sim = HadoopSimulator(
            cluster, workload, sched, SimConfig(placement_seed=2, speculative=False)
        )
        res = sim.run()
        # after the run every data task was read from its pinned store: the
        # locality metric reflects LP-planned reads (full locality expected
        # because realisation prefers the machine's own DataNode)
        assert res.metrics.data_locality >= 0.8

    def test_longer_epoch_not_more_expensive(self, cluster):
        w = table4_jobs()
        costs = {}
        for e in (450.0, 3600.0):
            res = HadoopSimulator(
                cluster, w, LipsScheduler(epoch_length=e),
                SimConfig(placement_seed=2, speculative=False),
            ).run()
            costs[e] = res.metrics.total_cost
        assert costs[3600.0] <= costs[450.0] * 1.05

    def test_deterministic(self, cluster, workload):
        def one():
            return HadoopSimulator(
                cluster, workload, LipsScheduler(epoch_length=600.0),
                SimConfig(placement_seed=2, speculative=False),
            ).run()

        a, b = one(), one()
        assert a.metrics.total_cost == b.metrics.total_cost
        assert a.metrics.makespan == b.metrics.makespan
