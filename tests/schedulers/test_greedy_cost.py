"""Unit tests for the Section IV cost-greedy scheduler."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler, GreedyCostScheduler
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def cluster():
    """One expensive and one cheap machine with ample capacity."""
    b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
    b.add_machine("pricey", ecu=4.0, cpu_cost=5e-5, zone="z", map_slots=4)
    b.add_machine("cheap", ecu=4.0, cpu_cost=1e-5, zone="z", map_slots=4)
    return b.build()


@pytest.fixture
def workload():
    jobs = [Job(job_id=0, name="pi", tcp=0.0, num_tasks=4, cpu_seconds_noinput=400.0)]
    return Workload(jobs=jobs, data=[])


def test_prefers_cheap_machine_when_idle(cluster, workload):
    sim = HadoopSimulator(cluster, workload, GreedyCostScheduler(), SimConfig())
    res = sim.run()
    cpu = res.metrics.machine_cpu_seconds
    # all 400 cpu-s land on the cheap machine (slots suffice)
    assert cpu.get(1, 0.0) == pytest.approx(400.0)
    assert cpu.get(0, 0.0) == 0.0


def test_non_strict_takes_first_offer(cluster, workload):
    sim = HadoopSimulator(
        cluster, workload, GreedyCostScheduler(strict=False), SimConfig()
    )
    res = sim.run()
    # non-strict mode may run on whichever slot asks first; everything
    # completes either way
    assert res.metrics.tasks_run == 4


def test_greedy_cheaper_than_fifo_under_light_load(cluster, workload):
    """Paper Sec IV: with ample capacity the greedy is cost-optimal."""
    greedy = HadoopSimulator(cluster, workload, GreedyCostScheduler(), SimConfig()).run()
    fifo = HadoopSimulator(cluster, workload, FifoScheduler(), SimConfig()).run()
    assert greedy.metrics.total_cost <= fifo.metrics.total_cost + 1e-12


def test_reads_cheapest_store(cluster):
    data = [DataObject(data_id=0, name="d", size_mb=128.0, origin_store=0)]
    jobs = [Job(job_id=0, name="scan", tcp=0.5, data_ids=[0], num_tasks=2)]
    sim = HadoopSimulator(
        cluster,
        Workload(jobs=jobs, data=data),
        GreedyCostScheduler(),
        SimConfig(replication=2),
    )
    res = sim.run()
    # intra-zone cluster: every read is free either way, so cost == cpu cost
    assert res.metrics.ledger.category_total("runtime-transfer") == 0.0


def test_completes_under_contention(cluster):
    jobs = [
        Job(job_id=k, name=f"j{k}", tcp=0.0, num_tasks=8, cpu_seconds_noinput=800.0)
        for k in range(3)
    ]
    sim = HadoopSimulator(cluster, Workload(jobs=jobs, data=[]), GreedyCostScheduler(), SimConfig())
    res = sim.run()
    assert res.metrics.tasks_run == 24
    # under contention the greedy eventually uses the pricey node too
    assert res.metrics.machine_cpu_seconds.get(0, 0.0) > 0
