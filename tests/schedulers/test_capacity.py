"""Tests for the CapacityScheduler."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import CapacityScheduler, FifoScheduler
from repro.workload.job import Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
    for i in range(2):
        b.add_machine(f"m{i}", ecu=2.0, cpu_cost=1e-5, zone="z", map_slots=2)
    return b.build()


def queue_jobs(spec):
    """spec: list of (queue, tasks) — 40 cpu-s per task."""
    jobs = []
    for i, (queue, tasks) in enumerate(spec):
        jobs.append(
            Job(
                job_id=i,
                name=f"{queue}-{i}",
                tcp=0.0,
                num_tasks=tasks,
                cpu_seconds_noinput=40.0 * tasks,
                pool=queue,
            )
        )
    return Workload(jobs=jobs, data=[])


def run(cluster, w, sched):
    sim = HadoopSimulator(cluster, w, sched, SimConfig())
    return sim, sim.run().metrics


class TestValidation:
    def test_capacities_positive(self):
        with pytest.raises(ValueError):
            CapacityScheduler({"q": 0.0})

    def test_capacities_sum(self):
        with pytest.raises(ValueError):
            CapacityScheduler({"a": 0.7, "b": 0.7})


class TestSharing:
    def test_guaranteed_queue_not_starved(self, cluster):
        """A small guaranteed queue overtakes a FIFO backlog."""
        w = queue_jobs([("bulk", 16), ("prod", 4)])
        sched = CapacityScheduler({"prod": 0.5, "bulk": 0.5})
        sim, m = run(cluster, w, sched)
        fifo_sim, fifo_m = run(cluster, w, FifoScheduler())
        assert m.job_durations[1] < fifo_m.job_durations[1]

    def test_elastic_lends_idle_capacity(self, cluster):
        """With one active queue, elasticity lets it use the whole cluster."""
        w = queue_jobs([("bulk", 8)])
        _, elastic = run(cluster, w, CapacityScheduler({"bulk": 0.25}))
        _, fifo = run(cluster, w, FifoScheduler())
        assert elastic.makespan == pytest.approx(fifo.makespan, rel=0.05)

    def test_hard_cap_limits_queue(self, cluster):
        """Non-elastic guarantees cap concurrency and stretch the makespan."""
        w = queue_jobs([("bulk", 8)])
        _, capped = run(cluster, w, CapacityScheduler({"bulk": 0.25}, elastic=False))
        _, elastic = run(cluster, w, CapacityScheduler({"bulk": 0.25}))
        assert capped.makespan > elastic.makespan

    def test_unlisted_queues_share_leftover(self, cluster):
        w = queue_jobs([("listed", 8), ("other", 8)])
        sched = CapacityScheduler({"listed": 0.5})
        sim, m = run(cluster, w, sched)
        # both complete; neither starves
        assert m.tasks_run == 16
        assert set(m.job_durations) == {0, 1}

    def test_all_tasks_complete(self, cluster):
        w = queue_jobs([("a", 6), ("b", 6), ("c", 6)])
        _, m = run(cluster, w, CapacityScheduler({"a": 0.3, "b": 0.3, "c": 0.4}))
        assert m.tasks_run == 18
