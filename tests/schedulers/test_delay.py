"""Unit tests for delay scheduling."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import DelayScheduler, FifoScheduler
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), store_capacity_mb=1e6)
    for i in range(3):
        b.add_machine(f"a{i}", ecu=2.0, cpu_cost=1e-5, zone="za")
    for i in range(3):
        b.add_machine(f"b{i}", ecu=2.0, cpu_cost=1e-5, zone="zb")
    return b.build()


@pytest.fixture
def workload():
    data = [DataObject(data_id=0, name="d", size_mb=1280.0, origin_store=0)]
    jobs = [Job(job_id=0, name="scan", tcp=0.8, data_ids=[0], num_tasks=20)]
    return Workload(jobs=jobs, data=data)


def test_parameter_validation():
    with pytest.raises(ValueError):
        DelayScheduler(node_delay_s=-1.0)
    with pytest.raises(ValueError):
        DelayScheduler(node_delay_s=10.0, zone_delay_s=5.0)


def test_delay_improves_locality_over_fifo(cluster, workload):
    results = {}
    for name, sched in (("fifo", FifoScheduler()), ("delay", DelayScheduler())):
        sim = HadoopSimulator(cluster, workload, sched, SimConfig(placement_seed=5, replication=1))
        results[name] = sim.run().metrics
    assert results["delay"].data_locality >= results["fifo"].data_locality


def test_waiting_clock_escalates_levels(cluster, workload):
    sched = DelayScheduler(node_delay_s=6.0, zone_delay_s=12.0)
    sim = HadoopSimulator(cluster, workload, sched, SimConfig(placement_seed=5))
    sched.bind(sim)
    sim._populate()
    job = sim.jobtracker.submit(workload.jobs[0], workload, now=0.0)
    from repro.schedulers.fifo import ANY, NODE, ZONE

    assert sched._allowed_level(job, now=0.0) == NODE  # no wait started
    job.wait_started = 0.0
    assert sched._allowed_level(job, now=3.0) == NODE
    assert sched._allowed_level(job, now=7.0) == ZONE
    assert sched._allowed_level(job, now=13.0) == ANY


def test_run_completes_despite_delays(cluster, workload):
    sim = HadoopSimulator(
        cluster, workload, DelayScheduler(), SimConfig(placement_seed=5, replication=1)
    )
    res = sim.run()
    assert res.metrics.tasks_run == 20


def test_zero_delay_equals_fifo_behaviour(cluster, workload):
    """With no delays the scheduler never skips: same outcome as FIFO."""
    a = HadoopSimulator(
        cluster, workload, DelayScheduler(node_delay_s=0.0, zone_delay_s=0.0),
        SimConfig(placement_seed=5),
    ).run()
    b = HadoopSimulator(
        cluster, workload, FifoScheduler(), SimConfig(placement_seed=5)
    ).run()
    assert a.metrics.total_cost == pytest.approx(b.metrics.total_cost, rel=0.05)
