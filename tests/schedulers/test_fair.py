"""Unit tests for the pool-based FairScheduler."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FairScheduler, FifoScheduler
from repro.workload.job import Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["z"]), store_capacity_mb=1e6)
    for i in range(2):
        b.add_machine(f"m{i}", ecu=2.0, cpu_cost=1e-5, zone="z", map_slots=2)
    return b.build()


def cpu_jobs(pools, tasks=8):
    jobs = []
    counts = tasks if isinstance(tasks, (list, tuple)) else [tasks] * len(pools)
    for i, (pool, n) in enumerate(zip(pools, counts)):
        jobs.append(
            Job(
                job_id=i,
                name=f"{pool}-{i}",
                tcp=0.0,
                num_tasks=n,
                cpu_seconds_noinput=40.0 * n,
                pool=pool,
            )
        )
    return Workload(jobs=jobs, data=[])


def test_pools_share_concurrently(cluster):
    """Under FIFO the small late pool waits; fair sharing serves it early."""
    w = cpu_jobs(["alpha", "beta"], tasks=[16, 4])
    fair = HadoopSimulator(cluster, w, FairScheduler(), SimConfig()).run()
    fifo = HadoopSimulator(cluster, w, FifoScheduler(), SimConfig()).run()
    # fair: the small pool's job finishes sooner than under strict FIFO
    assert fair.metrics.job_durations[1] < fifo.metrics.job_durations[1]


def test_single_pool_behaves_like_fifo(cluster):
    w = cpu_jobs(["only", "only"])
    fair = HadoopSimulator(cluster, w, FairScheduler(), SimConfig()).run()
    fifo = HadoopSimulator(cluster, w, FifoScheduler(), SimConfig()).run()
    assert fair.metrics.makespan == pytest.approx(fifo.metrics.makespan, rel=0.05)


def test_min_share_prioritises_pool(cluster):
    w = cpu_jobs(["normal", "vip"])
    fair = HadoopSimulator(
        cluster, w, FairScheduler(min_share={"vip": 4}), SimConfig()
    ).run()
    # the vip pool's job should not finish last
    assert fair.metrics.job_durations[1] <= fair.metrics.job_durations[0] * 1.2


def test_all_jobs_complete(cluster):
    w = cpu_jobs(["a", "b", "c", "a"])
    res = HadoopSimulator(cluster, w, FairScheduler(), SimConfig()).run()
    assert res.metrics.tasks_run == 32
