"""Unit tests for the default FIFO-locality scheduler."""

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler
from repro.schedulers.fifo import ANY, NODE, ZONE, best_task_for, locality_of
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), store_capacity_mb=1e6)
    b.add_machine("a0", ecu=2.0, cpu_cost=1e-5, zone="za")
    b.add_machine("a1", ecu=2.0, cpu_cost=1e-5, zone="za")
    b.add_machine("b0", ecu=2.0, cpu_cost=1e-5, zone="zb")
    return b.build()


def make_sim(cluster, jobs, data, **cfg):
    cfg.setdefault("placement_seed", 0)
    w = Workload(jobs=jobs, data=data)
    return HadoopSimulator(cluster, w, FifoScheduler(), SimConfig(**cfg))


def test_locality_levels(cluster):
    sim = make_sim(cluster, [Job(job_id=0, name="j", tcp=0.0, num_tasks=1, cpu_seconds_noinput=1.0)], [])
    tracker = sim.trackers[0]
    assert locality_of(sim, None, tracker, 0) == NODE  # own store
    assert locality_of(sim, None, tracker, 1) == ZONE  # same zone
    assert locality_of(sim, None, tracker, 2) == ANY  # cross zone


def test_fifo_order_respected(cluster):
    data = [DataObject(data_id=0, name="d", size_mb=64.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="first", tcp=1.0, data_ids=[0], num_tasks=1, arrival_time=0.0),
        Job(job_id=1, name="second", tcp=0.0, num_tasks=1, cpu_seconds_noinput=1.0, arrival_time=0.0),
    ]
    sim = make_sim(cluster, jobs, data)
    sim.run()
    # both complete; first job finished no later than second started + ran
    assert sim.jobtracker.jobs[0].finish_time is not None


def test_priority_preempts_fifo(cluster):
    # 6 slots; job 0 grabs them all at t=0, leaving 6 of its 12 tasks queued.
    # The later high-priority job must overtake those queued tasks.
    jobs = [
        Job(job_id=0, name="lowprio", tcp=0.0, num_tasks=12, cpu_seconds_noinput=600.0, priority=0),
        Job(job_id=1, name="highprio", tcp=0.0, num_tasks=12, cpu_seconds_noinput=600.0,
            priority=5, arrival_time=10.0),
    ]
    sim = make_sim(cluster, jobs, [])
    sim.run()
    assert sim.jobtracker.jobs[1].finish_time < sim.jobtracker.jobs[0].finish_time


def test_greedy_locality_prefers_local_block(cluster):
    data = [DataObject(data_id=0, name="d", size_mb=640.0, origin_store=0)]
    jobs = [Job(job_id=0, name="scan", tcp=0.1, data_ids=[0], num_tasks=10)]
    sim = make_sim(cluster, jobs, data, replication=3)
    res = sim.run()
    # replication 3 on a 3-node cluster: every block is everywhere-local
    assert res.metrics.data_locality == pytest.approx(1.0)


def test_best_task_for_honours_max_level(cluster):
    data = [DataObject(data_id=0, name="d", size_mb=64.0, origin_store=0)]
    jobs = [Job(job_id=0, name="scan", tcp=0.1, data_ids=[0], num_tasks=1)]
    sim = make_sim(cluster, jobs, data, replication=1, populate="origin")
    sim.scheduler.bind(sim)
    sim._populate()
    w = Workload(jobs=jobs, data=data)
    state = sim.jobtracker.submit(jobs[0], w, now=0.0)
    # block lives on store 0 only; machine b0 (cross-zone) at NODE level: none
    found = best_task_for(sim, state, sim.trackers[2], now=0.0, max_level=NODE)
    assert found is None
    found_any = best_task_for(sim, state, sim.trackers[2], now=0.0, max_level=ANY)
    assert found_any is not None


def test_earliest_start_respected(cluster):
    jobs = [Job(job_id=0, name="pi", tcp=0.0, num_tasks=2, cpu_seconds_noinput=10.0)]
    sim = make_sim(cluster, jobs, [])
    sim.scheduler.bind(sim)
    state = sim.jobtracker.submit(jobs[0], Workload(jobs=jobs, data=[]), now=0.0)
    for t in state.pending:
        t.earliest_start = 50.0
    assert best_task_for(sim, state, sim.trackers[0], now=0.0) is None
    assert best_task_for(sim, state, sim.trackers[0], now=60.0) is not None
