"""Tests for the adaptive-epoch LiPS variant."""

import pytest

from repro.cluster.builder import build_paper_testbed
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import AdaptiveLipsScheduler, LipsScheduler
from repro.workload.apps import table4_jobs


@pytest.fixture(scope="module")
def cluster():
    return build_paper_testbed(12, c1_medium_fraction=0.5, seed=1)


def run(cluster, sched):
    sim = HadoopSimulator(
        cluster, table4_jobs(), sched, SimConfig(placement_seed=7, speculative=False)
    )
    return sim.run().metrics


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveLipsScheduler(target_makespan=0.0)
        with pytest.raises(ValueError):
            AdaptiveLipsScheduler(target_makespan=100.0, min_epoch=10.0, max_epoch=5.0)
        with pytest.raises(ValueError):
            AdaptiveLipsScheduler(target_makespan=100.0, adjust_factor=1.0)


class TestAdaptation:
    def test_completes_workload(self, cluster):
        sched = AdaptiveLipsScheduler(target_makespan=2500.0)
        m = run(cluster, sched)
        assert m.tasks_run == 1608
        assert len(sched.epoch_history) >= 1

    def test_tight_budget_shrinks_epochs(self, cluster):
        tight = AdaptiveLipsScheduler(target_makespan=900.0, initial_epoch=1800.0)
        run(cluster, tight)
        loose = AdaptiveLipsScheduler(target_makespan=30_000.0, initial_epoch=1800.0)
        run(cluster, loose)
        # under a tight budget the controller turns the epoch down
        min_tight = min(e for _, e, _ in tight.epoch_history)
        assert min_tight < 1800.0
        # under a loose budget it turns it up
        max_loose = max(e for _, e, _ in loose.epoch_history)
        assert max_loose > 1800.0

    def test_tight_budget_faster_than_loose(self, cluster):
        tight = run(cluster, AdaptiveLipsScheduler(target_makespan=900.0, initial_epoch=1800.0))
        loose = run(cluster, AdaptiveLipsScheduler(target_makespan=30_000.0, initial_epoch=1800.0))
        assert tight.makespan <= loose.makespan
        # ...and the loose run pays less (the paper's tradeoff, self-tuned)
        assert loose.total_cost <= tight.total_cost * 1.001

    def test_epochs_respect_clamp(self, cluster):
        sched = AdaptiveLipsScheduler(
            target_makespan=600.0, min_epoch=300.0, max_epoch=2400.0, initial_epoch=600.0
        )
        run(cluster, sched)
        for _, e, _ in sched.epoch_history:
            assert 300.0 <= e <= 2400.0

    def test_matches_fixed_when_budget_met_exactly(self, cluster):
        """With a generous budget behaviour approaches long fixed epochs."""
        adaptive = run(
            cluster,
            AdaptiveLipsScheduler(target_makespan=50_000.0, initial_epoch=3600.0, max_epoch=3600.0),
        )
        fixed = run(cluster, LipsScheduler(epoch_length=3600.0))
        assert adaptive.total_cost == pytest.approx(fixed.total_cost, rel=0.05)
