"""Verify DESIGN.md's zone-aggregation claim.

The LiPS simulator scheduler solves its LP over one virtual store per zone
and claims this is *cost-exact* under the paper's EC2 pricing (intra-zone
transfer free, flat cross-zone price): every store in a zone is
price-equivalent, so only the zone choice affects dollars.  These tests pin
that equivalence — and its known limitation (the bandwidth constraint (21)
sees the slower shared-fabric rate instead of local disk, so with (21)
enabled the zone model is conservative, never optimistic).
"""

import pytest

from repro.cluster.builder import build_paper_testbed
from repro.core.co_online import OnlineModelConfig, solve_co_online
from repro.core.model import SchedulingInput
from repro.schedulers.lips import build_zone_aggregate
from repro.workload.job import DataObject, Job, Workload


def _workload(num_stores, zone_of_store):
    data = [
        DataObject(data_id=0, name="a", size_mb=640.0, origin_store=0),
        DataObject(data_id=1, name="b", size_mb=320.0, origin_store=min(3, num_stores - 1)),
    ]
    jobs = [
        Job(job_id=0, name="scan", tcp=0.4, data_ids=[0], num_tasks=10),
        Job(job_id=1, name="count", tcp=1.4, data_ids=[1], num_tasks=5),
        Job(job_id=2, name="pi", tcp=0.0, num_tasks=2, cpu_seconds_noinput=300.0),
    ]
    return Workload(jobs=jobs, data=data)


def _zone_workload(cluster, zone_cluster, workload):
    """Re-express origins as zone-store indices for the aggregated model."""
    zone_names = cluster.topology.zone_names()
    data = []
    for d in workload.data:
        zone = cluster.stores[d.origin_store].zone
        data.append(
            DataObject(
                data_id=d.data_id,
                name=d.name,
                size_mb=d.size_mb,
                origin_store=zone_names.index(zone),
            )
        )
    return Workload(jobs=list(workload.jobs), data=data)


@pytest.fixture(scope="module")
def setting():
    cluster = build_paper_testbed(9, c1_medium_fraction=1 / 3, seed=2)
    zone_cluster = build_zone_aggregate(cluster)
    w = _workload(cluster.num_stores, None)
    zw = _zone_workload(cluster, zone_cluster, w)
    return cluster, zone_cluster, w, zw


def test_cost_exact_without_bandwidth_constraint(setting):
    cluster, zone_cluster, w, zw = setting
    cfg = OnlineModelConfig(epoch_length=50_000.0, enforce_bandwidth=False)
    full = solve_co_online(SchedulingInput.from_parts(cluster, w), cfg)
    zone = solve_co_online(SchedulingInput.from_parts(zone_cluster, zw), cfg)
    assert zone.objective == pytest.approx(full.objective, rel=1e-6)


def test_zone_model_conservative_with_bandwidth(setting):
    cluster, zone_cluster, w, zw = setting
    cfg = OnlineModelConfig(epoch_length=300.0, enforce_bandwidth=True)
    full = solve_co_online(SchedulingInput.from_parts(cluster, w), cfg)
    zone = solve_co_online(SchedulingInput.from_parts(zone_cluster, zw), cfg)
    # the zone fabric (62.5 MB/s) is slower than local disk (400 MB/s), so
    # the aggregated model can only be more constrained — never cheaper
    assert zone.objective >= full.objective * (1 - 1e-9)


def test_exactness_breaks_with_intra_zone_pricing():
    """The claim is specific to free intra-zone transfer: price it and the
    zone model (whose intra-zone reads cost the same 'free' rate as local
    ones) diverges from the store-granular truth."""
    from repro.cluster.builder import ClusterBuilder
    from repro.cluster.topology import Topology

    b = ClusterBuilder(topology=Topology.of(["z"]), default_uptime=50_000.0)
    # data originates next to the pricey machine; the cheap ones must pay
    # intra-zone transfer in the store-granular truth
    b.add_machine("pricey", ecu=2.0, cpu_cost=5e-5, zone="z")
    b.add_machine("cheap-0", ecu=2.0, cpu_cost=1e-5, zone="z")
    b.add_machine("cheap-1", ecu=2.0, cpu_cost=1e-5, zone="z")
    cluster = b.build(intra_zone_cost_per_mb=2e-6)  # non-EC2: intra costs
    zone_cluster = build_zone_aggregate(cluster)
    w = _workload(cluster.num_stores, None)
    zw = _zone_workload(cluster, zone_cluster, w)
    cfg = OnlineModelConfig(epoch_length=50_000.0, enforce_bandwidth=False)
    full = solve_co_online(SchedulingInput.from_parts(cluster, w), cfg)
    zone = solve_co_online(SchedulingInput.from_parts(zone_cluster, zw), cfg)
    # store-granular model pays intra-zone remote reads; the zone model
    # can't see them: objectives differ
    assert abs(zone.objective - full.objective) > 1e-6
