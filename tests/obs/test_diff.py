"""Trace-diff tests: stat extraction, gating semantics, the CLI gate.

Uses the same smoke-trace trio CI gates on: base/same are identical
seeded runs, slow doubles dollar rates and halves throughput.
"""

import json

import pytest

from repro.cli import main
from repro.obs.diff import (
    DEFAULT_THRESHOLDS,
    DiffEntry,
    diff_traces,
    emit_smoke_traces,
    stats_from_trace,
)
from repro.obs.export import load_jsonl


@pytest.fixture(scope="module")
def trio(tmp_path_factory):
    paths = emit_smoke_traces(tmp_path_factory.mktemp("smoke"))
    return {name: load_jsonl(path) for name, path in paths.items()}


class TestStatsFromTrace:
    def test_headline_stats_present(self, trio):
        stats = stats_from_trace(trio["base"])
        for key in ("total_cost", "makespan", "tasks_run", "lp_solves",
                    "lp_iterations", "cost.cpu"):
            assert key in stats
        assert any(k.startswith("critpath.") for k in stats)

    def test_identical_runs_produce_identical_stats(self, trio):
        base = stats_from_trace(trio["base"])
        same = stats_from_trace(trio["same"])
        # wall-clock stats are the one legitimate difference
        for stats in (base, same):
            stats.pop("lp_iterations", None)
        assert base == same

    def test_pre_ledger_trace_falls_back_to_span_ends(self):
        records = [
            {"type": "span", "cat": "task", "name": "attempt",
             "ts": 5.0, "dur": 7.0, "machine": 0, "job": 0},
        ]
        stats = stats_from_trace(records)
        assert stats["makespan"] == 12.0
        assert "total_cost" not in stats


class TestGating:
    def test_identical_pair_is_ok(self, trio):
        diff = diff_traces(trio["base"], trio["same"])
        assert diff.ok and diff.regressions == []
        assert "verdict: OK" in diff.render()

    def test_slowdown_is_caught(self, trio):
        diff = diff_traces(trio["base"], trio["slow"])
        assert not diff.ok
        regressed = {e.stat for e in diff.regressions}
        assert "total_cost" in regressed and "makespan" in regressed
        assert "REGRESSED" in diff.render()

    def test_improvements_never_gate(self, trio):
        # swap the pair: slow -> base is a big improvement, not a regression
        diff = diff_traces(trio["slow"], trio["base"])
        assert diff.ok

    def test_threshold_override_and_ungating(self, trio):
        tight = diff_traces(trio["base"], trio["slow"],
                            thresholds={"makespan": 10.0, "total_cost": 10.0})
        assert "makespan" not in {e.stat for e in tight.regressions}
        ungated = diff_traces(
            trio["base"], trio["slow"],
            thresholds={k: None for k in DEFAULT_THRESHOLDS},
        )
        assert ungated.ok

    def test_entry_relative_handles_zero_base(self):
        entry = DiffEntry(stat="x", base=0.0, candidate=1.0, threshold=0.05)
        assert entry.relative == float("inf") and entry.regressed
        flat = DiffEntry(stat="x", base=0.0, candidate=0.0, threshold=0.05)
        assert flat.relative == 0.0 and not flat.regressed

    def test_to_dict_is_json_serialisable(self, trio):
        doc = diff_traces(trio["base"], trio["slow"]).to_dict()
        assert doc["ok"] is False
        json.dumps(doc)


class TestCliGate:
    @pytest.fixture(scope="class")
    def paths(self, tmp_path_factory):
        return emit_smoke_traces(tmp_path_factory.mktemp("cli-smoke"))

    def test_identical_pair_exits_zero(self, paths, capsys):
        rc = main(["diff", paths["base"], paths["same"]])
        assert rc == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_regressed_pair_exits_nonzero(self, paths, capsys):
        rc = main(["diff", paths["base"], paths["slow"]])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_json_output(self, paths, tmp_path, capsys):
        out = tmp_path / "diff.json"
        rc = main(["diff", paths["base"], paths["slow"], "--json", str(out)])
        assert rc == 1
        assert json.loads(out.read_text())["ok"] is False
        capsys.readouterr()

    def test_missing_file_exits_two(self, tmp_path, capsys):
        rc = main(["diff", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")])
        assert rc == 2
        capsys.readouterr()
