"""Simulator-level tracing tests: determinism and a golden trace.

The golden file freezes the exact JSONL a tiny 2-machine/2-job LiPS run
emits — task-attempt spans, transfer reads, epoch spans, one LP solve.
Wall-clock attributes (``wall_s``, ``iterations``, ``lp_wall_s``) are
normalised to zero before comparing; everything else in a trace is a pure
function of the seed.  Regenerate after an intentional schema change with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/obs/test_sim_tracing.py
"""

import os
from pathlib import Path

import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.obs.export import load_jsonl, write_jsonl
from repro.obs.registry import MetricsRegistry, use_registry
from repro.obs.trace import Tracer, use_tracer
from repro.schedulers import LipsScheduler
from repro.workload.job import DataObject, Job, Workload

GOLDEN = Path(__file__).parent / "golden_trace.jsonl"


def tiny_cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), store_capacity_mb=1e6)
    b.add_machine("a0", ecu=2.0, cpu_cost=5e-5, zone="za")
    b.add_machine("b0", ecu=5.0, cpu_cost=1e-5, zone="zb")
    return b.build()


def tiny_workload():
    data = [DataObject(data_id=0, name="d", size_mb=128.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="scan", tcp=0.5, data_ids=[0], num_tasks=2),
        Job(job_id=1, name="pi", tcp=0.0, num_tasks=1,
            cpu_seconds_noinput=50.0, arrival_time=10.0),
    ]
    return Workload(jobs=jobs, data=data)


def run_once(tracer=None):
    sim = HadoopSimulator(
        tiny_cluster(),
        tiny_workload(),
        LipsScheduler(epoch_length=60.0),
        SimConfig(placement_seed=2, speculative=False, tracer=tracer),
    )
    return sim.run()


def normalise(records):
    """Zero the wall-clock attributes; everything else is seed-determined."""
    out = []
    for r in records:
        r = dict(r)
        if r.get("type") == "lp_solve":
            r["wall_s"] = 0.0
            r["iterations"] = 0
        if r.get("cat") in ("epoch", "summary"):
            r["lp_wall_s"] = 0.0
        out.append(r)
    return out


class TestTracingIsObservationOnly:
    def test_traced_run_matches_untraced(self):
        """Enabling tracing must not perturb any seeded simulation result."""
        plain = run_once()
        traced = run_once(tracer=Tracer())
        assert traced.metrics.makespan == plain.metrics.makespan
        assert traced.metrics.total_cost == plain.metrics.total_cost
        assert traced.metrics.tasks_run == plain.metrics.tasks_run
        assert traced.metrics.moved_mb == plain.metrics.moved_mb
        assert traced.metrics.local_read_mb == plain.metrics.local_read_mb
        assert traced.metrics.lp_solves == plain.metrics.lp_solves
        assert traced.metrics.job_durations == plain.metrics.job_durations
        assert (
            traced.metrics.ledger.total_by_category()
            == plain.metrics.ledger.total_by_category()
        )

    def test_trace_is_deterministic_modulo_wall_time(self):
        a, b = Tracer(), Tracer()
        run_once(tracer=a)
        run_once(tracer=b)
        assert normalise(a.records) == normalise(b.records)


class TestTraceContents:
    @pytest.fixture(scope="class")
    def records(self):
        tracer = Tracer()
        run_once(tracer=tracer)
        return tracer.records

    def test_task_attempt_spans(self, records):
        spans = [r for r in records
                 if r["type"] == "span" and r["cat"] == "task"]
        assert len(spans) == 3  # one per completed attempt
        for s in spans:
            assert s["dur"] > 0 and "machine" in s and "job" in s

    def test_transfer_reads_carry_mb_and_tier(self, records):
        reads = [r for r in records
                 if r["cat"] == "transfer" and r["name"] == "read"]
        assert reads and all(r["mb"] > 0 for r in reads)
        assert all(r["tier"] in ("local", "zone", "remote") for r in reads)

    def test_epoch_spans_carry_plan_stats(self, records):
        epochs = [r for r in records if r["cat"] == "epoch"]
        assert epochs
        planning = [e for e in epochs if e.get("lp_solves")]
        assert planning, "at least one epoch should have solved the LP"
        assert planning[0]["planned"] == 3 and planning[0]["parked"] == 0
        assert planning[0]["queued"] == 3

    def test_lp_solve_record_present(self, records):
        (solve,) = [r for r in records if r["type"] == "lp_solve"]
        assert solve["name"] == "co-online"
        assert solve["rows_ub"] > 0 and solve["cols"] > 0 and solve["nnz"] > 0
        assert solve["wall_s"] > 0
        assert solve["status"] == "optimal"

    def test_job_lifecycle(self, records):
        submits = [r for r in records
                   if r["cat"] == "job" and r["name"] == "submit"]
        runs = [r for r in records if r["cat"] == "job" and r["name"] == "run"]
        assert len(submits) == 2 and len(runs) == 2

    def test_no_dispatch_records_by_default(self, records):
        assert not any(r["cat"] == "dispatch" for r in records)


class TestDispatchOptIn:
    def test_dispatch_category_records_callbacks(self):
        tracer = Tracer(categories=["dispatch"])
        run_once(tracer=tracer)
        assert tracer.records
        assert all(r["cat"] == "dispatch" for r in tracer.records)
        assert all("seq" in r for r in tracer.records)


class TestGoldenTrace:
    def test_matches_golden(self):
        tracer = Tracer()
        run_once(tracer=tracer)
        got = normalise(tracer.records)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            write_jsonl(got, GOLDEN)
            pytest.skip(f"regenerated {GOLDEN}")
        assert got == normalise(load_jsonl(GOLDEN))


class TestRegistryPublish:
    def test_run_publishes_into_installed_registry(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            res = run_once()
        label = {"scheduler": res.scheduler_name}
        assert reg.counter("tasks_run").value(**label) == 3
        assert reg.gauge("makespan").value(**label) == res.metrics.makespan
        assert reg.counter("lp_solves").value(**label) == 1
        assert reg.counter("cost_dollars").total() == pytest.approx(
            res.metrics.total_cost
        )

    def test_two_runs_accumulate_counters(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            run_once()
            run_once()
        assert reg.counter("tasks_run").total() == 6

    def test_no_publishing_without_registry(self):
        res = run_once()
        assert res.metrics.tasks_run == 3  # and nothing blew up


class TestAmbientTracerPickup:
    def test_sim_uses_ambient_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run_once()  # SimConfig.tracer left at None
        assert any(r["cat"] == "task" for r in tracer.records)

    def test_per_run_lp_histogram(self):
        res = run_once()
        hist = res.metrics.registry.histogram("lp_solve_duration_seconds")
        assert hist.count(model="co-online", backend="highs") == 1
