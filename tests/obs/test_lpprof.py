"""Unit tests for LP solve profiling on the shared backend path."""

import pytest

from repro.lp.problem import LinearProgram, Sense
from repro.lp.scipy_backend import HighsBackend
from repro.lp.simplex import SimplexBackend
from repro.obs import lpprof


def _tiny_lp(name="tiny"):
    lp = LinearProgram(name)
    x = lp.new_var("x")
    y = lp.new_var("y")
    lp.add_constraint(x + y, Sense.GE, 1.0)
    lp.set_objective(2.0 * x + 3.0 * y)
    return lp


class TestCollectors:
    def test_inactive_by_default(self):
        assert not lpprof.active()

    def test_no_records_without_collector(self):
        with lpprof.profile() as outer:
            pass
        HighsBackend().solve(_tiny_lp())
        assert outer.solves == 0

    def test_collect_stack_observes_all(self):
        seen = []
        with lpprof.collect(seen.append):
            with lpprof.profile() as prof:
                HighsBackend().solve(_tiny_lp())
        assert len(seen) == 1
        assert prof.solves == 1  # nested collectors both observe


@pytest.mark.parametrize("backend", [HighsBackend(), SimplexBackend()])
class TestBackendProfiles:
    def test_record_fields(self, backend):
        with lpprof.profile() as prof:
            result = backend.solve(_tiny_lp("my-model"))
        (rec,) = prof.records
        assert rec.name == "my-model"
        assert rec.backend == backend.name
        assert rec.rows_ub == 1 and rec.rows_eq == 0 and rec.cols == 2
        assert rec.nnz == 2
        assert rec.wall_seconds > 0
        assert rec.status == "optimal"
        assert rec.iterations == result.iterations
        assert result.objective == pytest.approx(2.0)

    def test_rows_property(self, backend):
        with lpprof.profile() as prof:
            backend.solve(_tiny_lp())
        assert prof.records[0].rows == 1

    def test_to_dict_round_trip(self, backend):
        with lpprof.profile() as prof:
            backend.solve(_tiny_lp())
        d = prof.records[0].to_dict()
        for key in ("backend", "rows_ub", "rows_eq", "cols", "nnz", "wall_s",
                    "iterations", "status"):
            assert key in d


class TestSimplexPresolve:
    def test_presolve_reports_single_record(self):
        # fixed variable: x == 2 forces a presolve reduction
        lp = LinearProgram("presolved")
        x = lp.new_var("x", lower=2.0, upper=2.0)
        y = lp.new_var("y")
        lp.add_constraint(x + y, Sense.GE, 3.0)
        lp.set_objective(x + y)
        with lpprof.profile() as prof:
            result = SimplexBackend(presolve=True).solve(lp)
        assert result.status.value == "optimal"
        (rec,) = prof.records  # presolve + inner solve = ONE record
        assert rec.presolve_applied is True
        assert rec.presolve_fixed_vars >= 1


class TestLPProfileSummary:
    def test_aggregates(self):
        with lpprof.profile() as prof:
            HighsBackend().solve(_tiny_lp())
            SimplexBackend().solve(_tiny_lp())
        assert prof.solves == 2
        assert prof.wall_seconds > 0
        assert prof.by_status() == {"optimal": 2}
