"""Unit tests for the metrics registry."""

import json

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero(self):
        c = Counter("hits")
        assert c.value() == 0.0

    def test_inc_accumulates(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_rejects_negative(self):
        c = Counter("hits")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_labels_are_independent_series(self):
        c = Counter("reads")
        c.inc(10, machine=0)
        c.inc(5, machine=1)
        assert c.value(machine=0) == 10
        assert c.value(machine=1) == 5
        assert c.total() == 15

    def test_label_order_irrelevant(self):
        c = Counter("x")
        c.inc(1, a=1, b=2)
        assert c.value(b=2, a=1) == 1

    def test_set_total_forces_value(self):
        c = Counter("x")
        c.inc(3)
        c.set_total(1.0)
        assert c.value() == 1.0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(4.0)
        g.add(-1.5)
        assert g.value() == 2.5


class TestHistogram:
    def test_observations_bucketed(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == 55.5
        assert h.mean() == pytest.approx(18.5)

    def test_overflow_bucket(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(99.0)
        series = h.dump()["series"][0]["value"]
        assert series["buckets"][-1] == {"le": "+inf", "count": 1}

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))

    def test_labelled_series(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.1, backend="highs")
        h.observe(0.2, backend="simplex")
        assert h.count(backend="highs") == 1
        assert h.mean(backend="simplex") == pytest.approx(0.2)


class TestRegistry:
    def test_memoised_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_dump_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(1, zone="z1")
        reg.gauge("a").set(2)
        dump = reg.dump()
        assert [m["name"] for m in dump] == ["a", "b"]
        json.dumps(dump)  # must not raise

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        path = tmp_path / "m.json"
        reg.write_json(path)
        loaded = json.loads(path.read_text())
        assert loaded[0]["name"] == "hits"
        assert loaded[0]["series"][0]["value"] == 3

    def test_contains_and_len(self):
        reg = MetricsRegistry()
        reg.counter("a")
        assert "a" in reg and "b" not in reg
        assert len(reg) == 1


class TestMergeFrom:
    def test_counters_and_gauges_accumulate_with_extra_labels(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("hits").inc(2, kind="solver")
        b.gauge("makespan").set(5.0)
        a.merge_from(b, seed=0)
        a.merge_from(b, seed=1)
        assert a.counter("hits").value(kind="solver", seed=0) == 2
        assert a.counter("hits").total() == 4
        assert a.gauge("makespan").value(seed=1) == 5.0

    def test_histograms_merge_bucket_by_bucket(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("lat").observe(0.01)
        b.histogram("lat").observe(2.0)
        a.histogram("lat").observe(0.01)
        a.merge_from(b)
        assert a.histogram("lat").count() == 3
        assert a.histogram("lat").sum() == pytest.approx(2.02)

    def test_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 2.0))
        b.histogram("lat", buckets=(5.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge_from(b)


class TestCurrentRegistry:
    def test_default_none(self):
        assert current_registry() is None

    def test_use_registry_installs_and_restores(self):
        reg = MetricsRegistry()
        with use_registry(reg) as installed:
            assert installed is reg
            assert current_registry() is reg
        assert current_registry() is None


class TestHistogramQuantile:
    def test_empty_series_is_zero(self):
        assert Histogram("lat").quantile(0.5) == 0.0

    def test_q_out_of_range_raises(self):
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_interpolates_inside_a_bucket(self):
        # 100 observations spread over (1, 2]: rank q*100 interpolates
        # linearly between the bucket bounds
        h = Histogram("lat", buckets=(1.0, 2.0))
        for _ in range(100):
            h.observe(1.5)
        assert h.quantile(0.5) == pytest.approx(1.5, abs=0.02)

    def test_extremes_clamp_to_observed_envelope(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        for v in (1.2, 1.4, 1.8):
            h.observe(v)
        assert h.quantile(0.0) >= 1.2
        assert h.quantile(1.0) <= 1.8

    def test_overflow_bucket_returns_observed_max(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        h.observe(37.0)
        assert h.quantile(0.99) == 37.0

    def test_first_bucket_interpolates_from_min(self):
        h = Histogram("lat", buckets=(10.0,))
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        q = h.quantile(0.5)
        assert 2.0 <= q <= 10.0

    def test_labelled_series_independent(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5, backend="a")
        h.observe(5.0, backend="b")
        assert h.quantile(0.5, backend="a") <= 1.0
        assert h.quantile(0.5, backend="b") >= 1.0


class TestSnapshots:
    def test_scalar_snapshot_is_a_copy(self):
        c = Counter("hits")
        c.inc(2, zone="z")
        snap = c.snapshot()
        c.inc(5, zone="z")
        assert list(snap.values()) == [2]

    def test_registry_snapshot_values(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3, k="v")
        reg.gauge("b").set(1.5)
        reg.histogram("h").observe(0.01)
        snap = reg.snapshot()
        assert snap.value("a", k="v") == 3
        assert snap.value("b") == 1.5
        assert snap.value("missing") == 0.0
        (hist,) = [m for m in snap.metrics if m.kind == "histogram"]
        assert hist.buckets is not None
        (series,) = hist.series.values()
        assert series["count"] == 1

    def test_delta_since_previous(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        before = reg.snapshot()
        reg.counter("a").inc(2)
        reg.gauge("g").set(-1.0)
        after = reg.snapshot()
        delta = after.delta(before)
        assert delta[("a", ())] == 2
        assert delta[("g", ())] == -1.0

    def test_delta_against_none_is_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        assert reg.snapshot().delta(None) == {("a", ()): 3}


class TestAtomicDump:
    def test_overwrites_existing_dump_atomically(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").inc(1)
        path = tmp_path / "m.json"
        reg.write_json(path)
        reg.counter("hits").inc(1)
        reg.write_json(path)
        loaded = json.loads(path.read_text())
        assert loaded[0]["series"][0]["value"] == 2

    def test_no_tmp_file_left_behind(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").inc(1)
        path = tmp_path / "m.json"
        reg.write_json(path)
        assert not (tmp_path / "m.json.tmp").exists()
