"""The live telemetry plane: rendering, endpoints, and the determinism contract.

Endpoint tests bind an ephemeral port (``port=0``) on 127.0.0.1 and talk
HTTP through urllib; the determinism tests re-run the golden-trace workload
with the plane attached and require byte-identical traces and ledgers.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.ledger import DollarLedger
from repro.obs.live import (
    PROMETHEUS_CONTENT_TYPE,
    LiveTelemetryPlane,
    LiveTelemetryServer,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer

from tests.obs.test_sim_tracing import normalise, run_once


def _get(url, path):
    with urllib.request.urlopen(f"{url}{path}", timeout=5.0) as resp:
        return resp.status, dict(resp.headers), resp.read().decode("utf-8")


class TestRenderPrometheus:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("hits", "how many").inc(3, zone="z1")
        reg.gauge("depth").set(1.5)
        text = render_prometheus(reg.snapshot())
        assert "# HELP hits how many" in text
        assert "# TYPE hits counter" in text
        assert 'hits{zone="z1"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 1.5" in text
        assert text.endswith("\n")

    def test_metric_and_series_order_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(1)
        reg.counter("a").inc(1, x="2")
        reg.counter("a").inc(1, x="1")
        text = render_prometheus(reg.snapshot())
        assert text.index('a{x="1"}') < text.index('a{x="2"}') < text.index("b 1")

    def test_histogram_buckets_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        text = render_prometheus(reg.snapshot())
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="10"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_sum 56.2" in text
        assert "lat_count 4" in text

    def test_label_and_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", 'say "hi"\nthere').inc(1, path='a\\b"c')
        text = render_prometheus(reg.snapshot())
        assert '# HELP c say "hi"\\nthere' in text
        assert 'c{path="a\\\\b\\"c"} 1' in text

    def test_empty_registry_is_empty_body(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""


class TestPlaneViews:
    def test_metrics_text_appends_plane_internals_without_touching_registry(self):
        plane = LiveTelemetryPlane()
        plane.registry.counter("hits").inc(2)
        text = plane.metrics_text()
        assert "hits 2" in text
        assert "telemetry_scrapes_total 1" in text
        assert "trace_tap_dropped 0" in text
        # scrape bookkeeping never lands in the run registry
        assert "telemetry_scrapes_total" not in [m["name"] for m in plane.registry.dump()]
        assert "telemetry_scrapes_total 2" in plane.metrics_text()

    def test_health_ok_until_drift_or_drops(self):
        from repro.obs.ledger import RollingLedger

        plane = LiveTelemetryPlane()
        assert plane.health()["ok"] is True
        rolling = RollingLedger()
        plane.set_rolling_ledger(rolling)
        assert plane.health()["ledger"]["ok"] is True
        rolling.reconcile(7.0)  # drift: rolling total is 0, expected 7
        health = plane.health()
        assert health["ok"] is False
        assert health["ledger"]["drift_events"] == 1

    def test_health_folds_in_status_provider(self):
        plane = LiveTelemetryPlane()
        plane.set_status_provider(lambda: {"state": "degraded", "slo": {"misses": 3}})
        health = plane.health()
        # a degraded *service* is not unhealthy *telemetry*
        assert health["ok"] is True
        assert health["service"]["state"] == "degraded"
        assert plane.slo() == {"misses": 3}

    def test_statusz_groups_label_sets_and_deltas(self):
        plane = LiveTelemetryPlane()
        plane.registry.counter("reads").inc(1, machine="0")
        plane.registry.counter("reads").inc(2, machine="1")
        first = plane.statusz()
        assert first["metrics"]["reads"] == {"machine=0": 1, "machine=1": 2}
        plane.registry.counter("reads").inc(5, machine="0")
        second = plane.statusz()
        (change,) = [d for d in second["delta"] if d["labels"] == {"machine": "0"}]
        assert change["change"] == 5


class TestEndpoints:
    @pytest.fixture()
    def server(self):
        plane = LiveTelemetryPlane()
        plane.registry.counter("hits").inc(1)
        tracer = Tracer()
        plane.attach_tracer(tracer)
        for i in range(3):
            tracer.event("test", "ping", ts=float(i), index=i)
        with LiveTelemetryServer(plane, port=0) as srv:
            yield srv

    def test_metrics_endpoint(self, server):
        status, headers, body = _get(server.url, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert "hits 1" in body
        assert "trace_tap_records_total 3" in body

    def test_healthz_endpoint(self, server):
        status, _, body = _get(server.url, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["ok"] is True
        assert payload["tap"]["seq"] == 3

    def test_healthz_503_on_drift(self, server):
        from repro.obs.ledger import RollingLedger

        rolling = RollingLedger()
        rolling.reconcile(1.0)
        server.plane.set_rolling_ledger(rolling)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url, "/healthz")
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["ok"] is False

    def test_slo_and_statusz_endpoints(self, server):
        server.plane.set_status_provider(lambda: {"slo": {"miss_rate": 0.0}})
        status, _, body = _get(server.url, "/slo")
        assert status == 200 and json.loads(body) == {"miss_rate": 0.0}
        status, _, body = _get(server.url, "/statusz")
        payload = json.loads(body)
        assert status == 200
        assert payload["metrics"]["hits"] == {"": 1}
        assert payload["health"]["ok"] is True

    def test_trace_tail_and_cursor(self, server):
        status, headers, body = _get(server.url, "/trace?limit=2")
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        records = [json.loads(line) for line in body.splitlines()]
        assert [r["index"] for r in records] == [1, 2]
        assert headers["X-Trace-Next-Cursor"] == "3"
        assert headers["X-Trace-Lost"] == "0"
        # resume from the cursor: nothing new yet
        status, headers, body = _get(server.url, "/trace?since=3")
        assert body == "" and headers["X-Trace-Next-Cursor"] == "3"

    def test_trace_sse_bounded_stream(self, server):
        status, headers, body = _get(server.url, "/trace/sse?max_events=2")
        assert status == 200
        assert headers["Content-Type"] == "text/event-stream"
        frames = [f for f in body.split("\n\n") if f.startswith("data: ")]
        assert len(frames) == 2
        assert json.loads(frames[0][len("data: "):])["name"] == "ping"

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url, "/nope")
        assert excinfo.value.code == 404

    def test_bad_int_param_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url, "/trace?limit=banana")
        assert excinfo.value.code == 400


class TestServerLifecycle:
    def test_ephemeral_port_and_context_manager(self):
        plane = LiveTelemetryPlane()
        with LiveTelemetryServer(plane, port=0) as server:
            assert server.port > 0
            assert server.url.startswith("http://127.0.0.1:")
        # after stop the port no longer answers
        with pytest.raises(Exception):
            _get(f"http://127.0.0.1:{server.port}", "/healthz")

    def test_port_clash_raises_telemetry_error(self):
        from repro.obs.live import TelemetryError

        plane = LiveTelemetryPlane()
        with LiveTelemetryServer(plane, port=0) as server:
            import socket

            probe = socket.socket()
            try:
                probe.bind(("127.0.0.1", 0))
                taken = probe.getsockname()[1]
                with pytest.raises(TelemetryError):
                    LiveTelemetryServer(LiveTelemetryPlane(), port=taken)
            finally:
                probe.close()
            assert server.port  # original still alive


class TestDeterminismContract:
    """The plane may observe a run; it must never perturb it."""

    def test_trace_identical_with_plane_attached_and_scraping(self, tmp_path):
        from repro.obs.export import load_jsonl

        bare_path = tmp_path / "bare.jsonl"
        with Tracer.to_path(bare_path) as tracer:
            bare = run_once(tracer=tracer)

        plane = LiveTelemetryPlane()
        observed_path = tmp_path / "observed.jsonl"
        with Tracer.to_path(observed_path) as tracer:
            plane.attach_tracer(tracer)
            with LiveTelemetryServer(plane, port=0) as server:
                observed = run_once(tracer=tracer)
                # scrape mid-lifetime to prove scraping is side-effect free
                _get(server.url, "/metrics")
                _get(server.url, "/healthz")

        # identical up to wall-clock jitter (the golden-trace contract)
        assert normalise(load_jsonl(observed_path)) == normalise(load_jsonl(bare_path))
        assert observed.metrics.total_cost == bare.metrics.total_cost
        assert observed.metrics.makespan == bare.metrics.makespan
        assert plane.tap.dropped == 0
        assert plane.tap.seq == len(bare_path.read_text().splitlines())

    def test_normalised_trace_matches_plane_off_run(self, tmp_path):
        from repro.obs.export import load_jsonl

        plain_path = tmp_path / "plain.jsonl"
        with Tracer.to_path(plain_path) as tracer:
            run_once(tracer=tracer)

        plane = LiveTelemetryPlane(tap_maxlen=65536)
        tapped_path = tmp_path / "tapped.jsonl"
        with Tracer.to_path(tapped_path) as tracer:
            plane.attach_tracer(tracer)
            run_once(tracer=tracer)

        assert normalise(load_jsonl(tapped_path)) == normalise(load_jsonl(plain_path))

    def test_ledger_identical_with_plane_attached(self):
        # both runs traced (tracing links charges to spans); the only
        # difference is the tap hanging off the second tracer
        bare = run_once(tracer=Tracer())
        plane = LiveTelemetryPlane()
        tracer = Tracer()
        plane.attach_tracer(tracer)
        observed = run_once(tracer=tracer)
        assert (
            DollarLedger.from_cost_ledger(observed.metrics.ledger).cells
            == DollarLedger.from_cost_ledger(bare.metrics.ledger).cells
        )


class TestTopRendering:
    def _status(self, epoch=7, cost=1.25, reconciliations=7):
        return {
            "metrics": {
                "service_epochs_total": {"": float(epoch)},
                "epoch_deadline_misses_total": {"": 0.0},
            },
            "delta": [],
            "health": {
                "ok": True,
                "tap": {"seq": 42, "dropped": 0},
                "ledger": {
                    "ok": True,
                    "rolling_total": cost,
                    "reconciliations": reconciliations,
                    "drift_events": 0,
                },
                "service": {
                    "state": "healthy",
                    "epoch": epoch,
                    "clock": 60.0 * epoch,
                    "backlog": 2,
                    "admission": {"submitted": 5, "admitted": 4, "shed": {"backlog": 1}},
                    "slo": {
                        "window_size": epoch,
                        "window_epochs": 128,
                        "miss_rate": 0.25,
                        "budget_remaining": 0.5,
                        "lag_quantiles_s": {"p50": 0.001, "p95": 0.002, "p99": 0.003},
                    },
                },
            },
        }

    def test_first_frame_absolute_values(self):
        from repro.obs.top import render_status

        frame = render_status(self._status())
        assert "repro top" in frame
        assert "healthy" in frame
        assert "telemetry OK" in frame
        assert "$1.2500" in frame
        assert "4/5 admitted" in frame
        assert "dropped 0" in frame
        assert "miss rate" in frame and "25.0%" in frame
        assert "solve lag p95" in frame and "2.00 ms" in frame

    def test_rates_from_previous_frame(self):
        from repro.obs.top import render_status

        previous = self._status(epoch=7, cost=1.0)
        current = self._status(epoch=9, cost=1.5)
        frame = render_status(current, previous=previous, interval=2.0)
        assert "ticks 1.00/s" in frame
        assert "$0.2500/s" in frame

    def test_alarm_states_render_loud(self):
        from repro.obs.top import render_status

        status = self._status()
        status["health"]["ok"] = False
        status["health"]["tap"]["dropped"] = 3
        status["health"]["ledger"]["ok"] = False
        status["health"]["ledger"]["drift_events"] = 2
        frame = render_status(status)
        assert "TELEMETRY NOT OK" in frame
        assert "DROPPED 3" in frame
        assert "DRIFT x2" in frame

    def test_meter_bars(self):
        from repro.experiments.report import meter

        assert meter(0.0, width=8) == "[........]"
        assert meter(0.5, width=8) == "[####....]"
        assert meter(1.0, width=8) == "[########]"
        assert meter(7.5, width=8) == "[########]"  # clamped
        assert meter(-1.0, width=8) == "[........]"

    def test_run_top_unreachable_returns_2(self):
        import io

        from repro.obs.top import run_top

        # a port nothing listens on: connection refused immediately
        code = run_top("http://127.0.0.1:9", iterations=1, out=io.StringIO())
        assert code == 2

    def test_run_top_against_live_server(self):
        import io

        from repro.obs.top import run_top

        plane = LiveTelemetryPlane()
        plane.registry.counter("service_epochs_total").inc(3)
        plane.set_status_provider(lambda: {"state": "healthy", "epoch": 3})
        with LiveTelemetryServer(plane, port=0) as server:
            out = io.StringIO()
            code = run_top(server.url, interval=0.01, iterations=2, clear=False, out=out)
        assert code == 0
        assert out.getvalue().count("repro top") == 2
