"""Tests for the trace report tables."""

from repro.obs.export import write_jsonl
from repro.obs.report import epoch_table, machine_table, render, solve_table

TRACE = [
    {"type": "span", "cat": "epoch", "name": "scheduler-epoch", "ts": 0.0,
     "dur": 600.0, "index": 0, "queued": 10, "planned": 8, "parked": 2,
     "cost_delta": 1.25, "moved_mb": 640.0, "lp_solves": 1, "lp_wall_s": 0.02},
    {"type": "lp_solve", "cat": "lp", "name": "co-online", "ts": 0.0,
     "backend": "highs", "rows_ub": 10, "rows_eq": 2, "cols": 30, "nnz": 90,
     "wall_s": 0.02, "iterations": 12, "status": "optimal",
     "presolve_fixed_vars": 1, "presolve_dropped_rows": 0,
     "presolve_applied": True},
    {"type": "span", "cat": "task", "name": "attempt", "ts": 1.0, "dur": 9.0,
     "machine": 0, "job": 0, "reduce": False},
    {"type": "span", "cat": "task", "name": "attempt", "ts": 2.0, "dur": 5.0,
     "machine": 1, "job": 0, "reduce": True},
    {"type": "event", "cat": "task", "name": "kill", "ts": 3.0, "machine": 0,
     "job": 0, "detail": "killed-speculative"},
    {"type": "event", "cat": "transfer", "name": "read", "ts": 1.0,
     "machine": 0, "store": 1, "mb": 64.0, "tier": "remote"},
    {"type": "event", "cat": "transfer", "name": "shuffle", "ts": 2.0,
     "machine": 1, "mb": 16.0, "tier": "shuffle"},
]


class TestEpochTable:
    def test_renders_columns(self):
        out = epoch_table(TRACE)
        assert "Per-epoch" in out
        assert "1.2500" in out  # cost delta
        assert "640" in out

    def test_empty(self):
        assert "no epoch spans" in epoch_table([])


class TestSolveTable:
    def test_renders_shape_and_total(self):
        out = solve_table(TRACE)
        assert "co-online" in out and "highs" in out
        assert "12" in out  # rows = rows_ub + rows_eq
        assert "total: 1 solves" in out

    def test_limit_truncates(self):
        many = [dict(TRACE[1], ts=float(i)) for i in range(5)]
        out = solve_table(many, limit=2)
        assert "first 2 of 5" in out
        assert "total: 5 solves" in out

    def test_empty(self):
        assert "no LP solve records" in solve_table([])


class TestMachineTable:
    def test_aggregates_by_machine(self):
        out = machine_table(TRACE)
        lines = [l for l in out.splitlines() if l and l[0].isdigit()]
        assert len(lines) == 2  # machines 0 and 1
        m0 = lines[0].split("|")
        assert m0[1].strip() == "1"  # one map attempt
        assert m0[3].strip() == "1"  # one kill

    def test_remote_mb_excludes_local(self):
        trace = TRACE + [
            {"type": "event", "cat": "transfer", "name": "read", "ts": 5.0,
             "machine": 0, "store": 0, "mb": 100.0, "tier": "local"},
        ]
        out = machine_table(trace)
        row0 = next(l for l in out.splitlines() if l.startswith("0"))
        cols = [c.strip() for c in row0.split("|")]
        assert cols[5] == "164" and cols[6] == "64"


class TestRender:
    def test_full_report(self, tmp_path):
        path = write_jsonl(TRACE, tmp_path / "t.jsonl")
        out = render(path)
        for section in ("records", "Per-epoch", "Per-solve", "Per-machine"):
            assert section in out
