"""Critical-path tests: golden decomposition and the tiling invariant.

The golden trace (tests/obs/golden_trace.jsonl) freezes the tiny
2-machine/2-job LiPS run, so the critical path over it is a fixed point:
the binding chain waits for the t=60 scheduling epoch, reads, computes,
and defines the 92.96s makespan.
"""

import math
from pathlib import Path

import pytest

from repro.obs.critpath import (
    ARRIVAL_WAIT,
    COMPUTE,
    EPOCH_WAIT,
    RUNTIME_TRANSFER,
    CriticalPath,
    CritPathError,
    Segment,
    critical_path,
)
from repro.obs.export import load_jsonl
from repro.obs.trace import Tracer

from tests.obs.test_sim_tracing import run_once

GOLDEN = Path(__file__).parent / "golden_trace.jsonl"


@pytest.fixture(scope="module")
def golden_path():
    return critical_path(load_jsonl(GOLDEN))


class TestGoldenPath:
    def test_segments_sum_to_makespan_exactly(self, golden_path):
        residual = golden_path.check(tol=1e-9)
        assert abs(residual) <= 1e-9
        assert golden_path.makespan == pytest.approx(92.96, abs=0.01)

    def test_segments_are_contiguous_from_zero(self, golden_path):
        assert golden_path.segments[0].start == 0.0
        for prev, nxt in zip(golden_path.segments, golden_path.segments[1:]):
            assert nxt.start == pytest.approx(prev.end, abs=1e-9)
        assert golden_path.segments[-1].end == pytest.approx(
            golden_path.makespan, abs=1e-9
        )

    def test_decomposition_kinds_and_magnitudes(self, golden_path):
        by_kind = golden_path.by_kind()
        # binding chain: submitted at t=0, waits out the t=60 epoch, then runs
        assert by_kind[EPOCH_WAIT] == pytest.approx(60.0, abs=0.01)
        assert ARRIVAL_WAIT not in by_kind
        assert by_kind[COMPUTE] == pytest.approx(32.8, abs=0.1)
        assert by_kind.get(RUNTIME_TRANSFER, 0.0) < 1.0
        assert math.fsum(by_kind.values()) == pytest.approx(
            golden_path.makespan, abs=1e-9
        )

    def test_render_mentions_kinds_and_makespan(self, golden_path):
        text = golden_path.render()
        assert "critical path: makespan 92.96s" in text
        assert EPOCH_WAIT in text and COMPUTE in text


class TestLiveTrace:
    def test_solver_wall_time_surfaced_separately(self):
        tracer = Tracer()
        res = run_once(tracer=tracer)
        path = critical_path(tracer.records)
        # real wall seconds, reported but never a timeline segment
        assert 0.0 < path.solver_wall_s < 10.0
        assert path.makespan == pytest.approx(res.metrics.makespan)
        assert not any(s.kind == "lp" for s in path.segments)


class TestInvariantEnforcement:
    def test_empty_trace_yields_empty_path(self):
        path = critical_path([])
        assert path.segments == [] and path.makespan == 0.0
        assert path.check() == 0.0

    def test_check_rejects_sum_mismatch(self):
        path = CriticalPath(
            segments=[Segment(0.0, 5.0, COMPUTE)], makespan=10.0
        )
        with pytest.raises(CritPathError, match="residual"):
            path.check()

    def test_check_rejects_gap(self):
        path = CriticalPath(
            segments=[Segment(0.0, 4.0, COMPUTE), Segment(6.0, 12.0, COMPUTE)],
            makespan=10.0,
        )
        with pytest.raises(CritPathError, match="gap"):
            path.check()
