"""Tests for trace exporters: JSONL round-trip, Chrome format, summary."""

import json

from repro.obs.export import (
    EPOCH_LANE,
    LP_LANE,
    MISC_LANE,
    from_chrome_trace,
    load_jsonl,
    summary,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

RECORDS = [
    {"type": "event", "cat": "job", "name": "submit", "ts": 0.0, "job": 0},
    {"type": "span", "cat": "task", "name": "attempt", "ts": 1.0, "dur": 2.0,
     "machine": 3, "job": 0},
    {"type": "span", "cat": "epoch", "name": "scheduler-epoch", "ts": 0.0,
     "dur": 600.0, "index": 0},
    {"type": "lp_solve", "cat": "lp", "name": "co-online", "ts": 600.0,
     "backend": "highs", "rows_ub": 5, "rows_eq": 2, "cols": 9, "nnz": 20,
     "wall_s": 0.01, "iterations": 7, "status": "optimal",
     "presolve_fixed_vars": 0, "presolve_dropped_rows": 0,
     "presolve_applied": False},
]


class TestJsonl:
    def test_write_load_round_trip(self, tmp_path):
        path = write_jsonl(RECORDS, tmp_path / "t.jsonl")
        assert load_jsonl(path) == RECORDS


class TestChromeTrace:
    def test_lane_assignment(self):
        chrome = to_chrome_trace(RECORDS)
        events = [e for e in chrome["traceEvents"] if e["ph"] != "M"]
        tids = [e["tid"] for e in events]
        assert tids == [MISC_LANE, 3, EPOCH_LANE, LP_LANE]

    def test_thread_names(self):
        chrome = to_chrome_trace(RECORDS)
        meta = {e["tid"]: e["args"]["name"]
                for e in chrome["traceEvents"] if e["ph"] == "M"}
        assert meta[3] == "machine 3"
        assert meta[EPOCH_LANE] == "epochs"
        assert meta[LP_LANE] == "lp solves"

    def test_span_duration_microseconds(self):
        chrome = to_chrome_trace(RECORDS)
        attempt = next(
            e for e in chrome["traceEvents"] if e["name"] == "task:attempt"
        )
        assert attempt["ph"] == "X"
        assert attempt["ts"] == 1.0e6 and attempt["dur"] == 2.0e6

    def test_lp_solve_duration_is_wall_time(self):
        chrome = to_chrome_trace(RECORDS)
        lp = next(e for e in chrome["traceEvents"] if e.get("cat") == "lp")
        assert lp["dur"] == 0.01e6

    def test_round_trip_preserves_envelope_and_args(self):
        back = from_chrome_trace(to_chrome_trace(RECORDS))
        assert back == RECORDS

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = write_chrome_trace(RECORDS, tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded


CAUSAL_RECORDS = [
    {"type": "span", "cat": "epoch", "name": "scheduler-epoch", "ts": 0.0,
     "dur": 60.0, "index": 0, "span_id": 1},
    {"type": "lp_solve", "cat": "lp", "name": "co-online", "ts": 60.0,
     "backend": "highs", "wall_s": 0.01, "iterations": 7, "status": "optimal",
     "span_id": 2, "parent": 1},
    {"type": "span", "cat": "transfer", "name": "move", "ts": 60.0, "dur": 5.0,
     "block": 0, "src": 0, "dest": 1, "mb": 64.0, "span_id": 3, "parent": 1},
    {"type": "span", "cat": "task", "name": "attempt", "ts": 65.0, "dur": 10.0,
     "machine": 1, "job": 0, "span_id": 4, "parent": 1, "links": [2, 3]},
]


class TestCausalFlows:
    def test_round_trip_preserves_causal_identity(self):
        back = from_chrome_trace(to_chrome_trace(CAUSAL_RECORDS))
        assert back == CAUSAL_RECORDS

    def test_flow_arrows_per_causal_edge(self):
        chrome = to_chrome_trace(CAUSAL_RECORDS)
        starts = [e for e in chrome["traceEvents"] if e["ph"] == "s"]
        ends = [e for e in chrome["traceEvents"] if e["ph"] == "f"]
        # edges: lp->epoch, move->epoch, attempt->epoch, attempt->lp, attempt->move
        assert len(starts) == len(ends) == 5
        assert {e["id"] for e in starts} == {e["id"] for e in ends}

    def test_flow_arrows_join_source_and_target_lanes(self):
        chrome = to_chrome_trace(CAUSAL_RECORDS)
        by_id = {}
        for e in chrome["traceEvents"]:
            if e["ph"] in ("s", "f"):
                by_id.setdefault(e["id"], {})[e["ph"]] = e
        # the attempt->move edge starts on the move's lane, ends on machine 1
        lanes = {(pair["s"]["tid"], pair["f"]["tid"]) for pair in by_id.values()}
        assert (MISC_LANE, 1) in lanes  # move (no machine attr) -> attempt

    def test_dangling_link_emits_no_flow(self):
        records = [dict(CAUSAL_RECORDS[-1], links=[99])]
        chrome = to_chrome_trace(records)
        assert not [e for e in chrome["traceEvents"] if e["ph"] in ("s", "f")]


class TestSummary:
    def test_mentions_counts(self):
        text = summary(RECORDS)
        assert "4 records" in text
        assert "lp solves: 1" in text
        assert "task attempts: 1" in text

    def test_horizon_is_span_end(self):
        text = summary(RECORDS)
        assert "600.0 simulated s" in text
