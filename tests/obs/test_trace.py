"""Unit tests for the structured trace emitter."""

import json

import numpy as np

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    use_tracer,
)


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.wants("task") is False

    def test_all_ops_are_noops(self):
        t = NullTracer()
        t.event("task", "launch", 0.0, machine=1)
        t.span("task", "attempt", 0.0, 1.0)
        t.close()


class TestTracer:
    def test_event_record_shape(self):
        t = Tracer()
        t.event("task", "launch", 12.5, machine=3, job=0)
        (rec,) = t.records
        assert rec == {
            "type": "event", "cat": "task", "name": "launch", "ts": 12.5,
            "machine": 3, "job": 0,
        }

    def test_span_record_shape(self):
        t = Tracer()
        t.span("task", "attempt", 1.0, 2.5, machine=0)
        (rec,) = t.records
        assert rec["type"] == "span" and rec["dur"] == 2.5

    def test_dispatch_excluded_by_default(self):
        t = Tracer()
        assert not t.wants("dispatch")
        t.event("dispatch", "cb", 0.0)
        assert t.records == []

    def test_category_allowlist(self):
        t = Tracer(categories=["lp", "dispatch"])
        assert t.wants("dispatch") and t.wants("lp")
        assert not t.wants("task")
        t.event("task", "launch", 0.0)
        t.event("dispatch", "cb", 1.0)
        assert len(t.records) == 1

    def test_to_path_streams_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        t = Tracer.to_path(path)
        t.event("task", "launch", 0.0, machine=1)
        t.span("epoch", "scheduler-epoch", 0.0, 600.0, index=0)
        t.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["type"] for r in lines] == ["event", "span"]
        assert t.records == []  # streaming tracers keep nothing in memory

    def test_numpy_scalars_serialise(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer.to_path(path) as t:
            t.event("task", "launch", 0.0, machine=np.int64(3), mb=np.float64(1.5))
        rec = json.loads(path.read_text())
        assert rec["machine"] == 3 and rec["mb"] == 1.5

    def test_lp_solve_record(self):
        from repro.obs.lpprof import LPSolveRecord

        t = Tracer()
        rec = LPSolveRecord(
            name="co-online", backend="highs", rows_ub=5, rows_eq=2, cols=9,
            nnz=20, wall_seconds=0.01, iterations=7, status="optimal",
        )
        t.lp_solve(rec, ts=600.0)
        (row,) = t.records
        assert row["type"] == "lp_solve" and row["cat"] == "lp"
        assert row["name"] == "co-online" and row["ts"] == 600.0
        assert row["rows_ub"] == 5 and row["wall_s"] == 0.01
        assert row["status"] == "optimal"


class TestSpanIdentity:
    def test_span_ids_are_sequential_per_tracer(self):
        t = Tracer()
        assert [t.new_span_id() for _ in range(3)] == [1, 2, 3]
        assert Tracer().new_span_id() == 1  # fresh tracer, fresh counter

    def test_null_tracer_allocates_nothing(self):
        assert NullTracer().new_span_id() is None


class TestLifecycle:
    def test_context_manager_closes_and_counts_drops(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer.to_path(path) as t:
            t.event("task", "launch", 0.0, machine=1)
        assert t.closed
        # emitting after close is tolerated but counted, never written
        t.event("task", "launch", 1.0, machine=1)
        t.span("task", "attempt", 1.0, 2.0)
        assert t.dropped_after_close == 2
        assert len(path.read_text().splitlines()) == 1

    def test_close_is_idempotent(self):
        t = Tracer()
        t.close()
        t.close()
        assert t.closed and t.dropped_after_close == 0

    def test_context_manager_closes_on_exception(self, tmp_path):
        path = tmp_path / "t.jsonl"
        try:
            with Tracer.to_path(path) as t:
                t.event("task", "launch", 0.0)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert t.closed
        assert json.loads(path.read_text())["name"] == "launch"


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        t = Tracer()
        with use_tracer(t):
            assert current_tracer() is t
        assert current_tracer() is NULL_TRACER
