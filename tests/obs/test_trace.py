"""Unit tests for the structured trace emitter."""

import json

import numpy as np

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    TraceTap,
    current_tracer,
    use_tracer,
)


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.wants("task") is False

    def test_all_ops_are_noops(self):
        t = NullTracer()
        t.event("task", "launch", 0.0, machine=1)
        t.span("task", "attempt", 0.0, 1.0)
        t.close()


class TestTracer:
    def test_event_record_shape(self):
        t = Tracer()
        t.event("task", "launch", 12.5, machine=3, job=0)
        (rec,) = t.records
        assert rec == {
            "type": "event", "cat": "task", "name": "launch", "ts": 12.5,
            "machine": 3, "job": 0,
        }

    def test_span_record_shape(self):
        t = Tracer()
        t.span("task", "attempt", 1.0, 2.5, machine=0)
        (rec,) = t.records
        assert rec["type"] == "span" and rec["dur"] == 2.5

    def test_dispatch_excluded_by_default(self):
        t = Tracer()
        assert not t.wants("dispatch")
        t.event("dispatch", "cb", 0.0)
        assert t.records == []

    def test_category_allowlist(self):
        t = Tracer(categories=["lp", "dispatch"])
        assert t.wants("dispatch") and t.wants("lp")
        assert not t.wants("task")
        t.event("task", "launch", 0.0)
        t.event("dispatch", "cb", 1.0)
        assert len(t.records) == 1

    def test_to_path_streams_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        t = Tracer.to_path(path)
        t.event("task", "launch", 0.0, machine=1)
        t.span("epoch", "scheduler-epoch", 0.0, 600.0, index=0)
        t.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["type"] for r in lines] == ["event", "span"]
        assert t.records == []  # streaming tracers keep nothing in memory

    def test_numpy_scalars_serialise(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer.to_path(path) as t:
            t.event("task", "launch", 0.0, machine=np.int64(3), mb=np.float64(1.5))
        rec = json.loads(path.read_text())
        assert rec["machine"] == 3 and rec["mb"] == 1.5

    def test_lp_solve_record(self):
        from repro.obs.lpprof import LPSolveRecord

        t = Tracer()
        rec = LPSolveRecord(
            name="co-online", backend="highs", rows_ub=5, rows_eq=2, cols=9,
            nnz=20, wall_seconds=0.01, iterations=7, status="optimal",
        )
        t.lp_solve(rec, ts=600.0)
        (row,) = t.records
        assert row["type"] == "lp_solve" and row["cat"] == "lp"
        assert row["name"] == "co-online" and row["ts"] == 600.0
        assert row["rows_ub"] == 5 and row["wall_s"] == 0.01
        assert row["status"] == "optimal"


class TestSpanIdentity:
    def test_span_ids_are_sequential_per_tracer(self):
        t = Tracer()
        assert [t.new_span_id() for _ in range(3)] == [1, 2, 3]
        assert Tracer().new_span_id() == 1  # fresh tracer, fresh counter

    def test_null_tracer_allocates_nothing(self):
        assert NullTracer().new_span_id() is None


class TestLifecycle:
    def test_context_manager_closes_and_counts_drops(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer.to_path(path) as t:
            t.event("task", "launch", 0.0, machine=1)
        assert t.closed
        # emitting after close is tolerated but counted, never written
        t.event("task", "launch", 1.0, machine=1)
        t.span("task", "attempt", 1.0, 2.0)
        assert t.dropped_after_close == 2
        assert len(path.read_text().splitlines()) == 1

    def test_close_is_idempotent(self):
        t = Tracer()
        t.close()
        t.close()
        assert t.closed and t.dropped_after_close == 0

    def test_context_manager_closes_on_exception(self, tmp_path):
        path = tmp_path / "t.jsonl"
        try:
            with Tracer.to_path(path) as t:
                t.event("task", "launch", 0.0)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert t.closed
        assert json.loads(path.read_text())["name"] == "launch"


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        t = Tracer()
        with use_tracer(t):
            assert current_tracer() is t
        assert current_tracer() is NULL_TRACER


class TestTraceTap:
    def test_offer_and_tail(self):
        tap = TraceTap(maxlen=8)
        t = Tracer()
        t.add_tap(tap)
        t.event("epoch", "a", 0.0)
        t.event("epoch", "b", 1.0)
        records, cursor, lost = tap.tail()
        assert [r["name"] for r in records] == ["a", "b"]
        assert cursor == 2 and lost == 0

    def test_cursor_paging(self):
        tap = TraceTap(maxlen=8)
        for i in range(5):
            tap.offer({"i": i})
        first, cursor, _ = tap.tail(since=0, limit=2)
        rest, cursor, _ = tap.tail(since=cursor, limit=10)
        assert [r["i"] for r in first] == [0, 1]
        assert [r["i"] for r in rest] == [2, 3, 4]

    def test_tail_limit_keeps_most_recent(self):
        tap = TraceTap(maxlen=8)
        for i in range(5):
            tap.offer({"i": i})
        records, _, _ = tap.tail(limit=2)
        assert [r["i"] for r in records] == [3, 4]

    def test_eviction_without_subscriber_is_free(self):
        tap = TraceTap(maxlen=2)
        for i in range(10):
            tap.offer({"i": i})
        assert tap.dropped == 0
        records, _, _ = tap.tail()
        assert [r["i"] for r in records] == [8, 9]

    def test_stale_cursor_reports_lost(self):
        tap = TraceTap(maxlen=2)
        for i in range(5):
            tap.offer({"i": i})
        records, cursor, lost = tap.tail(since=0)
        assert lost == 3  # records 0..2 already evicted
        assert [r["i"] for r in records] == [3, 4]
        assert cursor == 5

    def test_lagging_subscriber_counts_drops(self):
        tap = TraceTap(maxlen=2)
        sub = tap.subscribe()
        for i in range(5):
            tap.offer({"i": i})
        assert tap.dropped == 3
        records, lost = tap.read(sub)
        assert lost == 3
        assert [r["i"] for r in records] == [3, 4]
        # caught up now: further offers within capacity drop nothing more
        tap.offer({"i": 5})
        assert tap.dropped == 3
        tap.unsubscribe(sub)

    def test_keeping_up_subscriber_drops_nothing(self):
        tap = TraceTap(maxlen=4)
        sub = tap.subscribe()
        for i in range(20):
            tap.offer({"i": i})
            tap.read(sub)
        assert tap.dropped == 0

    def test_rejects_silly_maxlen(self):
        import pytest

        with pytest.raises(ValueError):
            TraceTap(maxlen=0)

    def test_tap_does_not_perturb_records_or_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer.to_path(path) as plain:
            plain.event("epoch", "x", 0.0, value=1)
        tapped_path = tmp_path / "t2.jsonl"
        tap = TraceTap()
        with Tracer.to_path(tapped_path) as tapped:
            tapped.add_tap(tap)
            tapped.event("epoch", "x", 0.0, value=1)
        assert path.read_text() == tapped_path.read_text()
        records, _, _ = tap.tail()
        assert records == [json.loads(path.read_text())]

    def test_buffered_tracer_delegates_taps(self):
        from repro.obs.trace import BufferedTracer

        inner = Tracer()
        tap = TraceTap()
        buffered = BufferedTracer(inner)
        buffered.add_tap(tap)
        buffered.event("epoch", "x", 0.0)
        assert tap.seq == 0  # nothing until flush
        buffered.flush()
        assert tap.seq == 1

    def test_tap_only_tracer_keeps_nothing(self):
        tap = TraceTap()
        t = Tracer.tap_only()
        t.add_tap(tap)
        t.event("epoch", "x", 0.0)
        assert t.records == []
        assert tap.seq == 1
