"""Dollar-ledger tests: reconciliation property, trace round-trip, sim join.

The core invariant — cells re-sum to the authoritative total within 1e-9
dollars — is exercised with hypothesis over random charge sets, then
end-to-end against a traced simulator run.
"""

import math
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.accounting import CostLedger
from repro.obs.export import load_jsonl
from repro.obs.ledger import (
    DollarLedger,
    LedgerMismatch,
    emit_run_summary,
    summary_from_trace,
)
from repro.obs.trace import Tracer

from tests.obs.test_sim_tracing import run_once

amounts = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
ids = st.one_of(st.none(), st.integers(min_value=0, max_value=4))

charge = st.tuples(
    st.sampled_from(["cpu", "placement", "runtime"]),
    amounts,
    ids,  # job_id
    ids,  # machine/store id
    st.booleans(),  # carries a span_id
)


def build_ledger(charges):
    ledger = CostLedger()
    for i, (kind, amount, job, node, linked) in enumerate(charges):
        span = i + 1 if linked else None
        if kind == "cpu":
            ledger.charge_cpu(amount, job_id=job, machine_id=node, span_id=span)
        elif kind == "placement":
            ledger.charge_placement_transfer(
                amount, store_id=node, job_id=job, span_id=span
            )
        else:
            ledger.charge_runtime_transfer(
                amount, job_id=job, machine_id=node, span_id=span
            )
    return ledger


class TestReconciliationProperty:
    @given(st.lists(charge, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_cells_resum_to_ledger_total(self, charges):
        ledger = build_ledger(charges)
        dollars = DollarLedger.from_cost_ledger(ledger)
        expected = math.fsum(r.amount for r in ledger.records)
        residual = dollars.reconcile(expected)
        assert abs(residual) <= 1e-9
        # every slicing re-sums too
        for view in (dollars.by_category(), dollars.by_job(), dollars.by_node()):
            assert math.fsum(view.values()) == pytest.approx(expected, abs=1e-9)

    @given(st.lists(charge, min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_perturbed_total_raises(self, charges):
        ledger = build_ledger(charges)
        dollars = DollarLedger.from_cost_ledger(ledger)
        expected = math.fsum(r.amount for r in ledger.records)
        with pytest.raises(LedgerMismatch):
            dollars.reconcile(expected + 1e-6)

    @given(st.lists(charge, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_linked_dollars_never_exceed_cell_dollars(self, charges):
        dollars = DollarLedger.from_cost_ledger(build_ledger(charges))
        for cell in dollars.rows():
            assert cell.linked <= cell.charges
            assert cell.linked_dollars <= cell.dollars + 1e-12
        assert 0.0 <= dollars.linked_fraction <= 1.0 + 1e-12


class TestTraceRoundTrip:
    def test_emit_then_from_trace_is_identity(self):
        ledger = build_ledger(
            [("cpu", 1.25, 0, 1, True), ("placement", 0.5, None, 2, False),
             ("runtime", 0.125, 1, 1, True), ("cpu", 2.0, 0, 1, False)]
        )
        dollars = DollarLedger.from_cost_ledger(ledger)
        tracer = Tracer()
        dollars.emit(tracer, ts=100.0)
        back = DollarLedger.from_trace(tracer.records)
        assert back.cells == dollars.cells

    def test_summary_round_trip(self):
        tracer = Tracer()
        emit_run_summary(
            tracer, ts=10.0, scheduler="s", total_cost=1.5, makespan=10.0,
            tasks_run=3,
        )
        summary = summary_from_trace(tracer.records)
        assert summary["total_cost"] == 1.5 and summary["tasks_run"] == 3
        assert summary_from_trace([]) is None


class TestSimulatorJoin:
    def test_traced_run_cost_cells_reconcile_with_metrics(self):
        tracer = Tracer()
        res = run_once(tracer=tracer)
        dollars = DollarLedger.from_trace(tracer.records)
        assert len(dollars) > 0
        assert dollars.reconcile(res.metrics.total_cost) == pytest.approx(
            0.0, abs=1e-9
        )
        # every dollar in this run traces back to an identified span
        assert dollars.linked_fraction == pytest.approx(1.0)

    def test_golden_trace_cells_match_summary(self):
        records = load_jsonl(Path(__file__).parent / "golden_trace.jsonl")
        dollars = DollarLedger.from_trace(records)
        summary = summary_from_trace(records)
        assert dollars.reconcile(summary["total_cost"]) == pytest.approx(
            0.0, abs=1e-9
        )


class TestRollingLedger:
    def test_incremental_fold_equals_batch(self):
        from repro.obs.ledger import RollingLedger

        ledger = build_ledger(
            [("cpu", 1.25, 0, 1, True), ("placement", 0.5, None, 0, False),
             ("runtime", 0.125, 1, 1, True), ("cpu", 2.0, 0, 1, False)]
        )
        rolling = RollingLedger()
        # fold in two uneven increments (simulating two epochs)
        half = CostLedger()
        half.records = ledger.records[:2]
        rolling.fold(half)
        rolling.fold(ledger)
        assert rolling.cursor == len(ledger.records)
        assert rolling.to_dollar_ledger().cells == (
            DollarLedger.from_cost_ledger(ledger).cells
        )

    @given(st.lists(charge, max_size=60), st.integers(min_value=1, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_chunked_folds_always_equal_batch(self, charges, chunk):
        from repro.obs.ledger import RollingLedger

        ledger = build_ledger(charges)
        rolling = RollingLedger()
        for end in range(0, len(ledger.records) + chunk, chunk):
            partial = CostLedger()
            partial.records = ledger.records[: min(end, len(ledger.records))]
            rolling.fold(partial)
            # after every fold the rolling prefix must equal the batch build
            batch = DollarLedger.from_cost_ledger(partial)
            assert rolling.to_dollar_ledger().cells == batch.cells
            assert rolling.reconcile(batch.total) == pytest.approx(0.0, abs=1e-9)
        assert rolling.drift_events == 0
        assert rolling.max_residual <= rolling.tol

    def test_reconcile_never_raises_but_counts_drift(self):
        from repro.obs.registry import MetricsRegistry, use_registry
        from repro.obs.ledger import RollingLedger

        rolling = RollingLedger()
        ledger = build_ledger([("cpu", 1.0, 0, 0, False)])
        rolling.fold(ledger)
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_registry(registry):
            residual = rolling.reconcile(5.0, tracer=tracer, ts=1.0, epoch=3)
        assert residual == pytest.approx(-4.0)
        assert rolling.drift_events == 1
        assert rolling.max_residual == pytest.approx(4.0)
        assert registry.counter("rolling_ledger_drift_total").total() == 1
        (event,) = [r for r in tracer.records if r["cat"] == "ledger"]
        assert event["name"] == "drift" and event["epoch"] == 3

    def test_every_epoch_cells_equal_end_of_run_ledger(self):
        """On the smoke workload, per-epoch rolling cells == final DollarLedger."""
        from repro.obs.ledger import RollingLedger

        result = run_once()
        ledger = result.metrics.ledger
        rolling = RollingLedger()
        # fold record-prefixes as an epoch controller would per epoch
        for cut in range(0, len(ledger.records), 7):
            partial = CostLedger()
            partial.records = ledger.records[:cut]
            rolling.fold(partial)
        rolling.fold(ledger)
        final = DollarLedger.from_cost_ledger(ledger)
        assert rolling.to_dollar_ledger().cells == final.cells
        assert rolling.reconcile(ledger.total) == pytest.approx(0.0, abs=1e-9)
        assert rolling.drift_events == 0
