"""WAL and snapshot durability: torn tails, gaps, atomic snapshots."""

import json

import pytest

from repro.cost.accounting import CostLedger
from repro.serve.journal import (
    REC_ADMISSION,
    REC_START,
    WriteAheadLog,
    data_from_dict,
    data_to_dict,
    job_from_dict,
    job_to_dict,
    ledger_from_dicts,
    ledger_to_dicts,
    load_latest_snapshot,
    read_wal,
    snapshot_path,
    write_snapshot,
)
from repro.workload.job import DataObject, Job


class TestWriteAheadLog:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "service.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.append(REC_START, clock=0.0) == 0
            assert wal.append(REC_ADMISSION, job_id=3, admitted=True) == 1
        records = read_wal(path)
        assert [r["type"] for r in records] == [REC_START, REC_ADMISSION]
        assert records[1]["job_id"] == 3 and records[1]["admitted"] is True

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "service.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(REC_START, clock=0.0)
            wal.append(REC_ADMISSION, job_id=0, admitted=True)
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.append(REC_ADMISSION, job_id=1, admitted=True) == 2
        assert [r["seq"] for r in read_wal(path)] == [0, 1, 2]

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "service.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(REC_START, clock=0.0)
            wal.append(REC_ADMISSION, job_id=0, admitted=True)
        with path.open("a") as handle:
            handle.write('{"seq": 2, "type": "adm')  # crash mid-write
        records = read_wal(path)
        assert len(records) == 2
        # and a reopened WAL keeps numbering from the surviving prefix
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.append(REC_ADMISSION, job_id=1, admitted=False) == 2
        # reopening truncated the fragment, so the post-crash append landed
        # on a fresh line — the WAL must stay fully readable forever after
        records = read_wal(path)
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[2] == {
            "seq": 2,
            "type": REC_ADMISSION,
            "job_id": 1,
            "admitted": False,
        }

    def test_double_crash_after_torn_tail_recovery(self, tmp_path):
        # crash -> recover (append) -> crash again mid-write -> recover:
        # each reopen must repair the tail the previous crash left behind
        path = tmp_path / "service.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(REC_START, clock=0.0)
        with path.open("a") as handle:
            handle.write('{"seq": 1, "ty')
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.append(REC_ADMISSION, job_id=0, admitted=True) == 1
        with path.open("a") as handle:
            handle.write('{"seq": 2')
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.append(REC_ADMISSION, job_id=1, admitted=True) == 2
        assert [r["seq"] for r in read_wal(path)] == [0, 1, 2]

    def test_complete_record_with_lost_newline_is_kept(self, tmp_path):
        # the crash persisted the full JSON but not the terminator: the
        # record reached the disk, so reopen finishes the line instead of
        # dropping the decision
        path = tmp_path / "service.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(REC_START, clock=0.0)
        with path.open("a") as handle:
            handle.write(json.dumps({"seq": 1, "type": REC_ADMISSION, "job_id": 0}))
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.append(REC_ADMISSION, job_id=1, admitted=True) == 2
        records = read_wal(path)
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[1]["job_id"] == 0 and records[2]["job_id"] == 1

    def test_repair_leaves_mid_file_corruption_for_read_wal(self, tmp_path):
        path = tmp_path / "service.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(REC_START, clock=0.0)
            wal.append(REC_ADMISSION, job_id=0, admitted=True)
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-4]  # damage, not a crash
        path.write_text("\n".join(lines) + "\n")
        before = path.read_text()
        with pytest.raises(ValueError, match="corrupt WAL record"):
            WriteAheadLog(path, fsync=False)
        assert path.read_text() == before  # repair did not touch the damage

    def test_mid_file_corruption_is_loud(self, tmp_path):
        path = tmp_path / "service.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(REC_START, clock=0.0)
            wal.append(REC_ADMISSION, job_id=0, admitted=True)
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-4]  # corrupt a non-tail record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt WAL record"):
            read_wal(path)

    def test_sequence_gap_is_loud(self, tmp_path):
        path = tmp_path / "service.wal"
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(REC_START, clock=0.0)
        record = {"seq": 5, "type": REC_ADMISSION, "job_id": 0, "admitted": True}
        with path.open("a") as handle:
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="sequence gap"):
            read_wal(path)


class TestSnapshots:
    def test_write_then_load_newest(self, tmp_path):
        write_snapshot(tmp_path, 4, {"clock": 60.0})
        write_snapshot(tmp_path, 9, {"clock": 120.0})
        loaded = load_latest_snapshot(tmp_path)
        assert loaded is not None
        state, path = loaded
        assert state["clock"] == 120.0 and state["wal_seq"] == 9
        assert path == snapshot_path(tmp_path, 9)

    def test_half_written_snapshot_is_skipped(self, tmp_path):
        write_snapshot(tmp_path, 4, {"clock": 60.0})
        snapshot_path(tmp_path, 9).write_text('{"truncated')
        state, path = load_latest_snapshot(tmp_path)
        assert state["wal_seq"] == 4 and path == snapshot_path(tmp_path, 4)

    def test_empty_dir_returns_none(self, tmp_path):
        assert load_latest_snapshot(tmp_path) is None

    def test_foreign_format_is_loud(self, tmp_path):
        snapshot_path(tmp_path, 2).write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="not a serve snapshot"):
            load_latest_snapshot(tmp_path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_snapshot(tmp_path, 1, {"clock": 0.0})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
        assert leftovers == []


class TestStateCodecs:
    def test_job_round_trip_is_exact(self):
        job = Job(
            job_id=7,
            name="grep",
            tcp=0.125,
            data_ids=[0, 2],
            num_tasks=5,
            arrival_time=312.5,
            pool="etl",
            num_reduces=2,
            shuffle_ratio=0.4,
            reduce_cpu_per_mb=0.01,
            read_fraction=0.75,
        )
        assert job_from_dict(job_to_dict(job)) == job

    def test_data_round_trip_is_exact(self):
        obj = DataObject(data_id=1, name="logs", size_mb=96.5, origin_store=2)
        assert data_from_dict(data_to_dict(obj)) == obj

    def test_ledger_round_trip_is_float_exact(self):
        ledger = CostLedger()
        ledger.charge_cpu(0.1 + 0.2, job_id=1, machine_id=0, detail="epoch 3")
        ledger.charge_placement_transfer(1.0 / 3.0, store_id=1, job_id=1)
        ledger.charge_runtime_transfer(7.0 / 11.0, job_id=1, machine_id=0, store_id=1)
        clone = ledger_from_dicts(ledger_to_dicts(ledger))
        assert clone.total == ledger.total
        assert ledger_to_dicts(clone) == ledger_to_dicts(ledger)
