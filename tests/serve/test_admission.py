"""Admission control: token bucket, bounded queue, shed accounting."""

import pytest

from repro.obs.registry import MetricsRegistry, use_registry
from repro.serve.admission import (
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
    SHED_SHEDDING,
    AdmissionController,
    TokenBucket,
)
from repro.workload.job import Job


def _job(job_id: int) -> Job:
    return Job(job_id=job_id, name=f"j{job_id}", tcp=0.0, cpu_seconds_noinput=10.0)


class TestTokenBucket:
    def test_rate_zero_always_admits(self):
        bucket = TokenBucket(rate_per_s=0.0, burst=1.0, tokens=0.0)
        assert all(bucket.try_take(0.0) for _ in range(100))

    def test_burst_depletes_then_blocks(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=3.0, tokens=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_sim_time_refill(self):
        bucket = TokenBucket(rate_per_s=0.5, burst=2.0, tokens=0.0)
        assert not bucket.try_take(0.0)
        # 2 seconds at 0.5 tokens/s = 1 token
        assert bucket.try_take(2.0)
        assert not bucket.try_take(2.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0, tokens=0.0)
        bucket.try_take(1000.0)
        assert bucket.tokens == pytest.approx(1.0)  # capped at 2, one taken

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=5.0, tokens=0.0)
        assert bucket.try_take(3.0)
        before = bucket.tokens
        bucket.try_take(1.0)  # stale timestamp must not refill again
        assert bucket.tokens <= before

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0.0)

    def test_snapshot_round_trip(self):
        bucket = TokenBucket(rate_per_s=0.3, burst=4.0, tokens=1.25, last_refill=17.5)
        clone = TokenBucket.from_dict(bucket.to_dict())
        assert clone.to_dict() == bucket.to_dict()
        # the clone continues the exact decision sequence
        assert [bucket.try_take(20.0), bucket.try_take(20.0)] == [
            clone.try_take(20.0),
            clone.try_take(20.0),
        ]


class TestAdmissionController:
    def test_admits_below_all_limits(self):
        ctrl = AdmissionController(max_pending=4)
        decision = ctrl.offer(_job(0), now=0.0, backlog=0, shedding=False)
        assert decision.admitted and decision.reason is None
        assert (ctrl.submitted, ctrl.admitted, ctrl.shed_total) == (1, 1, 0)

    def test_queue_full_outranks_other_reasons(self):
        # full backlog AND empty bucket AND shedding: queue_full wins, and
        # the bucket is not even consulted (no token consumed)
        ctrl = AdmissionController(
            max_pending=2, bucket=TokenBucket(rate_per_s=1.0, burst=1.0, tokens=1.0)
        )
        decision = ctrl.offer(_job(0), now=0.0, backlog=2, shedding=True)
        assert decision.reason == SHED_QUEUE_FULL
        assert ctrl.bucket.tokens == pytest.approx(1.0)

    def test_shedding_outranks_rate_limit(self):
        # a job SHEDDING was going to refuse anyway must not be charged to
        # the rate limiter (wrong reason) nor consume a token
        ctrl = AdmissionController(
            max_pending=8, bucket=TokenBucket(rate_per_s=1.0, burst=1.0, tokens=0.0)
        )
        decision = ctrl.offer(_job(0), now=0.0, backlog=0, shedding=True)
        assert decision.reason == SHED_SHEDDING

    def test_shedding_does_not_drain_the_bucket(self):
        ctrl = AdmissionController(
            max_pending=8, bucket=TokenBucket(rate_per_s=0.001, burst=2.0, tokens=2.0)
        )
        for i in range(10):  # sustained offers while SHEDDING
            ctrl.offer(_job(i), now=0.0, backlog=0, shedding=True)
        assert ctrl.shed == {SHED_SHEDDING: 10}
        assert ctrl.bucket.tokens == pytest.approx(2.0)
        # burst capacity is intact the instant SHEDDING ends
        assert ctrl.offer(_job(10), now=0.0, backlog=0, shedding=False).admitted
        assert ctrl.offer(_job(11), now=0.0, backlog=0, shedding=False).admitted

    def test_shedding_rejects_everything_else(self):
        ctrl = AdmissionController(max_pending=8)
        decision = ctrl.offer(_job(0), now=0.0, backlog=0, shedding=True)
        assert decision.reason == SHED_SHEDDING

    def test_partition_invariant_under_mixed_traffic(self):
        ctrl = AdmissionController(
            max_pending=3, bucket=TokenBucket(rate_per_s=0.1, burst=2.0, tokens=2.0)
        )
        backlog = 0
        for i in range(20):
            decision = ctrl.offer(
                _job(i), now=float(i) * 0.5, backlog=backlog, shedding=i % 7 == 0
            )
            if decision.admitted:
                backlog = min(backlog + 1, 3)
        assert ctrl.submitted == 20
        assert ctrl.submitted == ctrl.admitted + ctrl.shed_total
        assert sum(ctrl.shed.values()) == ctrl.shed_total
        assert set(ctrl.shed) <= {SHED_QUEUE_FULL, SHED_RATE_LIMIT, SHED_SHEDDING}

    def test_metrics_reconcile_with_counters(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            ctrl = AdmissionController(max_pending=1)
            ctrl.offer(_job(0), now=0.0, backlog=0, shedding=False)
            ctrl.offer(_job(1), now=0.0, backlog=1, shedding=False)
        assert registry.counter("jobs_submitted_total").total() == 2
        assert registry.counter("jobs_admitted_total").total() == 1
        assert registry.counter("jobs_shed_total").value(reason=SHED_QUEUE_FULL) == 1

    def test_snapshot_round_trip(self):
        ctrl = AdmissionController(max_pending=2)
        ctrl.offer(_job(0), now=0.0, backlog=0, shedding=False)
        ctrl.offer(_job(1), now=0.0, backlog=2, shedding=False)
        clone = AdmissionController.from_dict(ctrl.to_dict())
        assert clone.to_dict() == ctrl.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
