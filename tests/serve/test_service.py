"""SchedulingService: WAL journaling, crash recovery, watchdog engagement."""

import json

import pytest

from repro.obs.registry import MetricsRegistry, use_registry
from repro.obs.trace import Tracer, use_tracer
from repro.serve.health import HealthConfig, ServiceState
from repro.serve.invariants import check_service_invariants
from repro.serve.journal import (
    REC_ADMISSION,
    REC_EPOCH,
    REC_RECOVERED,
    REC_START,
    ledger_to_dicts,
    read_wal,
)
from repro.serve.service import RecoveryError, SchedulingService, ServiceConfig
from repro.workload.job import DataObject, Job


def _workload(num_jobs=4, num_stores=2):
    """Deterministic job/data pairs: one data object per job."""
    pairs = []
    for job_id in range(num_jobs):
        size_mb = 64.0 * (2 + job_id % 3)
        data = DataObject(
            data_id=job_id,
            name=f"d{job_id}",
            size_mb=size_mb,
            origin_store=job_id % num_stores,
        )
        # demand sized so a run spans several epochs (forces requeues and,
        # in the recovery tests, reports at the checkpoint ticks)
        job = Job(
            job_id=job_id,
            name=f"j{job_id}",
            tcp=(1500.0 + 300.0 * job_id) / size_mb,
            data_ids=[job_id],
            num_tasks=data.num_blocks,
        )
        pairs.append((job, data))
    return pairs


def _config(**overrides) -> ServiceConfig:
    defaults = dict(epoch_length=60.0, checkpoint_every=0, wal_fsync=False)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _run_to_completion(service, pairs, max_ticks=50):
    for job, data in pairs:
        assert service.submit(job, data).admitted
    ticks = 0
    while service.backlog and ticks < max_ticks:
        service.tick()
        ticks += 1
    assert not service.backlog
    return service.result()


class TestBasicService:
    def test_in_memory_run_passes_invariants(self, two_zone_cluster):
        service = SchedulingService(two_zone_cluster, _config())
        service.start()
        result = _run_to_completion(service, _workload())
        assert result.total_cost > 0
        assert len(result.job_completion) == 4
        assert check_service_invariants(service, result) == []

    def test_wal_journals_every_decision(self, two_zone_cluster, tmp_path):
        service = SchedulingService(two_zone_cluster, _config(), wal_dir=tmp_path)
        service.start()
        pairs = _workload(num_jobs=3)
        for job, data in pairs:
            service.submit(job, data)
        num_ticks = 0
        while service.backlog:
            service.tick()
            num_ticks += 1
        service.result()
        records = read_wal(tmp_path / "wal.jsonl")
        types = [r["type"] for r in records]
        assert types[0] == REC_START
        assert types.count(REC_ADMISSION) == 3
        assert types.count(REC_EPOCH) == num_ticks
        admissions = [r for r in records if r["type"] == REC_ADMISSION]
        assert all(r["admitted"] for r in admissions)


class TestCrashRecovery:
    @pytest.mark.parametrize("checkpoint_every", [0, 2])
    def test_recovered_run_is_byte_identical(
        self, two_zone_cluster, tmp_path, checkpoint_every
    ):
        pairs = _workload(num_jobs=5)
        config = _config(checkpoint_every=checkpoint_every)

        # reference: the same run without a crash
        reference = SchedulingService(two_zone_cluster, config)
        reference.start()
        ref_result = _run_to_completion(reference, pairs)

        # victim: submit everything, crash after 3 ticks (WAL abandoned hot)
        victim = SchedulingService(
            two_zone_cluster, config, wal_dir=tmp_path / "victim"
        )
        victim.start()
        for job, data in pairs:
            victim.submit(job, data)
        for _ in range(3):
            victim.tick()
        del victim  # crash: no result(), no clean close

        recovered, stats = SchedulingService.recover(
            two_zone_cluster, config, tmp_path / "victim"
        )
        if checkpoint_every:
            assert stats.snapshot_seq >= 0
        else:
            assert stats.snapshot_seq == -1
            assert stats.records_replayed > 0
        assert stats.max_cost_drift <= 1e-9

        while recovered.backlog:
            recovered.tick()
        rec_result = recovered.result()

        assert ledger_to_dicts(rec_result.ledger) == ledger_to_dicts(ref_result.ledger)
        assert rec_result.job_completion == ref_result.job_completion
        assert rec_result.makespan == ref_result.makespan
        assert check_service_invariants(recovered, rec_result) == []
        tail = read_wal(tmp_path / "victim" / "wal.jsonl")
        assert any(r["type"] == REC_RECOVERED for r in tail)

    def test_recovery_trace_is_a_pure_suffix(self, two_zone_cluster, tmp_path):
        pairs = _workload(num_jobs=3)
        config = _config()
        victim = SchedulingService(
            two_zone_cluster, config, wal_dir=tmp_path / "victim"
        )
        victim.start()
        for job, data in pairs:
            victim.submit(job, data)
        victim.tick()
        del victim

        trace_path = tmp_path / "suffix.jsonl"
        with Tracer.to_path(trace_path) as tracer:
            with use_tracer(tracer):
                recovered, _ = SchedulingService.recover(
                    two_zone_cluster, config, tmp_path / "victim"
                )
                while recovered.backlog:
                    recovered.tick()
                recovered.result()
        lines = [json.loads(ln) for ln in trace_path.read_text().splitlines()]
        # replay is silent: the pre-crash epoch 0 may not re-emit its span
        epochs = [r["index"] for r in lines if r.get("name") == "controller-epoch"]
        assert epochs and min(epochs) >= 1
        assert any(r.get("name") == "recovered" for r in lines)

    def test_epoch_span_never_precedes_its_wal_record(
        self, two_zone_cluster, tmp_path
    ):
        """A crash between step() and the WAL append must not leave an epoch
        span in the trace: recovery would re-execute that epoch live and
        emit it again, breaking the pure-suffix trace contract."""
        config = _config()
        trace_path = tmp_path / "trace.jsonl"
        with Tracer.to_path(trace_path) as tracer:
            service = SchedulingService(
                two_zone_cluster, config, wal_dir=tmp_path / "wal", tracer=tracer
            )
            service.start()
            for job, data in _workload(num_jobs=2):
                service.submit(job, data)
            original_append = service.wal.append

            def crashing_append(rec_type, **payload):
                if rec_type == REC_EPOCH:
                    raise OSError("disk died before the epoch was journaled")
                return original_append(rec_type, **payload)

            service.wal.append = crashing_append
            with pytest.raises(OSError):
                service.tick()
        lines = [json.loads(ln) for ln in trace_path.read_text().splitlines()]
        assert not any(r.get("name") == "controller-epoch" for r in lines)
        assert not any(
            r["type"] == REC_EPOCH for r in read_wal(tmp_path / "wal" / "wal.jsonl")
        )

    def test_replay_does_not_double_count_metrics(self, two_zone_cluster, tmp_path):
        """The registry survives an in-process kill (as in the soak), so
        replay must observe into a scratch registry: counters reflect each
        admission/epoch exactly once across crash and recovery."""
        pairs = _workload(num_jobs=4)
        config = _config()
        registry = MetricsRegistry()
        with use_registry(registry):
            victim = SchedulingService(
                two_zone_cluster, config, wal_dir=tmp_path / "victim"
            )
            victim.start()
            for job, data in pairs:
                victim.submit(job, data)
            for _ in range(3):
                victim.tick()
            del victim  # crash: same process, registry keeps its counts

            recovered, stats = SchedulingService.recover(
                two_zone_cluster, config, tmp_path / "victim"
            )
            assert stats.records_replayed > 0
            while recovered.backlog:
                recovered.tick()
        assert (
            registry.counter("jobs_submitted_total").total()
            == recovered.admission.submitted
        )
        assert (
            registry.counter("jobs_admitted_total").total()
            == recovered.admission.admitted
        )
        assert (
            registry.counter("service_epochs_total").total()
            == recovered.epochs_ticked
        )

    def test_tampered_wal_is_rejected(self, two_zone_cluster, tmp_path):
        pairs = _workload(num_jobs=2)
        config = _config()
        victim = SchedulingService(
            two_zone_cluster, config, wal_dir=tmp_path / "victim"
        )
        victim.start()
        for job, data in pairs:
            victim.submit(job, data)
        victim.tick()
        del victim

        wal_path = tmp_path / "victim" / "wal.jsonl"
        lines = wal_path.read_text().splitlines()
        for i, line in enumerate(lines):
            record = json.loads(line)
            if record["type"] == REC_ADMISSION:
                record["admitted"] = not record["admitted"]
                lines[i] = json.dumps(record)
                break
        wal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError):
            SchedulingService.recover(two_zone_cluster, config, tmp_path / "victim")

    def test_missing_wal_is_loud(self, two_zone_cluster, tmp_path):
        with pytest.raises(RecoveryError, match="no WAL"):
            SchedulingService.recover(two_zone_cluster, _config(), tmp_path / "nope")


class TestWatchdogAndShedding:
    def test_advance_refuses_to_jump_a_nonempty_queue(self, two_zone_cluster):
        service = SchedulingService(two_zone_cluster, _config())
        service.start()
        job, data = _workload(num_jobs=1)[0]
        service.submit(job, data)
        with pytest.raises(RuntimeError, match="non-empty queue"):
            service.advance_to(600.0)

    def test_injected_lag_engages_degraded_mode(self, two_zone_cluster, tmp_path):
        """Satellite: sustained LP lag must flip HEALTHY -> DEGRADED with
        zero unaccounted job loss, and the metrics must reconcile with the
        health machine's transition log and the trace events."""
        health = HealthConfig(epoch_deadline_s=0.25, miss_threshold=2)
        config = _config(health=health)
        registry = MetricsRegistry()
        trace_path = tmp_path / "trace.jsonl"
        with use_registry(registry), Tracer.to_path(trace_path) as tracer:
            service = SchedulingService(
                two_zone_cluster,
                config,
                lag_injector=lambda epoch: 10.0,  # every LP epoch blows the deadline
                tracer=tracer,
            )
            service.start()
            pairs = _workload(num_jobs=6)
            misses = 0
            for job, data in pairs:
                service.submit(job, data)
            ticks = 0
            while service.backlog and ticks < 40:
                if service.health.plan_epoch():
                    misses += 1  # the injector guarantees every LP tick misses
                service.tick()
                ticks += 1
            result = service.result()

        transitions = service.health.transitions
        assert any(
            (t.src, t.dst) == (ServiceState.HEALTHY, ServiceState.DEGRADED)
            for t in transitions
        )
        # no silent job loss: everything admitted completed
        assert service.admission.submitted == 6
        assert service.admission.admitted == len(result.job_completion)
        assert check_service_invariants(service, result, expected_misses=misses) == []
        # metrics reconcile with the state machine and the trace
        assert (
            registry.counter("service_transitions_total").total() == len(transitions)
        )
        assert registry.counter("epoch_deadline_misses_total").total() == misses
        traced = [
            ln
            for ln in trace_path.read_text().splitlines()
            if '"service"' in ln and '"transition"' in ln
        ]
        assert len(traced) == len(transitions)

    def test_queue_full_sheds_are_accounted(self, two_zone_cluster, tmp_path):
        config = _config(max_pending=1)
        registry = MetricsRegistry()
        trace_path = tmp_path / "trace.jsonl"
        with use_registry(registry), Tracer.to_path(trace_path) as tracer:
            service = SchedulingService(two_zone_cluster, config, tracer=tracer)
            service.start()
            pairs = _workload(num_jobs=3)
            decisions = [service.submit(job, data) for job, data in pairs]
            while service.backlog:
                service.tick()
            result = service.result()
        assert [d.admitted for d in decisions] == [True, False, False]
        assert service.admission.shed == {"queue_full": 2}
        assert registry.counter("jobs_shed_total").value(reason="queue_full") == 2
        shed_events = [
            ln for ln in trace_path.read_text().splitlines() if '"shed"' in ln
        ]
        assert len(shed_events) == 2
        # partition + completion accounting still hold under shedding
        assert check_service_invariants(service, result) == []

    def test_rate_limit_sheds_are_accounted(self, two_zone_cluster):
        config = _config(rate_per_s=0.001, burst=1.0)
        service = SchedulingService(two_zone_cluster, config)
        service.start()
        pairs = _workload(num_jobs=2)
        first = service.submit(*pairs[0])
        second = service.submit(*pairs[1])
        assert first.admitted and not second.admitted
        assert second.reason == "rate_limit"
        assert service.admission.shed_total == 1


class TestLivePlane:
    def test_attach_plane_reconciles_every_epoch(self, two_zone_cluster):
        from repro.obs.live import LiveTelemetryPlane

        plane = LiveTelemetryPlane()
        service = SchedulingService(two_zone_cluster, _config())
        service.attach_plane(plane)
        service.start()
        result = _run_to_completion(service, _workload())
        rolling = service.controller.rolling_ledger
        assert rolling is not None
        # one reconciliation per tick, zero drift, exact residuals
        assert rolling.reconciliations == service.epochs_ticked
        assert rolling.drift_events == 0
        assert rolling.max_residual <= rolling.tol
        # the rolling cells equal the end-of-run batch ledger exactly
        from repro.obs.ledger import DollarLedger

        final = DollarLedger.from_cost_ledger(result.ledger)
        assert rolling.to_dollar_ledger().cells == final.cells
        assert rolling.total == pytest.approx(result.total_cost, abs=1e-9)

    def test_status_surfaces_slo_and_admission(self, two_zone_cluster):
        from repro.obs.live import LiveTelemetryPlane

        plane = LiveTelemetryPlane()
        service = SchedulingService(two_zone_cluster, _config())
        service.attach_plane(plane)
        service.start()
        for job, data in _workload():
            assert service.submit(job, data).admitted
        while service.backlog:
            service.tick()
        # status() reads the in-flight run: sample before result() closes it
        status = service.status()
        assert status["state"] == "healthy"
        assert status["epochs_ticked"] == service.epochs_ticked
        slo = status["slo"]
        assert slo["window_size"] == service.epochs_ticked
        assert slo["misses"] == 0
        assert status["admission"]["admitted"] == 4
        # the plane's health view folds the same status in
        health = plane.health()
        assert health["ok"] is True
        assert health["service"]["epoch"] == status["epoch"]
        assert plane.slo() == slo

    def test_plane_tap_sees_service_trace(self, two_zone_cluster, tmp_path):
        from repro.obs.live import LiveTelemetryPlane

        plane = LiveTelemetryPlane()
        trace_path = tmp_path / "trace.jsonl"
        with Tracer.to_path(trace_path) as tracer:
            with use_tracer(tracer):
                service = SchedulingService(two_zone_cluster, _config())
                service.attach_plane(plane)
                service.start()
                _run_to_completion(service, _workload(num_jobs=2))
        # journal-before-trace flush means the tap saw every record the
        # file did (the tap hangs off the inner tracer, post-buffer)
        assert plane.tap.seq == len(trace_path.read_text().splitlines())
        assert plane.tap.dropped == 0
        records, _, _ = plane.tap.tail()
        assert any(r.get("cat") == "epoch" for r in records)

    def test_run_identical_with_and_without_plane(self, two_zone_cluster):
        from repro.obs.live import LiveTelemetryPlane

        def run(plane):
            service = SchedulingService(two_zone_cluster, _config())
            if plane is not None:
                service.attach_plane(plane)
            service.start()
            return _run_to_completion(service, _workload())

        bare = run(None)
        observed = run(LiveTelemetryPlane())
        assert observed.total_cost == bare.total_cost
        assert observed.job_completion == bare.job_completion
