"""The serve soak harness: chaos windows, lag injection, end-to-end gates."""

import numpy as np

from repro.obs import lpprof
from repro.resilience.chaos import ChaosPlan, StragglerEvent
from repro.serve.soak import (
    ServeSoakConfig,
    WindowedChaosBackend,
    build_serve_schedule,
    derive_service_chaos,
    make_lag_injector,
    run_serve_soak,
)
from repro.lp.result import LPStatus


class TestScheduleDerivation:
    def test_schedule_is_a_pure_function_of_the_seed(self):
        config = ServeSoakConfig(seed=7, num_submitters=2, jobs_per_submitter=4)
        a = build_serve_schedule(config, 4, np.random.default_rng(7))
        b = build_serve_schedule(config, 4, np.random.default_rng(7))
        assert [(t, job.job_id) for t, job in a[0]] == [
            (t, job.job_id) for t, job in b[0]
        ]

    def test_schedule_merges_sorted_with_unique_ids(self):
        config = ServeSoakConfig(seed=3, num_submitters=3, jobs_per_submitter=5)
        schedule, data_by_job = build_serve_schedule(
            config, 4, np.random.default_rng(3)
        )
        times = [t for t, _ in schedule]
        assert times == sorted(times)
        ids = [job.job_id for _, job in schedule]
        assert len(ids) == len(set(ids)) == 15
        assert set(data_by_job) == set(ids)


class TestChaosDerivation:
    def test_stragglers_become_lag_windows(self):
        plan = ChaosPlan(stragglers=[StragglerEvent(0, 120.0, 300.0, 3.0)])
        _, lag_windows = derive_service_chaos(plan, horizon_s=3600.0)
        assert lag_windows == [(120.0, 300.0)]

    def test_lag_injector_fires_only_inside_windows(self):
        injector = make_lag_injector([(120.0, 300.0)], 10.0, 60.0)
        # epochs start at 0, 60, 120, ... — the window covers starts 120..240
        assert [injector(e) for e in range(7)] == [0, 0, 10.0, 10.0, 10.0, 0, 0]

    def test_chaos_backend_fails_by_epoch_clock_not_call_count(self):
        class Inner:
            calls = 0

            def solve_assembled(self, asm):
                self.calls += 1
                return "delegated"

        inner = Inner()
        backend = WindowedChaosBackend(inner, [(60.0, 180.0)], epoch_length=60.0)
        outcomes = []
        for epoch in (0, 1, 2, 3, 1):  # revisiting epoch 1 (replay) fails again
            with lpprof.scope(epoch=epoch):
                outcomes.append(backend.solve_assembled(None))
        blocked = [r != "delegated" for r in outcomes]
        assert blocked == [False, True, True, False, True]
        assert all(
            r.status is LPStatus.NUMERICAL for r in outcomes if r != "delegated"
        )
        assert inner.calls == 2
        assert backend.faults_injected == 3
        # no epoch scope: always delegates (offline solves are untouched)
        assert backend.solve_assembled(None) == "delegated"


class TestEndToEnd:
    def test_quick_soak_passes_every_gate(self, tmp_path):
        config = ServeSoakConfig(
            seed=1,
            num_machines=4,
            num_submitters=2,
            jobs_per_submitter=5,
            sim_hours=2.25,
            checkpoint_every=4,
            kill_after_epochs=(8,),
        )
        outcome = run_serve_soak(config, tmp_path, min_sim_hours=1.5)
        assert outcome.ok, [str(v) for v in outcome.violations]
        assert outcome.kills == 1
        assert outcome.ledger_identical
        assert outcome.sim_time_s >= 1.5 * 3600.0
        assert outcome.submitted == outcome.admitted + outcome.shed
        assert outcome.completed == outcome.admitted
