"""Watchdog state machine: HEALTHY / DEGRADED / SHEDDING / RECOVERING."""

import pytest

from repro.obs.registry import MetricsRegistry, use_registry
from repro.obs.trace import Tracer
from repro.serve.health import HealthConfig, HealthMonitor, ServiceState


def _config(**overrides) -> HealthConfig:
    defaults = dict(
        epoch_deadline_s=1.0,
        miss_threshold=2,
        probe_every=4,
        recover_after=3,
        shed_high=48,
        shed_low=16,
    )
    defaults.update(overrides)
    return HealthConfig(**defaults)


def _miss(monitor, epoch):
    return monitor.observe_epoch(epoch, used_lp=True, missed=True, backlog=0)


def _ok(monitor, epoch):
    return monitor.observe_epoch(epoch, used_lp=True, missed=False, backlog=0)


class TestPlanEpoch:
    def test_healthy_and_recovering_always_plan_lp(self):
        monitor = HealthMonitor(config=_config())
        assert monitor.plan_epoch()
        monitor.state = ServiceState.RECOVERING
        assert monitor.plan_epoch()

    def test_shedding_never_plans_lp(self):
        monitor = HealthMonitor(config=_config())
        monitor.state = ServiceState.SHEDDING
        assert not monitor.plan_epoch()

    def test_degraded_probes_on_cadence(self):
        monitor = HealthMonitor(config=_config(probe_every=4))
        monitor.state = ServiceState.DEGRADED
        plans = []
        for epochs_in_state in range(8):
            monitor.epochs_in_state = epochs_in_state
            plans.append(monitor.plan_epoch())
        # probes on the 4th, 8th, ... epoch spent in DEGRADED
        assert plans == [False, False, False, True, False, False, False, True]


class TestTransitions:
    def test_healthy_to_degraded_needs_consecutive_misses(self):
        monitor = HealthMonitor(config=_config(miss_threshold=2))
        assert _miss(monitor, 0) is None
        assert _ok(monitor, 1) is None  # streak broken
        assert _miss(monitor, 2) is None
        transition = _miss(monitor, 3)
        assert transition is not None
        assert (transition.src, transition.dst) == (
            ServiceState.HEALTHY,
            ServiceState.DEGRADED,
        )
        assert monitor.state is ServiceState.DEGRADED

    def test_degraded_probe_success_starts_probation(self):
        monitor = HealthMonitor(config=_config())
        _miss(monitor, 0)
        _miss(monitor, 1)
        assert monitor.state is ServiceState.DEGRADED
        # greedy epochs (no LP) do not advance the miss/ok streaks
        assert monitor.observe_epoch(2, used_lp=False, missed=False, backlog=0) is None
        transition = _ok(monitor, 3)
        assert transition is not None
        assert transition.dst is ServiceState.RECOVERING
        assert "deadline" in transition.reason

    def test_recovering_promotes_after_streak(self):
        monitor = HealthMonitor(config=_config(recover_after=3))
        monitor.state = ServiceState.RECOVERING
        assert _ok(monitor, 0) is None
        assert _ok(monitor, 1) is None
        transition = _ok(monitor, 2)
        assert transition is not None
        assert transition.dst is ServiceState.HEALTHY

    def test_recovering_demotes_on_probation_miss(self):
        monitor = HealthMonitor(config=_config())
        monitor.state = ServiceState.RECOVERING
        transition = _miss(monitor, 0)
        assert transition is not None
        assert transition.dst is ServiceState.DEGRADED
        assert "probation" in transition.reason

    @pytest.mark.parametrize(
        "src",
        [ServiceState.HEALTHY, ServiceState.DEGRADED, ServiceState.RECOVERING],
    )
    def test_backlog_outranks_everything(self, src):
        monitor = HealthMonitor(config=_config(shed_high=10, shed_low=4))
        monitor.state = src
        transition = monitor.observe_epoch(0, used_lp=True, missed=False, backlog=10)
        assert transition is not None
        assert transition.dst is ServiceState.SHEDDING
        assert monitor.shedding

    def test_shedding_exits_at_low_watermark(self):
        monitor = HealthMonitor(config=_config(shed_high=10, shed_low=4))
        monitor.state = ServiceState.SHEDDING
        # hysteresis: staying between the watermarks does nothing
        assert monitor.observe_epoch(0, used_lp=False, missed=False, backlog=7) is None
        transition = monitor.observe_epoch(1, used_lp=False, missed=False, backlog=4)
        assert transition is not None
        assert transition.dst is ServiceState.RECOVERING

    def test_transition_resets_streaks(self):
        monitor = HealthMonitor(config=_config(miss_threshold=2))
        _miss(monitor, 0)
        _miss(monitor, 1)
        assert monitor.consecutive_misses == 0
        assert monitor.epochs_in_state == 0


class TestObservability:
    def test_transitions_counted_and_traced(self, tmp_path):
        registry = MetricsRegistry()
        trace_path = tmp_path / "trace.jsonl"
        with use_registry(registry):
            with Tracer.to_path(trace_path) as tracer:
                monitor = HealthMonitor(config=_config(miss_threshold=1))
                monitor.observe_epoch(
                    5, used_lp=True, missed=True, backlog=0, tracer=tracer, ts=300.0
                )
        counter = registry.counter("service_transitions_total")
        assert counter.value(src="healthy", dst="degraded") == 1
        assert counter.total() == len(monitor.transitions) == 1
        lines = [ln for ln in trace_path.read_text().splitlines() if '"service"' in ln]
        assert any('"transition"' in ln and '"degraded"' in ln for ln in lines)


class TestSnapshot:
    def test_round_trip_preserves_streaks(self):
        monitor = HealthMonitor(config=_config(miss_threshold=3))
        _miss(monitor, 0)
        _miss(monitor, 1)
        clone = HealthMonitor.from_dict(monitor.to_dict(), monitor.config)
        assert clone.state is monitor.state
        assert clone.consecutive_misses == monitor.consecutive_misses
        # the clone continues the exact decision sequence
        assert (_miss(monitor, 2) is None) == (_miss(clone, 2) is None)
        assert clone.state is monitor.state is ServiceState.DEGRADED


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"epoch_deadline_s": 0.0},
            {"miss_threshold": 0},
            {"probe_every": 0},
            {"recover_after": 0},
            {"shed_high": 4, "shed_low": 4},
        ],
    )
    def test_rejects_degenerate_configs(self, overrides):
        with pytest.raises(ValueError):
            _config(**overrides)


class TestSLOConfig:
    @pytest.mark.parametrize(
        "overrides",
        [{"window_epochs": 0}, {"miss_budget": 0.0}, {"miss_budget": 1.5}],
    )
    def test_rejects_degenerate_configs(self, overrides):
        from repro.serve.health import SLOConfig

        with pytest.raises(ValueError):
            SLOConfig(**overrides)


class TestSLOTracker:
    def _tracker(self, **overrides):
        from repro.serve.health import SLOConfig, SLOTracker

        return SLOTracker(config=SLOConfig(**overrides), deadline_s=1.0)

    def test_miss_rate_counts_only_lp_epochs(self):
        slo = self._tracker(window_epochs=16, miss_budget=0.5)
        slo.observe(0, used_lp=True, missed=True, lag_s=2.0)
        slo.observe(1, used_lp=True, missed=False, lag_s=0.1)
        # greedy epochs cannot miss and do not dilute the rate
        slo.observe(2, used_lp=False, missed=False)
        assert slo.window_size == 3
        assert slo.lp_epochs == 2
        assert slo.misses == 1
        assert slo.miss_rate == pytest.approx(0.5)

    def test_window_slides(self):
        slo = self._tracker(window_epochs=4, miss_budget=0.5)
        for epoch in range(4):
            slo.observe(epoch, used_lp=True, missed=True, lag_s=2.0)
        assert slo.miss_rate == pytest.approx(1.0)
        for epoch in range(4, 8):
            slo.observe(epoch, used_lp=True, missed=False, lag_s=0.1)
        # the misses have slid out of the window
        assert slo.miss_rate == 0.0
        assert slo.window_size == 4
        assert slo.epochs_observed == 8

    def test_burn_rate_and_budget(self):
        slo = self._tracker(window_epochs=16, miss_budget=0.25)
        for epoch in range(8):
            slo.observe(epoch, used_lp=True, missed=epoch == 0, lag_s=0.1)
        # 1 miss / 8 LP epochs = 12.5% vs a 25% budget: half burned
        assert slo.burn_rate == pytest.approx(0.5)
        assert slo.budget_remaining == pytest.approx(0.5)

    def test_budget_remaining_clamps_when_over_budget(self):
        slo = self._tracker(window_epochs=8, miss_budget=0.05)
        for epoch in range(4):
            slo.observe(epoch, used_lp=True, missed=True, lag_s=3.0)
        assert slo.burn_rate > 1.0
        assert slo.budget_remaining == 0.0

    def test_empty_window_is_quiet(self):
        slo = self._tracker()
        assert slo.miss_rate == 0.0
        assert slo.burn_rate == 0.0
        assert slo.budget_remaining == 1.0
        assert slo.quantile(0.95) == 0.0

    def test_lag_quantiles_only_from_lp_epochs(self):
        slo = self._tracker()
        for epoch in range(50):
            slo.observe(epoch, used_lp=True, missed=False, lag_s=0.01)
        slo.observe(50, used_lp=False, missed=False, lag_s=99.0)  # ignored
        payload = slo.to_dict()
        assert payload["lag_observations"] == 50
        assert payload["lag_quantiles_s"]["p99"] < 1.0

    def test_to_dict_shape(self):
        slo = self._tracker(window_epochs=32, miss_budget=0.1)
        slo.observe(0, used_lp=True, missed=False, lag_s=0.2)
        payload = slo.to_dict()
        assert payload["window_epochs"] == 32
        assert payload["miss_budget"] == pytest.approx(0.1)
        assert set(payload["lag_quantiles_s"]) == {"p50", "p95", "p99"}
        import json

        json.dumps(payload)  # must be JSON-ready for /slo

    def test_deterministic_replay(self):
        # the tracker is a pure function of the observed sequence
        verdicts = [(e, e % 3 != 0, e % 5 == 0, 0.1 * e) for e in range(40)]
        a, b = self._tracker(), self._tracker()
        for epoch, used_lp, missed, lag in verdicts:
            a.observe(epoch, used_lp, missed, lag)
            b.observe(epoch, used_lp, missed, lag)
        assert a.to_dict() == b.to_dict()


class TestMonitorSLOWiring:
    def test_observe_epoch_feeds_tracker(self):
        from repro.serve.health import SLOTracker

        monitor = HealthMonitor(config=_config(), slo=SLOTracker(deadline_s=1.0))
        monitor.observe_epoch(0, used_lp=True, missed=True, backlog=0, lag_s=2.0)
        monitor.observe_epoch(1, used_lp=False, missed=False, backlog=0)
        assert monitor.slo.window_size == 2
        assert monitor.slo.misses == 1
        assert monitor.slo.to_dict()["lag_observations"] == 1

    def test_monitor_without_tracker_still_works(self):
        monitor = HealthMonitor(config=_config())
        assert monitor.observe_epoch(0, used_lp=True, missed=False, backlog=0) is None
        assert monitor.slo is None
