"""End-to-end integration: full pipeline on the paper's setups (scaled)."""

import pytest

from repro.cluster.builder import build_paper_testbed
from repro.core import SchedulingInput, solve_co_offline, round_schedule, validate_solution
from repro.experiments.common import DEFAULT, DELAY, LIPS, compare_schedulers
from repro.workload.apps import table4_jobs
from repro.workload.swim import SwimConfig, synthesize_facebook_day


@pytest.fixture(scope="module")
def table4_comparison():
    cluster = build_paper_testbed(12, c1_medium_fraction=0.5, seed=1)
    return compare_schedulers(cluster, table4_jobs(), epoch_length=1800.0)


def test_lips_is_cheapest(table4_comparison):
    c = table4_comparison
    assert c.cost(LIPS) < c.cost(DEFAULT)
    assert c.cost(LIPS) < c.cost(DELAY)


def test_lips_is_slowest(table4_comparison):
    c = table4_comparison
    assert c.makespan(LIPS) >= c.makespan(DELAY)


def test_baselines_near_parity(table4_comparison):
    c = table4_comparison
    rel = abs(c.cost(DEFAULT) - c.cost(DELAY)) / c.cost(DEFAULT)
    assert rel < 0.25


def test_every_run_executed_all_tasks(table4_comparison):
    for m in table4_comparison.metrics.values():
        assert m.tasks_run == 1608


def test_analytic_pipeline_agrees_with_paper_structure():
    """LP -> rounding -> validation chain on the Table IV workload."""
    cluster = build_paper_testbed(12, c1_medium_fraction=0.5, seed=1, uptime=50_000.0)
    w = table4_jobs(origin_stores=list(range(12)))
    inp = SchedulingInput.from_parts(cluster, w)
    sol = solve_co_offline(inp)
    assert validate_solution(inp, sol).ok
    integral = round_schedule(inp, sol)
    assert integral.total_tasks() == 1608
    assert integral.relative_gap < 0.05


def test_swim_online_comparison_small():
    cluster = build_paper_testbed(
        12, c1_medium_fraction=1 / 3, m1_small_fraction=1 / 3, seed=0
    )
    w = synthesize_facebook_day(
        SwimConfig(
            num_jobs=30,
            duration_s=3600.0,
            classes=(
                ("interactive", 0.62, (1, 5)),
                ("medium", 0.28, (5, 20)),
                ("long", 0.10, (20, 60)),
            ),
            num_origin_stores=12,
            seed=2,
        )
    )
    comp = compare_schedulers(cluster, w, epoch_length=600.0)
    assert comp.cost(LIPS) <= comp.cost(DEFAULT) * 1.02
    for m in comp.metrics.values():
        assert m.tasks_run == sum(j.num_tasks for j in w.jobs)


def test_cost_attribution_covers_totals(table4_comparison):
    """Per-category ledger slices sum to the reported total for every run."""
    for m in table4_comparison.metrics.values():
        assert sum(m.ledger.total_by_category().values()) == pytest.approx(m.total_cost)
