"""Serial vs pooled sharded runs: identical results, traces and ledgers.

The determinism contract of :mod:`repro.lp.sharded`: shard construction and
reconciliation depend only on the model, never on the worker count, and
per-shard solves leave no observable trace of their own.  So a run with
``shards=1`` (in process) and ``shards=2`` (process pool) must produce the
same epoch objectives, the same cost-ledger records, and the same trace —
byte for byte once the wall-clock attributes (the one real-time quantity a
trace carries) are stripped.
"""

import json

import numpy as np

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.core.epoch import EpochController
from repro.lp.simplex import SimplexBackend
from repro.obs.trace import Tracer, json_default
from repro.workload.job import DataObject, Job, Workload

#: real-clock attributes; everything else in a trace is simulation-determined
WALL_CLOCK_ATTRS = {"wall_s", "lp_wall_s"}


def _cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), default_uptime=10_000.0)
    b.add_machine("a0", ecu=2.0, cpu_cost=5.0e-5, zone="za")
    b.add_machine("a1", ecu=3.0, cpu_cost=4.0e-5, zone="za")
    b.add_machine("b0", ecu=5.0, cpu_cost=1.0e-5, zone="zb")
    b.add_machine("b1", ecu=4.0, cpu_cost=2.0e-5, zone="zb")
    return b.build()


def _workload():
    data = [
        DataObject(data_id=i, name=f"d{i}", size_mb=64.0 * (i + 1), origin_store=i % 4)
        for i in range(4)
    ]
    jobs = [
        Job(
            job_id=i,
            name=f"j{i}",
            tcp=(30.0 + 11.0 * i) / 64.0,
            data_ids=[i],
            num_tasks=4 + i,
        )
        for i in range(4)
    ]
    return Workload(jobs=jobs, data=data)


def _run(shards):
    tracer = Tracer()
    controller = EpochController(
        _cluster(),
        epoch_length=120.0,
        backend=SimplexBackend(),
        keep_solutions=True,
        incremental=True,
        shards=shards,
        tracer=tracer,
    )
    result = controller.run(_workload())
    tracer.close()
    return result, tracer.records, controller.incremental_context


def _canonical(records):
    """Trace records as JSONL bytes with wall-clock attrs stripped."""
    scrubbed = [
        {k: v for k, v in record.items() if k not in WALL_CLOCK_ATTRS}
        for record in records
    ]
    return "\n".join(
        json.dumps(r, sort_keys=True, default=json_default) for r in scrubbed
    ).encode()


def test_serial_and_pooled_runs_are_identical():
    serial, serial_trace, serial_ctx = _run(shards=1)
    pooled, pooled_trace, pooled_ctx = _run(shards=2)

    # the decomposition must actually engage, or this test is vacuous
    assert serial_ctx.warm.sharded_solves > 0
    assert serial_ctx.warm.stats() == pooled_ctx.warm.stats()

    assert serial.num_epochs == pooled.num_epochs
    assert [r.solution.objective for r in serial.reports] == [
        r.solution.objective for r in pooled.reports
    ]
    assert serial.total_cost == pooled.total_cost
    assert serial.makespan == pooled.makespan

    # ledgers record the same charges in the same order, exactly
    assert serial.ledger.records == pooled.ledger.records

    # traces agree byte for byte modulo wall-clock attributes
    assert _canonical(serial_trace) == _canonical(pooled_trace)


def test_sharded_controller_matches_monolithic_objectives():
    """Per-epoch objectives of a sharded run match the unsharded run.

    Both runs start from the same workload, so as long as every epoch's
    sharded solve is exact the whole trajectories coincide.
    """
    sharded, _, ctx = _run(shards=1)
    controller = EpochController(
        _cluster(),
        epoch_length=120.0,
        backend=SimplexBackend(),
        keep_solutions=True,
        incremental=True,
    )
    mono = controller.run(_workload())
    assert ctx.warm.sharded_solves > 0
    assert sharded.num_epochs == mono.num_epochs
    for a, b in zip(sharded.reports, mono.reports):
        scale = max(1.0, abs(b.solution.objective))
        assert abs(a.solution.objective - b.solution.objective) <= 1e-7 * scale
    assert np.isclose(sharded.total_cost, mono.total_cost, rtol=1e-6)
