"""Property-based tests of the Hadoop simulator (hypothesis).

Invariants over random clusters/workloads/schedulers:

* every task runs exactly once (without speculation);
* CPU-seconds are conserved: executed == demanded;
* the dollar bill is exactly recomputable from the run's own records;
* makespan is at least the critical lower bound (total work / total speed);
* read volume equals the workload's input exactly once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import DelayScheduler, FifoScheduler, GreedyCostScheduler
from repro.workload.job import DataObject, Job, Workload

SCHEDULERS = [FifoScheduler, DelayScheduler, GreedyCostScheduler]


@st.composite
def sim_case(draw):
    n_machines = draw(st.integers(min_value=1, max_value=4))
    zones = ["z0", "z1"]
    b = ClusterBuilder(topology=Topology.of(zones), store_capacity_mb=1e6)
    for i in range(n_machines):
        b.add_machine(
            f"m{i}",
            ecu=draw(st.sampled_from([1.0, 2.0, 5.0])),
            cpu_cost=draw(st.floats(min_value=1e-6, max_value=1e-4)),
            zone=zones[i % 2],
            map_slots=draw(st.integers(min_value=1, max_value=3)),
        )
    cluster = b.build()

    n_jobs = draw(st.integers(min_value=1, max_value=3))
    data, jobs = [], []
    for k in range(n_jobs):
        if draw(st.booleans()):
            d = DataObject(
                data_id=len(data),
                name=f"d{len(data)}",
                size_mb=draw(st.floats(min_value=64.0, max_value=512.0)),
                origin_store=0,
            )
            data.append(d)
            jobs.append(
                Job(
                    job_id=k,
                    name=f"j{k}",
                    tcp=draw(st.floats(min_value=0.05, max_value=1.5)),
                    data_ids=[d.data_id],
                    num_tasks=max(1, d.num_blocks),
                    arrival_time=draw(st.floats(min_value=0.0, max_value=120.0)),
                )
            )
        else:
            jobs.append(
                Job(
                    job_id=k,
                    name=f"j{k}",
                    tcp=0.0,
                    num_tasks=draw(st.integers(min_value=1, max_value=6)),
                    cpu_seconds_noinput=draw(st.floats(min_value=1.0, max_value=500.0)),
                    arrival_time=draw(st.floats(min_value=0.0, max_value=120.0)),
                )
            )
    scheduler_cls = draw(st.sampled_from(SCHEDULERS))
    seed = draw(st.integers(min_value=0, max_value=100))
    return cluster, Workload(jobs=jobs, data=data), scheduler_cls, seed


@given(sim_case())
@settings(max_examples=25, deadline=None)
def test_every_task_runs_exactly_once(case):
    cluster, w, scheduler_cls, seed = case
    sim = HadoopSimulator(cluster, w, scheduler_cls(), SimConfig(placement_seed=seed))
    res = sim.run()
    expected = sum(len(s.tasks) for s in sim.jobtracker.jobs.values())
    assert res.metrics.tasks_run == expected


@given(sim_case())
@settings(max_examples=25, deadline=None)
def test_cpu_conservation(case):
    cluster, w, scheduler_cls, seed = case
    sim = HadoopSimulator(cluster, w, scheduler_cls(), SimConfig(placement_seed=seed))
    res = sim.run()
    executed = sum(res.metrics.machine_cpu_seconds.values())
    assert executed == pytest.approx(w.total_cpu_seconds(), rel=1e-9)


@given(sim_case())
@settings(max_examples=25, deadline=None)
def test_bill_recomputable(case):
    cluster, w, scheduler_cls, seed = case
    sim = HadoopSimulator(cluster, w, scheduler_cls(), SimConfig(placement_seed=seed))
    res = sim.run()
    by_cat = res.metrics.ledger.total_by_category()
    assert sum(by_cat.values()) == pytest.approx(res.metrics.total_cost, rel=1e-12)
    cpu = sum(
        c * cluster.machines[m].cpu_cost
        for m, c in res.metrics.machine_cpu_seconds.items()
    )
    assert by_cat.get("cpu", 0.0) == pytest.approx(cpu, rel=1e-9)


@given(sim_case())
@settings(max_examples=25, deadline=None)
def test_makespan_lower_bound(case):
    cluster, w, scheduler_cls, seed = case
    sim = HadoopSimulator(cluster, w, scheduler_cls(), SimConfig(placement_seed=seed))
    res = sim.run()
    total_speed = sum(m.ecu for m in cluster.machines)
    first_arrival = min(j.arrival_time for j in w.jobs)
    bound = first_arrival + w.total_cpu_seconds() / total_speed
    # the bound ignores reads/slots, so it must sit below the real makespan
    assert res.metrics.makespan >= bound * (1 - 1e-9) or res.metrics.makespan >= bound - 1e-6


@given(sim_case())
@settings(max_examples=25, deadline=None)
def test_reads_match_input(case):
    cluster, w, scheduler_cls, seed = case
    sim = HadoopSimulator(cluster, w, scheduler_cls(), SimConfig(placement_seed=seed))
    res = sim.run()
    assert res.metrics.total_read_mb == pytest.approx(w.total_input_mb(), rel=1e-9)
