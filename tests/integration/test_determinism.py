"""Determinism: identical seeds yield identical runs across the stack."""

import numpy as np
import pytest

from repro.cluster.builder import build_paper_testbed
from repro.core import SchedulingInput, solve_co_offline
from repro.core.epoch import EpochController
from repro.experiments.fig5_simulated_savings import run as fig5_run, SMALL_SIZES
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import DelayScheduler, FifoScheduler, LipsScheduler
from repro.workload.apps import table4_jobs
from repro.workload.swim import SwimConfig, synthesize_facebook_day


@pytest.mark.parametrize("scheduler_cls", [FifoScheduler, DelayScheduler])
def test_simulator_runs_reproducible(scheduler_cls):
    cluster = build_paper_testbed(8, c1_medium_fraction=0.25, seed=3)
    w = table4_jobs()

    def once():
        sim = HadoopSimulator(cluster, w, scheduler_cls(), SimConfig(placement_seed=9))
        m = sim.run().metrics
        return (m.total_cost, m.makespan, m.data_locality, m.tasks_run)

    assert once() == once()


def test_lips_simulator_reproducible():
    cluster = build_paper_testbed(8, c1_medium_fraction=0.25, seed=3)
    w = table4_jobs()

    def once():
        sim = HadoopSimulator(
            cluster, w, LipsScheduler(epoch_length=1200.0),
            SimConfig(placement_seed=9, speculative=False),
        )
        m = sim.run().metrics
        return (m.total_cost, m.makespan, m.moved_mb)

    assert once() == once()


def test_lp_solution_reproducible():
    cluster = build_paper_testbed(8, seed=3, uptime=50_000.0)
    w = table4_jobs(origin_stores=list(range(8)))
    inp = SchedulingInput.from_parts(cluster, w)
    a = solve_co_offline(inp)
    b = solve_co_offline(inp)
    assert a.objective == b.objective
    assert np.array_equal(a.xt_data, b.xt_data)
    assert np.array_equal(a.xd, b.xd)


def test_epoch_controller_reproducible():
    cluster = build_paper_testbed(6, c1_medium_fraction=0.5, seed=2)
    w = synthesize_facebook_day(
        SwimConfig(num_jobs=10, duration_s=1800.0, num_origin_stores=6, seed=4,
                   classes=(("interactive", 0.7, (1, 4)), ("medium", 0.3, (4, 10)),))
    )
    a = EpochController(cluster, epoch_length=600.0).run(w)
    b = EpochController(cluster, epoch_length=600.0).run(w)
    assert a.total_cost == b.total_cost
    assert a.makespan == b.makespan


def test_fig5_reproducible():
    a = fig5_run(sizes=SMALL_SIZES[:1], seeds=(0,))
    b = fig5_run(sizes=SMALL_SIZES[:1], seeds=(0,))
    assert a.reductions == b.reductions
