"""Quality gate: every public item in the library carries a docstring.

Deliverable-level requirement — public modules, classes and functions must
document themselves.  Private names (leading underscore) and test scaffolds
are exempt.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(obj):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        yield name, obj


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_documented():
    """Public methods of public classes must be documented too (dataclass
    auto-generated members and inherited docs pass via getdoc)."""
    missing = []
    for module in _iter_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isfunction(member) or isinstance(member, property)):
                    continue
                target = member.fget if isinstance(member, property) else member
                if not (inspect.getdoc(target) or "").strip():
                    missing.append(f"{module.__name__}.{cls_name}.{name}")
    assert not missing, f"undocumented public methods: {missing}"
