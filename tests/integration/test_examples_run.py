"""Smoke tests: every shipped example runs green as a subprocess.

Examples rot silently when APIs move; running them end-to-end (at their
default, small scales) keeps the quickstart honest.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_examples_directory_inventory():
    names = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert names == [
        "ec2_cost_savings.py",
        "epoch_tuning.py",
        "facebook_day.py",
        "pipeline_dag.py",
        "quickstart.py",
        "tenant_billing.py",
    ]


def test_quickstart(capsys):
    r = run_example("quickstart.py")
    assert r.returncode == 0, r.stderr
    assert "co-scheduled optimal cost" in r.stdout
    assert "saving from moving the data" in r.stdout


def test_ec2_cost_savings():
    r = run_example("ec2_cost_savings.py", "0.5")
    assert r.returncode == 0, r.stderr
    assert "LiPS saves" in r.stdout
    assert "longer makespan" in r.stdout


def test_epoch_tuning():
    r = run_example("epoch_tuning.py", "3000")
    assert r.returncode == 0, r.stderr
    assert "makespan budget" in r.stdout
    assert "epoch" in r.stdout


def test_facebook_day():
    r = run_example("facebook_day.py")
    assert r.returncode == 0, r.stderr
    assert "trace preview" in r.stdout
    assert "LiPS saving" in r.stdout


def test_pipeline_dag():
    r = run_example("pipeline_dag.py")
    assert r.returncode == 0, r.stderr
    assert "pipeline levels" in r.stdout
    assert "shadow prices" in r.stdout


def test_tenant_billing():
    r = run_example("tenant_billing.py")
    assert r.returncode == 0, r.stderr
    assert "cluster bill" in r.stdout
    assert "timeline" in r.stdout
