"""Cross-validation: independent implementations must agree.

* The simulator's LiPS dollar bill must be close to the analytic epoch
  controller's on the same cluster/workload (different execution paths,
  same model).
* LP objective == independent cost evaluation (already covered per-model;
  here at testbed scale).
* The simulator's cost ledger equals a from-first-principles recomputation
  out of its own attempt records.
"""

import pytest

from repro.cluster.builder import build_paper_testbed
from repro.core import SchedulingInput, solve_co_offline
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler, LipsScheduler
from repro.workload.apps import table4_jobs


def test_lp_objective_vs_breakdown_at_scale(paper_cluster):
    w = table4_jobs(origin_stores=list(range(paper_cluster.num_machines)))
    inp = SchedulingInput.from_parts(paper_cluster, w)
    sol = solve_co_offline(inp)
    bd = sol.cost_breakdown(inp)
    assert bd.total == pytest.approx(sol.objective, rel=1e-6)


def test_simulator_cpu_bill_recomputable():
    cluster = build_paper_testbed(10, c1_medium_fraction=0.5, seed=4)
    w = table4_jobs()
    sim = HadoopSimulator(cluster, w, FifoScheduler(), SimConfig(placement_seed=1))
    res = sim.run()
    # recompute the CPU bill from per-machine CPU seconds
    recomputed = sum(
        cpu * cluster.machines[m].cpu_cost
        for m, cpu in res.metrics.machine_cpu_seconds.items()
    )
    assert res.metrics.ledger.category_total("cpu") == pytest.approx(recomputed, rel=1e-9)


def test_simulator_lips_close_to_offline_lp_bound():
    """The offline LP optimum lower-bounds what the simulator can bill.

    LiPS in the simulator faces epochs, rounding, block granularity and a
    zone-aggregated LP, so it cannot beat the offline continuous optimum
    computed with full knowledge.
    """
    cluster = build_paper_testbed(10, c1_medium_fraction=0.5, seed=4, uptime=1e6)
    w = table4_jobs(origin_stores=list(range(10)))
    inp = SchedulingInput.from_parts(cluster, w)
    bound = solve_co_offline(inp).cost_breakdown(inp).real_total

    sim = HadoopSimulator(
        cluster, w, LipsScheduler(epoch_length=3600.0),
        SimConfig(placement_seed=1, speculative=False),
    )
    res = sim.run()
    assert res.metrics.total_cost >= bound * (1 - 1e-6)
    # ...but within a reasonable factor of it (the LP guides the simulator)
    assert res.metrics.total_cost <= bound * 2.5


def test_read_mb_conserved_across_schedulers():
    cluster = build_paper_testbed(10, c1_medium_fraction=0.5, seed=4)
    w = table4_jobs()
    totals = []
    for sched in (FifoScheduler(), LipsScheduler(epoch_length=1800.0)):
        sim = HadoopSimulator(cluster, w, sched, SimConfig(placement_seed=1, speculative=False))
        res = sim.run()
        totals.append(res.metrics.total_read_mb)
    # both schedulers read the full input exactly once (no speculation)
    assert totals[0] == pytest.approx(w.total_input_mb(), rel=1e-9)
    assert totals[1] == pytest.approx(w.total_input_mb(), rel=1e-9)
