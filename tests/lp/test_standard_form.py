"""Unit tests for equality-standard-form conversion."""

import numpy as np
import pytest

from repro.lp.problem import LinearProgram, Sense
from repro.lp.standard_form import to_standard_form


def test_lower_bound_shift_recovered():
    lp = LinearProgram()
    lp.new_var("x", lower=2.0, upper=5.0)
    lp.set_objective(lp.variable_by_name("x") * 1.0)
    std = to_standard_form(lp.assemble())
    # shifted objective constant accounts for c*l
    assert std.objective_constant == pytest.approx(2.0)
    x = std.recover(np.zeros(std.c.shape[0]))
    assert x[0] == pytest.approx(2.0)  # y=0 maps back to the lower bound


def test_free_variable_split_columns():
    lp = LinearProgram()
    lp.new_var("x", lower=-float("inf"))
    std = to_standard_form(lp.assemble())
    kind, cols = std.recovery[0]
    assert kind == "split"
    y = np.zeros(std.c.shape[0])
    y[cols[0]], y[cols[1]] = 3.0, 1.0
    assert std.recover(y)[0] == pytest.approx(2.0)


def test_upper_bound_becomes_row_with_slack():
    lp = LinearProgram()
    lp.new_var("x", upper=4.0)
    std = to_standard_form(lp.assemble())
    # one row (the bound), one structural + one slack column
    assert std.a.shape == (1, 2)
    assert std.b[0] == pytest.approx(4.0)


def test_le_rows_get_slacks():
    lp = LinearProgram()
    x = lp.new_var("x")  # no finite upper: only the constraint row
    lp.add_constraint(2 * x, Sense.LE, 6.0)
    std = to_standard_form(lp.assemble())
    assert std.a.shape == (1, 2)
    # row equilibration divides by max |structural coeff| (= 2)
    assert std.row_scale[0] == pytest.approx(2.0)
    assert std.a[0, 0] == pytest.approx(1.0)
    assert std.a[0, 1] == pytest.approx(0.5)  # slack coefficient, scaled


def test_negative_rhs_rows_normalised():
    lp = LinearProgram()
    x = lp.new_var("x")
    lp.add_constraint(-1.0 * x, Sense.EQ, -3.0)
    std = to_standard_form(lp.assemble())
    assert np.all(std.b >= 0)
    # row was negated: coefficient flips sign
    assert std.a[0, 0] == pytest.approx(1.0)
    assert std.b[0] == pytest.approx(3.0)


def test_rhs_shifted_by_lower_bounds():
    lp = LinearProgram()
    x = lp.new_var("x", lower=1.0)
    lp.add_constraint(2 * x, Sense.LE, 8.0)
    std = to_standard_form(lp.assemble())
    # 2(y+1) <= 8  =>  2y <= 6, equilibrated by 2 => y <= 3
    assert std.b[0] * std.row_scale[0] == pytest.approx(6.0)


def test_row_equilibration_catches_tiny_rows():
    """Regression: a tiny-coefficient infeasible row must not pass phase 1."""
    from repro.lp.result import LPStatus
    from repro.lp.simplex import SimplexBackend

    eps = 5.960464477539063e-08
    lp = LinearProgram()
    v0 = lp.new_var("v0", upper=1.0)
    v1 = lp.new_var("v1", upper=1.0)
    lp.add_constraint(v1 + 0.0, Sense.LE, 0.0)
    lp.add_constraint(-eps * v1, Sense.LE, -eps)  # i.e. v1 >= 1: infeasible
    lp.set_objective(0.0 * v0)
    res = SimplexBackend().solve(lp)
    assert res.status is LPStatus.INFEASIBLE


def test_objective_expansion_on_split_var():
    lp = LinearProgram()
    x = lp.new_var("x", lower=-float("inf"))
    lp.set_objective(3.0 * x)
    std = to_standard_form(lp.assemble())
    kind, (cp, cn) = std.recovery[0]
    assert std.c[cp] == pytest.approx(3.0)
    assert std.c[cn] == pytest.approx(-3.0)
