"""Unit tests for solution validation and cross-backend gap checks."""

import numpy as np
import pytest

from repro.lp.problem import LinearProgram, Sense
from repro.lp.result import LPResult, LPStatus
from repro.lp.validation import check_solution, duality_gap, objective_value


def _model():
    lp = LinearProgram()
    x = lp.new_var("x", upper=2.0)
    y = lp.new_var("y")
    lp.add_constraint(x + y, Sense.GE, 1.0, name="cover")
    lp.add_constraint(x - y, Sense.EQ, 0.0, name="balance")
    lp.set_objective(x + y)
    return lp


def _result(x):
    return LPResult(status=LPStatus.OPTIMAL, objective=float(sum(x)), x=np.asarray(x, float))


def test_feasible_solution_passes():
    lp = _model()
    rep = check_solution(lp, _result([0.5, 0.5]))
    assert rep.feasible
    assert rep.max_violation == 0.0


def test_ge_violation_reported():
    lp = _model()
    rep = check_solution(lp, _result([0.2, 0.2]))
    assert not rep.feasible
    assert any("cover" in v for v in rep.violations)


def test_eq_violation_reported():
    lp = _model()
    rep = check_solution(lp, _result([0.8, 0.2]))
    assert not rep.feasible
    assert any("balance" in v for v in rep.violations)


def test_bound_violation_reported():
    lp = _model()
    rep = check_solution(lp, _result([3.0, 3.0]))
    assert any("upper bound" in v for v in rep.violations)


def test_bound_tolerance_scales_with_magnitude():
    """A 1e9-scale bound violated by well under tol * |bound| is solver noise."""
    lp = LinearProgram()
    x = lp.new_var("x", upper=1e9)
    lp.set_objective(x + 0.0)
    res = LPResult(status=LPStatus.OPTIMAL, objective=1e9, x=np.array([1e9 * (1 + 5e-7)]))
    rep = check_solution(lp, res, tol=1e-6)
    assert rep.feasible, rep.violations


def test_bound_violation_beyond_scaled_tol_still_reported():
    lp = LinearProgram()
    x = lp.new_var("x", upper=1e9)
    lp.set_objective(x + 0.0)
    res = LPResult(status=LPStatus.OPTIMAL, objective=1e9, x=np.array([1e9 * (1 + 1e-5)]))
    rep = check_solution(lp, res, tol=1e-6)
    assert not rep.feasible
    assert any("upper bound" in v for v in rep.violations)


def test_small_scale_bounds_keep_absolute_tolerance():
    lp = LinearProgram()
    lp.new_var("x", upper=1.0)
    lp.set_objective(lp.variable_by_name("x") + 0.0)
    res = LPResult(status=LPStatus.OPTIMAL, objective=1.0, x=np.array([1.0 + 1e-5]))
    assert not check_solution(lp, res, tol=1e-6).feasible


def test_missing_vector_fails():
    lp = _model()
    res = LPResult(status=LPStatus.INFEASIBLE, objective=float("nan"), x=None)
    rep = check_solution(lp, res)
    assert not rep.feasible


def test_duality_gap_zero_for_same_optimum():
    a = _result([0.5, 0.5])
    b = _result([0.5, 0.5])
    lp = _model()
    assert duality_gap(lp, a, b) == pytest.approx(0.0)


def test_duality_gap_requires_optimal():
    lp = _model()
    bad = LPResult(status=LPStatus.ERROR, objective=float("nan"), x=None)
    with pytest.raises(ValueError):
        duality_gap(lp, bad, _result([0.5, 0.5]))


def test_objective_value_matches_model():
    lp = _model()
    assert objective_value(lp, np.array([1.0, 1.0])) == pytest.approx(2.0)
