"""Property-based cross-validation of the two LP backends.

The from-scratch simplex and HiGHS must agree on status and, when optimal,
on objective value — over randomly generated bounded LPs.  Feasible optima
must also pass the independent constraint checker.
"""

from hypothesis import given, settings, strategies as st

from repro.lp.expr import LinExpr
from repro.lp.problem import LinearProgram, Sense
from repro.lp.result import LPStatus
from repro.lp.scipy_backend import HighsBackend
from repro.lp.simplex import SimplexBackend
from repro.lp.validation import check_solution

# Coefficients are either exactly zero or of sane magnitude.  Hypothesis
# otherwise loves subnormal values (1e-270 coefficients, 1e-118 rhs), where
# HiGHS's absolute feasibility tolerance (1e-7) and our equilibrated
# simplex's exact row treatment legitimately disagree — those problems are
# outside any solver's contract.
finite = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.01, max_value=5.0),
    st.floats(min_value=-5.0, max_value=-0.01),
)


@st.composite
def bounded_lp(draw):
    """A random LP with box-bounded variables and <=/>=/== rows."""
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=0, max_value=5))
    lp = LinearProgram("prop")
    vs = []
    for i in range(n):
        upper = draw(st.floats(min_value=0.1, max_value=5.0))
        vs.append(lp.new_var(f"v{i}", lower=0.0, upper=upper))
    for j in range(m):
        coeffs = [draw(finite) for _ in range(n)]
        expr = sum(c * v for c, v in zip(coeffs, vs)) + 0.0
        sense = draw(st.sampled_from([Sense.LE, Sense.GE, Sense.EQ]))
        # keep rhs near the feasible region to hit all three statuses
        point = [draw(st.floats(min_value=0.0, max_value=1.0)) * v.upper for v in vs]
        rhs = sum(c * p for c, p in zip(coeffs, point)) + draw(
            st.floats(min_value=-1.0, max_value=1.0)
        )
        lp.add_constraint(expr, sense, rhs)
    lp.set_objective(sum(draw(finite) * v for v in vs) + 0.0)
    return lp


@given(bounded_lp())
@settings(max_examples=60, deadline=None)
def test_backends_agree(lp):
    a = HighsBackend().solve(lp)
    b = SimplexBackend().solve(lp)
    # box-bounded: unbounded is impossible; both must agree feasible/not
    assert a.status in (LPStatus.OPTIMAL, LPStatus.INFEASIBLE)
    assert a.status == b.status
    if a.is_optimal:
        scale = max(1.0, abs(a.objective))
        assert abs(a.objective - b.objective) <= 1e-6 * scale


@given(bounded_lp())
@settings(max_examples=60, deadline=None)
def test_optimal_solutions_are_feasible(lp):
    for backend in (HighsBackend(), SimplexBackend()):
        res = backend.solve(lp)
        if res.is_optimal:
            report = check_solution(lp, res, tol=1e-6)
            assert report.feasible, (backend.name, report.violations)


@given(bounded_lp(), st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_objective_scaling_invariance(lp, scale):
    """Scaling the objective scales the optimum; the argmin set is stable."""
    base = HighsBackend().solve(lp)
    scaled_obj = lp.objective * scale
    lp2 = LinearProgram("scaled")
    for v in lp.variables:
        lp2.new_var(v.name, lower=v.lower, upper=v.upper)
    for con in lp.constraints:
        expr = LinExpr.zero()
        for i, c in con.coeffs.items():
            expr.add_term(lp2.variables[i], c)
        lp2.add_constraint(expr, con.sense, con.rhs)
    lp2.set_objective(scaled_obj)
    scaled = HighsBackend().solve(lp2)
    assert scaled.status == base.status
    if base.is_optimal:
        tol = max(1.0, abs(base.objective * scale)) * 1e-6
        assert abs(scaled.objective - base.objective * scale) <= tol
