"""Tests for dual values across both backends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp.problem import LinearProgram, Sense
from repro.lp.scipy_backend import HighsBackend
from repro.lp.simplex import SimplexBackend


def _capacity_model():
    """min -x - 2y  s.t.  x + y <= 4,  y <= 3  (both rows bind at optimum)."""
    lp = LinearProgram()
    x = lp.new_var("x")
    y = lp.new_var("y")
    lp.add_constraint(x + y, Sense.LE, 4.0, name="total")
    lp.add_constraint(y + 0.0, Sense.LE, 3.0, name="ycap")
    lp.set_objective(-1.0 * x - 2.0 * y)
    return lp


@pytest.mark.parametrize("backend_cls", [HighsBackend, SimplexBackend])
def test_binding_row_duals(backend_cls):
    res = backend_cls().solve(_capacity_model())
    assert res.is_optimal
    assert res.objective == pytest.approx(-7.0)  # x=1, y=3
    # d(obj)/d(total cap) = -1 (one more unit lets x grow, obj drops by 1)
    assert res.dual_ub[0] == pytest.approx(-1.0)
    # d(obj)/d(ycap) = -1 (swap a unit of x for y, net -1)
    assert res.dual_ub[1] == pytest.approx(-1.0)


@pytest.mark.parametrize("backend_cls", [HighsBackend, SimplexBackend])
def test_slack_row_dual_zero(backend_cls):
    lp = LinearProgram()
    x = lp.new_var("x", upper=1.0)
    lp.add_constraint(x + 0.0, Sense.LE, 50.0, name="loose")
    lp.set_objective(-1.0 * x)
    res = backend_cls().solve(lp)
    assert res.dual_ub[0] == pytest.approx(0.0)


@pytest.mark.parametrize("backend_cls", [HighsBackend, SimplexBackend])
def test_eq_row_dual(backend_cls):
    lp = LinearProgram()
    x = lp.new_var("x")
    y = lp.new_var("y")
    lp.add_constraint(x + y, Sense.EQ, 5.0, name="pin")
    lp.set_objective(2.0 * x + 3.0 * y)
    res = backend_cls().solve(lp)
    assert res.objective == pytest.approx(10.0)  # all mass on x
    # one more unit of rhs costs 2 (the cheaper variable absorbs it)
    assert res.dual_eq[0] == pytest.approx(2.0)


@pytest.mark.parametrize("backend_cls", [HighsBackend, SimplexBackend])
def test_ge_row_dual_sign(backend_cls):
    """GE rows are stored negated; marginals follow the assembled row."""
    lp = LinearProgram()
    x = lp.new_var("x")
    lp.add_constraint(x + 0.0, Sense.GE, 2.0, name="floor")
    lp.set_objective(3.0 * x)
    res = backend_cls().solve(lp)
    assert res.objective == pytest.approx(6.0)
    # assembled as -x <= -2: d(obj)/d(-2) = -3
    assert res.dual_ub[0] == pytest.approx(-3.0)


finite = st.floats(min_value=0.2, max_value=3.0)


@given(st.lists(finite, min_size=2, max_size=5), finite)
@settings(max_examples=40, deadline=None)
def test_strong_duality_on_knapsack_like(costs, cap):
    """pi . b == optimum for a family with a unique non-degenerate optimum."""
    lp = LinearProgram()
    vs = [lp.new_var(f"v{i}") for i in range(len(costs))]
    lp.add_constraint(sum(vs[1:], vs[0] * 1.0), Sense.LE, cap, name="cap")
    lp.add_constraint(sum(vs[1:], vs[0] * 1.0), Sense.GE, cap / 2.0, name="floor")
    lp.set_objective(sum(float(c) * v for c, v in zip(costs, vs)) + 0.0)
    for backend in (HighsBackend(), SimplexBackend()):
        res = backend.solve(lp)
        assert res.is_optimal
        # strong duality: obj == dual_ub . b_ub (vars have no finite uppers,
        # so no bound duals contribute)
        b_ub = np.array([cap, -cap / 2.0])
        assert res.objective == pytest.approx(float(res.dual_ub @ b_ub), abs=1e-7)


def test_shadow_prices_work_with_simplex(small_input):
    """The analysis helper accepts any dual-exporting backend now."""
    from repro.core.analysis import capacity_shadow_prices

    sp_h = capacity_shadow_prices(small_input)
    sp_s = capacity_shadow_prices(small_input, backend=SimplexBackend())
    assert np.allclose(sp_h.machine_cpu, sp_s.machine_cpu, atol=1e-7)
