"""Unit tests for the from-scratch two-phase revised simplex."""

import numpy as np
import pytest

from repro.lp.problem import LinearProgram, Sense
from repro.lp.result import LPStatus
from repro.lp.simplex import SimplexBackend


@pytest.fixture
def backend():
    return SimplexBackend()


def test_simple_minimum(backend):
    lp = LinearProgram()
    x, y = lp.new_var("x"), lp.new_var("y")
    lp.add_constraint(x + y, Sense.GE, 2.0)
    lp.set_objective(x + 2 * y)
    res = backend.solve(lp)
    assert res.is_optimal
    assert res.objective == pytest.approx(2.0)
    assert res["x"] == pytest.approx(2.0)


def test_equality_constraint(backend):
    lp = LinearProgram()
    x, y = lp.new_var("x"), lp.new_var("y")
    lp.add_constraint(x + y, Sense.EQ, 3.0)
    lp.set_objective(2 * x + y)
    res = backend.solve(lp)
    assert res.objective == pytest.approx(3.0)
    assert res["y"] == pytest.approx(3.0)


def test_upper_bounds_respected(backend):
    lp = LinearProgram()
    x = lp.new_var("x", upper=1.5)
    y = lp.new_var("y")
    lp.add_constraint(x + y, Sense.GE, 3.0)
    lp.set_objective(x + 5 * y)
    res = backend.solve(lp)
    assert res.is_optimal
    assert res["x"] == pytest.approx(1.5)
    assert res["y"] == pytest.approx(1.5)


def test_negative_lower_bound(backend):
    lp = LinearProgram()
    x = lp.new_var("x", lower=-2.0, upper=2.0)
    lp.set_objective(x)
    res = backend.solve(lp)
    assert res.objective == pytest.approx(-2.0)


def test_free_variable_split(backend):
    lp = LinearProgram()
    x = lp.new_var("x", lower=-float("inf"))
    lp.add_constraint(x, Sense.GE, -5.0)
    lp.set_objective(x)
    res = backend.solve(lp)
    assert res.objective == pytest.approx(-5.0)


def test_infeasible_detected(backend):
    lp = LinearProgram()
    x = lp.new_var("x", upper=1.0)
    lp.add_constraint(x, Sense.GE, 2.0)
    lp.set_objective(x)
    res = backend.solve(lp)
    assert res.status is LPStatus.INFEASIBLE


def test_unbounded_detected(backend):
    lp = LinearProgram()
    x = lp.new_var("x")
    lp.set_objective(-1.0 * x)
    res = backend.solve(lp)
    assert res.status is LPStatus.UNBOUNDED


def test_redundant_constraints_handled(backend):
    lp = LinearProgram()
    x, y = lp.new_var("x"), lp.new_var("y")
    lp.add_constraint(x + y, Sense.EQ, 2.0)
    lp.add_constraint(2 * x + 2 * y, Sense.EQ, 4.0)  # redundant duplicate
    lp.set_objective(x + 3 * y)
    res = backend.solve(lp)
    assert res.is_optimal
    assert res.objective == pytest.approx(2.0)


def test_degenerate_problem_terminates(backend):
    # many tied vertices: Bland fallback must terminate
    lp = LinearProgram()
    xs = [lp.new_var(f"x{i}", upper=1.0) for i in range(6)]
    for i in range(5):
        lp.add_constraint(xs[i] + xs[i + 1], Sense.GE, 1.0)
    lp.set_objective(sum(xs[1:], xs[0] * 1.0))
    res = backend.solve(lp)
    assert res.is_optimal
    assert res.objective == pytest.approx(3.0, abs=1e-6)


def test_iteration_cap_reported():
    lp = LinearProgram()
    x, y = lp.new_var("x"), lp.new_var("y")
    lp.add_constraint(x + y, Sense.GE, 1.0)
    lp.set_objective(x + y)
    res = SimplexBackend(max_iterations=0).solve(lp)
    assert res.status is LPStatus.ITERATION_LIMIT
    assert "iteration cap" in res.message


def test_no_constraints_nonnegative_objective(backend):
    lp = LinearProgram()
    lp.new_var("x")
    res = backend.solve(lp)
    assert res.is_optimal
    assert res.objective == pytest.approx(0.0)


def test_matches_highs_on_fixed_models(backend):
    from repro.lp.scipy_backend import HighsBackend

    rng = np.random.default_rng(7)
    for trial in range(20):
        lp = LinearProgram(f"m{trial}")
        n = int(rng.integers(2, 6))
        vs = [lp.new_var(f"v{i}", upper=float(rng.uniform(0.5, 4.0))) for i in range(n)]
        for _ in range(int(rng.integers(1, 5))):
            coeffs = rng.uniform(-1.0, 2.0, n)
            expr = sum(float(c) * v for c, v in zip(coeffs, vs))
            lp.add_constraint(expr, Sense.LE, float(rng.uniform(0.5, 5.0)))
        lp.set_objective(sum(float(c) * v for c, v in zip(rng.uniform(-1, 1, n), vs)))
        a = HighsBackend().solve(lp)
        b = backend.solve(lp)
        assert a.status == b.status
        if a.is_optimal:
            assert b.objective == pytest.approx(a.objective, abs=1e-7, rel=1e-7)
