"""Unit tests for the HiGHS backend."""

import pytest

from repro.lp.problem import LinearProgram, Sense
from repro.lp.result import LPStatus
from repro.lp.scipy_backend import HighsBackend


@pytest.fixture
def backend():
    return HighsBackend()


def test_optimal_with_names(backend):
    lp = LinearProgram()
    x = lp.new_var("x")
    y = lp.new_var("y", upper=1.0)
    lp.add_constraint(x + 2 * y, Sense.GE, 2.0)
    lp.set_objective(x + y)
    res = backend.solve(lp)
    assert res.is_optimal
    assert res.by_name.keys() == {"x", "y"}
    assert res.objective == pytest.approx(1.0)  # y=1, x=0


def test_infeasible(backend):
    lp = LinearProgram()
    x = lp.new_var("x", upper=1.0)
    lp.add_constraint(x, Sense.GE, 5.0)
    lp.set_objective(x)
    assert backend.solve(lp).status is LPStatus.INFEASIBLE


def test_unbounded(backend):
    lp = LinearProgram()
    x = lp.new_var("x")
    lp.set_objective(-x)
    assert backend.solve(lp).status is LPStatus.UNBOUNDED


def test_require_optimal_raises(backend):
    lp = LinearProgram()
    x = lp.new_var("x", upper=1.0)
    lp.add_constraint(x, Sense.GE, 5.0)
    lp.set_objective(x)
    with pytest.raises(RuntimeError, match="infeasible"):
        backend.solve(lp).require_optimal()


def test_empty_model_feasible(backend):
    lp = LinearProgram()
    res = backend.solve(lp)
    assert res.is_optimal
    assert res.objective == 0.0


def test_solve_assembled_directly(backend):
    lp = LinearProgram()
    x = lp.new_var("x", upper=3.0)
    lp.add_constraint(x, Sense.GE, 1.0)
    lp.set_objective(2 * x)
    res = backend.solve_assembled(lp.assemble())
    assert res.is_optimal
    assert res.objective == pytest.approx(2.0)
    assert res.by_name == {}  # fast path skips the name map


def test_objective_constant_propagates(backend):
    lp = LinearProgram()
    x = lp.new_var("x", upper=1.0)
    lp.set_objective(x - 4.0)
    res = backend.solve(lp)
    assert res.objective == pytest.approx(-4.0)


def test_equality_and_inequality_mix(backend):
    lp = LinearProgram()
    x, y, z = (lp.new_var(n) for n in "xyz")
    lp.add_constraint(x + y + z, Sense.EQ, 6.0)
    lp.add_constraint(x - y, Sense.LE, 0.0)
    lp.set_objective(x + 2 * y + 3 * z)
    res = backend.solve(lp)
    assert res.is_optimal
    # x and y split the mass; z = 0 at optimum
    assert res["z"] == pytest.approx(0.0, abs=1e-9)
    assert res["x"] + res["y"] == pytest.approx(6.0)
