"""Structural block detection over assembled LPs.

The detector must recover per-job blocks joined by capacity-like coupling
rows — and refuse (return ``None``) whenever the structure would break the
shard relaxation argument, so :mod:`repro.lp.sharded` silently degrades to
the exact monolithic solve.
"""

import numpy as np
from scipy import sparse

from repro.lp.blocks import detect_blocks
from repro.lp.problem import AssembledLP


def assembled(c, a_ub, b_ub, bounds=None, col_labels=None, a_eq=None, b_eq=None):
    """A hand-built AssembledLP (rows as dense lists, default bounds [0, inf))."""
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    a_ub = sparse.csr_matrix(np.asarray(a_ub, dtype=float).reshape(-1, n))
    if bounds is None:
        bounds = np.tile([0.0, np.inf], (n, 1))
    return AssembledLP(
        c=c,
        a_ub=a_ub,
        b_ub=np.asarray(b_ub, dtype=float),
        a_eq=sparse.csr_matrix(np.asarray(a_eq, dtype=float).reshape(-1, n))
        if a_eq is not None
        else sparse.csr_matrix((0, n)),
        b_eq=np.asarray(b_eq, dtype=float) if b_eq is not None else np.zeros(0),
        bounds=np.asarray(bounds, dtype=float),
        col_labels=col_labels,
    )


def two_block_model(**kwargs):
    """Four columns in two blocks, one shared capacity row.

    Rows 0/1 carry a negative coefficient (demand floors), so they are
    structural and merge their block's columns; row 2 is capacity-like and
    spans both blocks; row 3 is capacity-like but touches one block only.
    """
    return assembled(
        c=[1.0, 2.0, 1.0, 3.0],
        a_ub=[
            [-1.0, -1.0, 0.0, 0.0],  # x0 + x1 >= 2
            [0.0, 0.0, -1.0, -1.0],  # x2 + x3 >= 2
            [1.0, 0.0, 1.0, 0.0],  # shared capacity: x0 + x2 <= 3
            [0.0, 1.0, 0.0, 0.0],  # owned capacity: x1 <= 5
        ],
        b_ub=[-2.0, -2.0, 3.0, 5.0],
        **kwargs,
    )


class TestDetection:
    def test_two_blocks_one_coupling_row(self):
        part = detect_blocks(two_block_model())
        assert part is not None and part.num_blocks == 2
        cols = [b.cols.tolist() for b in part.blocks]
        assert cols == [[0, 1], [2, 3]]
        assert part.coupling_rows.tolist() == [2]
        # structural + single-block capacity rows are owned, not coupling
        assert part.blocks[0].rows.tolist() == [0, 3]
        assert part.blocks[1].rows.tolist() == [1]

    def test_empty_row_with_nonneg_rhs_is_trivial(self):
        asm = assembled(
            c=[1.0, 1.0],
            a_ub=[[-1.0, 0.0], [0.0, -1.0], [0.0, 0.0]],
            b_ub=[-1.0, -1.0, 4.0],
        )
        part = detect_blocks(asm)
        assert part is not None and part.num_blocks == 2
        assert part.trivial_rows.tolist() == [2]
        assert part.coupling_rows.size == 0

    def test_block_keys_derive_from_label_subjects(self):
        labels = [("xt", "jobA", 0), ("fake", "jobA"), ("xt", "jobB", 0), ("fake", "jobB")]
        part = detect_blocks(two_block_model(col_labels=labels))
        assert part.blocks[0].key == (repr("jobA"),)
        assert part.blocks[1].key == (repr("jobB"),)

    def test_missing_labels_yield_no_key(self):
        part = detect_blocks(two_block_model())
        assert all(b.key is None for b in part.blocks)


class TestRefusals:
    def test_fairness_row_collapses_to_one_block(self):
        asm = two_block_model()
        fair = sparse.csr_matrix(np.asarray([[-1.0, -1.0, -1.0, -1.0]]))
        asm = assembled(
            c=asm.c,
            a_ub=sparse.vstack([asm.a_ub, fair]).toarray(),
            b_ub=np.concatenate([asm.b_ub, [-1.0]]),
        )
        assert detect_blocks(asm) is None

    def test_equality_rows_disable_decomposition(self):
        asm = two_block_model()
        asm = assembled(
            c=asm.c,
            a_ub=asm.a_ub.toarray(),
            b_ub=asm.b_ub,
            a_eq=[[1.0, 0.0, 0.0, 0.0]],
            b_eq=[1.0],
        )
        assert detect_blocks(asm) is None

    def test_empty_row_with_negative_rhs_is_infeasible(self):
        asm = assembled(
            c=[1.0, 1.0],
            a_ub=[[-1.0, 0.0], [0.0, -1.0], [0.0, 0.0]],
            b_ub=[-1.0, -1.0, -4.0],
        )
        assert detect_blocks(asm) is None

    def test_negative_lower_bound_on_coupled_column(self):
        # x0 participates in the shared capacity row; letting it go negative
        # would break "per-shard usage <= joint usage <= budget"
        bounds = np.tile([0.0, np.inf], (4, 1))
        bounds[0, 0] = -1.0
        assert detect_blocks(two_block_model(bounds=bounds)) is None

    def test_negative_lower_bound_on_uncoupled_column_is_fine(self):
        bounds = np.tile([0.0, np.inf], (4, 1))
        bounds[3, 0] = -1.0  # x3 touches no coupling row
        assert detect_blocks(two_block_model(bounds=bounds)) is not None

    def test_allnonneg_row_with_negative_rhs_is_structural(self):
        # looks like capacity but b < 0: must merge its columns, which here
        # collapses everything to one block -> refuse
        asm = two_block_model()
        a = asm.a_ub.toarray()
        a[2] = [1.0, 0.0, 1.0, 0.0]
        b = asm.b_ub.copy()
        b[2] = -1.0
        assert detect_blocks(assembled(c=asm.c, a_ub=a, b_ub=b)) is None

    def test_min_blocks_floor(self):
        part = detect_blocks(two_block_model(), min_blocks=3)
        assert part is None

    def test_degenerate_models(self):
        no_rows = assembled(c=[1.0, 1.0], a_ub=np.zeros((0, 2)), b_ub=[])
        assert detect_blocks(no_rows) is None


class TestDeterminism:
    def test_partition_is_a_pure_function_of_the_model(self):
        a = detect_blocks(two_block_model())
        b = detect_blocks(two_block_model())
        assert [blk.cols.tolist() for blk in a.blocks] == [
            blk.cols.tolist() for blk in b.blocks
        ]
        assert a.coupling_rows.tolist() == b.coupling_rows.tolist()
