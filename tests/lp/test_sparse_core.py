"""Basis-factorisation engines: both must agree with the explicit inverse.

``DenseInverseEngine`` and ``SparseLUEngine`` sit behind the same
ftran/btran/unit_btran/update/refactor interface; every operation is checked
against dense linear algebra on the same basis matrix, including after a
sequence of pivot updates (the eta file / product-form path).
"""

import numpy as np
import pytest
from scipy import sparse

from repro.lp.sparse_core import (
    DENSE_ENGINE_MAX_ROWS,
    BasisSingularError,
    DenseInverseEngine,
    SparseLUEngine,
    dense_column,
    make_engine,
)

ENGINES = [DenseInverseEngine, SparseLUEngine]


def well_conditioned(m=12, n=20, seed=0):
    """A random CSC matrix whose first ``m`` columns form a solid basis."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, n))
    a[np.abs(a) < 0.8] = 0.0  # realistic sparsity
    # diagonally dominant basis columns -> comfortably invertible
    np.fill_diagonal(a[:, :m], np.diag(a[:, :m]) + m)
    return sparse.csc_matrix(a)


@pytest.fixture(params=ENGINES, ids=[e.kind for e in ENGINES])
def engine_cls(request):
    return request.param


class TestAgainstExplicitInverse:
    def test_ftran_btran_unit_btran(self, engine_cls):
        a = well_conditioned()
        basis = np.arange(12)
        engine = engine_cls(a, basis)
        b_inv = np.linalg.inv(a[:, basis].toarray())
        rng = np.random.default_rng(1)
        v = rng.normal(size=12)
        w = rng.normal(size=12)
        assert np.allclose(engine.ftran(v), b_inv @ v)
        assert np.allclose(engine.btran(w), w @ b_inv)
        for i in (0, 5, 11):
            assert np.allclose(engine.unit_btran(i), b_inv[i])

    def test_update_tracks_basis_exchange(self, engine_cls):
        a = well_conditioned()
        basis = np.arange(12)
        engine = engine_cls(a, basis)
        rng = np.random.default_rng(2)
        # pivot three entering columns in, checking against a fresh inverse
        for entering, leaving in [(13, 2), (16, 7), (18, 2)]:
            direction = engine.ftran(dense_column(a, entering))
            assert abs(direction[leaving]) > 1e-9, "test pivot must be stable"
            engine.update(leaving, direction)
            basis[leaving] = entering
            b_inv = np.linalg.inv(a[:, basis].toarray())
            v = rng.normal(size=12)
            assert np.allclose(engine.ftran(v), b_inv @ v, atol=1e-8)
            assert np.allclose(engine.btran(v), v @ b_inv, atol=1e-8)

    def test_refactor_resets_to_the_new_basis(self, engine_cls):
        a = well_conditioned()
        engine = engine_cls(a, np.arange(12))
        basis = np.arange(12)
        basis[3] = 15
        engine.refactor(a, basis)
        b_inv = np.linalg.inv(a[:, basis].toarray())
        v = np.ones(12)
        assert np.allclose(engine.ftran(v), b_inv @ v)

    def test_singular_basis_raises(self, engine_cls):
        a = well_conditioned()
        basis = np.arange(12)
        basis[1] = 0  # duplicated column -> singular basis matrix
        with pytest.raises(BasisSingularError):
            engine_cls(a, basis)


class TestEtaFile:
    def test_eta_count_grows_and_refactor_drops_it(self):
        a = well_conditioned()
        engine = SparseLUEngine(a, np.arange(12))
        assert engine.eta_count == 0
        d = engine.ftran(dense_column(a, 14))
        engine.update(int(np.argmax(np.abs(d))), d)
        assert engine.eta_count == 1
        engine.refactor(a, np.arange(12))
        assert engine.eta_count == 0

    def test_update_cost_is_sparse(self):
        # an eta stores only the direction's nonzeros off the pivot row
        a = well_conditioned()
        engine = SparseLUEngine(a, np.arange(12))
        direction = np.zeros(12)
        direction[4] = 2.0
        direction[9] = -1.0
        engine.update(4, direction)
        r, idx, vals, piv = engine._etas[0]
        assert r == 4 and piv == 2.0
        assert idx.tolist() == [9] and vals.tolist() == [-1.0]


class TestMakeEngine:
    def test_crossover_by_row_count(self):
        a = well_conditioned()
        basis = np.arange(12)
        assert isinstance(make_engine(a, basis), DenseInverseEngine)
        assert isinstance(
            make_engine(a, basis, dense_max_rows=4), SparseLUEngine
        )
        assert DENSE_ENGINE_MAX_ROWS >= 12  # default keeps tiny LPs dense
