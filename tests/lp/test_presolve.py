"""Tests for LP presolve reductions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp.presolve import PresolveStatus, presolve
from repro.lp.problem import LinearProgram, Sense
from repro.lp.scipy_backend import HighsBackend


def test_fixed_variables_substituted():
    lp = LinearProgram()
    x = lp.new_var("x", lower=2.0, upper=2.0)  # fixed
    y = lp.new_var("y", upper=5.0)
    lp.add_constraint(x + y, Sense.LE, 6.0)
    lp.set_objective(3.0 * x + y)
    res = presolve(lp.assemble())
    assert res.is_feasible
    assert res.fixed_variables == 1
    assert res.reduced.num_variables == 1
    # constant folded: 3 * 2 = 6
    assert res.reduced.objective_constant == pytest.approx(6.0)
    # rhs adjusted: y <= 4
    assert res.reduced.b_ub[0] == pytest.approx(4.0)


def test_restore_maps_back():
    lp = LinearProgram()
    lp.new_var("x", lower=2.0, upper=2.0)
    lp.new_var("y", upper=5.0)
    res = presolve(lp.assemble())
    full = res.restore(np.array([1.5]))
    assert full.tolist() == [2.0, 1.5]


def test_redundant_rows_dropped():
    lp = LinearProgram()
    x = lp.new_var("x", upper=1.0)
    lp.add_constraint(x + 0.0, Sense.LE, 100.0)  # never binding given bounds
    lp.set_objective(x)
    res = presolve(lp.assemble())
    assert res.dropped_rows == 1
    assert res.reduced.a_ub.shape[0] == 0


def test_trivially_infeasible_detected():
    lp = LinearProgram()
    x = lp.new_var("x", lower=1.0, upper=2.0)
    lp.add_constraint(x + 0.0, Sense.LE, 0.5)  # min lhs = 1 > 0.5
    lp.set_objective(x)
    res = presolve(lp.assemble())
    assert res.status is PresolveStatus.INFEASIBLE


def test_empty_ub_row_with_negative_rhs_infeasible():
    lp = LinearProgram()
    x = lp.new_var("x", lower=2.0, upper=2.0)
    lp.add_constraint(x + 0.0, Sense.LE, 1.0)  # becomes 0 <= -1 after fixing
    lp.set_objective(x)
    res = presolve(lp.assemble())
    assert res.status is PresolveStatus.INFEASIBLE
    assert res.reduced is None
    assert res.restore is None


def test_empty_ub_row_inside_interval_slack_still_infeasible():
    # A residual rhs of -5e-7 sits inside the interval-analysis slack
    # (1e-6) but beyond FEASIBILITY_TOL, so only the dedicated empty-row
    # check can prove infeasibility.
    lp = LinearProgram()
    x = lp.new_var("x", lower=1.0, upper=1.0)
    lp.add_constraint(x + 0.0, Sense.LE, 1.0 - 5e-7)
    lp.set_objective(x)
    res = presolve(lp.assemble())
    assert res.status is PresolveStatus.INFEASIBLE


def test_empty_eq_row_with_nonzero_rhs_infeasible():
    lp = LinearProgram()
    x = lp.new_var("x", lower=3.0, upper=3.0)
    lp.add_constraint(x + 0.0, Sense.EQ, 5.0)  # becomes 0 == 2 after fixing
    lp.set_objective(x)
    res = presolve(lp.assemble())
    assert res.status is PresolveStatus.INFEASIBLE


def test_empty_eq_row_with_zero_rhs_dropped():
    lp = LinearProgram()
    x = lp.new_var("x", lower=3.0, upper=3.0)
    lp.add_constraint(x + 0.0, Sense.EQ, 3.0)
    lp.set_objective(x)
    res = presolve(lp.assemble())
    assert res.is_feasible
    assert res.reduced.a_eq.shape[0] == 0


finite = st.floats(min_value=-3.0, max_value=3.0)


@st.composite
def small_lp(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    lp = LinearProgram("pre")
    vs = []
    for i in range(n):
        if draw(st.booleans()):
            val = draw(st.floats(min_value=0.0, max_value=2.0))
            vs.append(lp.new_var(f"v{i}", lower=val, upper=val))
        else:
            vs.append(lp.new_var(f"v{i}", upper=draw(st.floats(min_value=0.5, max_value=4.0))))
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        coeffs = [draw(finite) for _ in range(n)]
        expr = sum(c * v for c, v in zip(coeffs, vs)) + 0.0
        lp.add_constraint(expr, Sense.LE, draw(st.floats(min_value=-1.0, max_value=8.0)))
    lp.set_objective(sum(draw(finite) * v for v in vs) + 0.0)
    return lp


def test_simplex_with_presolve_option(small_input):
    """The simplex backend's presolve path solves scheduling models too."""
    from repro.core.co_offline import solve_co_offline
    from repro.lp.simplex import SimplexBackend

    plain = solve_co_offline(small_input, backend=SimplexBackend())
    pre = solve_co_offline(small_input, backend=SimplexBackend(presolve=True))
    assert pre.objective == pytest.approx(plain.objective, rel=1e-6)


def test_simplex_presolve_detects_infeasible():
    from repro.lp.simplex import SimplexBackend
    from repro.lp.result import LPStatus

    lp = LinearProgram()
    x = lp.new_var("x", lower=1.0, upper=2.0)
    lp.add_constraint(x + 0.0, Sense.LE, 0.5)
    lp.set_objective(x)
    res = SimplexBackend(presolve=True).solve(lp)
    assert res.status is LPStatus.INFEASIBLE
    assert "presolve" in res.message


@given(small_lp())
@settings(max_examples=50, deadline=None)
def test_presolve_preserves_optimum(lp):
    backend = HighsBackend()
    direct = backend.solve(lp)
    res = presolve(lp.assemble())
    if res.status is PresolveStatus.INFEASIBLE:
        assert not direct.is_optimal
        return
    reduced_res = backend.solve_assembled(res.reduced)
    assert reduced_res.status == direct.status
    if direct.is_optimal:
        # 5e-7 absolute: HiGHS reports objectives with ~1e-7-scale noise
        # around zero, which a 1e-7 tolerance sat exactly on top of
        assert reduced_res.objective == pytest.approx(direct.objective, abs=5e-7)
        # restored solution is feasible for the original model
        from repro.lp.validation import check_solution
        from repro.lp.result import LPResult, LPStatus

        full_x = res.restore(reduced_res.x)
        restored = LPResult(status=LPStatus.OPTIMAL, objective=reduced_res.objective, x=full_x)
        assert check_solution(lp, restored, tol=1e-6).feasible
