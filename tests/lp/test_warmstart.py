"""Warm-started epoch solves must be indistinguishable from cold ones.

The incremental pipeline (assembly plan cache -> standard-form cache ->
basis snapshot/repair -> warm simplex) may only change *wall time*, never
results: every epoch objective must match a from-scratch solve within
``1e-7`` relative, under job arrival and departure churn between epochs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.core.co_online import OnlineModelConfig, solve_co_online
from repro.core.model import SchedulingInput
from repro.lp.scipy_backend import HighsBackend
from repro.lp.simplex import SimplexBackend
from repro.perf import IncrementalContext
from repro.workload.job import DataObject, Job, Workload

REL_TOL = 1e-7

#: pool of five jobs churn subsets are drawn from
POOL = tuple(range(5))


def _cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), default_uptime=10_000.0)
    b.add_machine("a0", ecu=2.0, cpu_cost=5.0e-5, zone="za")
    b.add_machine("a1", ecu=3.0, cpu_cost=4.0e-5, zone="za")
    b.add_machine("b0", ecu=5.0, cpu_cost=1.0e-5, zone="zb")
    b.add_machine("b1", ecu=4.0, cpu_cost=2.0e-5, zone="zb")
    return b.build()


def _input_for(cluster, job_ids):
    """SchedulingInput over the given subset of the five-job pool.

    Jobs and data are densely renumbered per subset (the Workload
    contract); stable pool identity — what the warm-start labels key on —
    travels separately via the ``job_keys`` argument of solve_co_online.
    """
    data = [
        DataObject(data_id=i, name=f"d{j}", size_mb=64.0 * (j + 1), origin_store=j % 4)
        for i, j in enumerate(job_ids)
    ]
    jobs = [
        Job(
            job_id=i,
            name=f"j{j}",
            tcp=(10.0 + 7.0 * j) / 64.0,
            data_ids=[i],
            num_tasks=4 + j,
        )
        for i, j in enumerate(job_ids)
    ]
    return SchedulingInput.from_parts(cluster, Workload(jobs=jobs, data=data))


def _assert_stream_matches_cold(epoch_subsets, epoch_length=200.0, shards=None):
    """Solve the subset stream warm (optionally sharded) and cold.

    Every epoch's warm objective must match a from-scratch monolithic
    solve within ``REL_TOL`` — with ``shards`` this additionally exercises
    per-shard basis repair across shard-boundary churn (jobs joining and
    leaving change which blocks exist from one epoch to the next).
    """
    cluster = _cluster()
    config = OnlineModelConfig(epoch_length=epoch_length)
    ctx = IncrementalContext()
    warm_backend = SimplexBackend()
    for job_ids in epoch_subsets:
        inp = _input_for(cluster, job_ids)
        warm = solve_co_online(
            inp,
            config,
            backend=warm_backend,
            incremental=ctx,
            job_keys=list(job_ids),
            shards=shards,
        )
        cold = solve_co_online(inp, config, backend=SimplexBackend())
        scale = max(1.0, abs(cold.objective))
        assert abs(warm.objective - cold.objective) <= REL_TOL * scale, (
            job_ids,
            warm.objective,
            cold.objective,
        )
    return ctx


class TestWarmEqualsCold:
    def test_identical_epochs(self):
        ctx = _assert_stream_matches_cold([(0, 1, 2)] * 4)
        stats = ctx.stats()
        # after the first cold epoch the stream should actually warm-start
        assert stats["warm_solves"] >= 2
        assert stats["assembly_cache_hits"] >= 2
        assert stats["std_cache_hits"] >= 2

    def test_job_arrival(self):
        _assert_stream_matches_cold([(0, 1), (0, 1), (0, 1, 2), (0, 1, 2)])

    def test_job_departure(self):
        _assert_stream_matches_cold([(0, 1, 2, 3), (0, 1, 2, 3), (1, 3), (1, 3)])

    def test_arrival_and_departure_mix(self):
        _assert_stream_matches_cold(
            [(0, 1, 2), (1, 2, 3), (1, 2, 3, 4), (0, 4), (0, 4), (0, 1, 2)]
        )

    def test_warm_pivots_are_saved_on_repeats(self):
        ctx = _assert_stream_matches_cold([(0, 1, 2, 3)] * 4)
        assert ctx.stats()["pivots_saved"] > 0


class TestShardedWarmEqualsCold:
    """Sharded epoch streams under churn: repair must stay exact per shard."""

    def test_identical_epochs_reuse_shard_bases(self):
        ctx = _assert_stream_matches_cold([(0, 1, 2)] * 4, shards=1)
        stats = ctx.stats()
        assert stats["sharded_solves"] + stats["sharded_fallbacks"] == 4
        if stats["sharded_solves"]:
            # repeated epochs must hit the per-block basis store
            assert len(ctx.warm.shard_basis) > 0

    def test_shard_boundary_churn(self):
        # jobs joining/leaving change which blocks exist epoch to epoch;
        # stale shard bases must be repaired or dropped, never change results
        _assert_stream_matches_cold(
            [(0, 1, 2), (1, 2, 3), (1, 2, 3, 4), (0, 4), (0, 4), (0, 1, 2)],
            shards=1,
        )

    def test_departure_then_return(self):
        _assert_stream_matches_cold(
            [(0, 1, 2, 3), (1, 3), (1, 3), (0, 1, 2, 3)], shards=1
        )


@given(
    st.lists(
        st.sets(st.sampled_from(POOL), min_size=1, max_size=5),
        min_size=2,
        max_size=5,
    )
)
@settings(max_examples=25, deadline=None)
def test_random_epoch_deltas_property(subsets):
    """Any churn sequence: warm objectives match cold within tolerance."""
    _assert_stream_matches_cold([tuple(sorted(s)) for s in subsets])


@given(
    st.lists(
        st.sets(st.sampled_from(POOL), min_size=1, max_size=5),
        min_size=2,
        max_size=4,
    )
)
@settings(max_examples=10, deadline=None)
def test_random_epoch_deltas_sharded_property(subsets):
    """Sharded + warm under any churn: still matches cold within 1e-7."""
    _assert_stream_matches_cold([tuple(sorted(s)) for s in subsets], shards=1)


class TestNonWarmBackends:
    def test_highs_uses_cache_but_stays_cold(self):
        cluster = _cluster()
        config = OnlineModelConfig(epoch_length=200.0)
        ctx = IncrementalContext()
        backend = HighsBackend()
        objs = [
            solve_co_online(
                cluster_input, config, backend=backend, incremental=ctx, job_keys=(0, 1)
            ).objective
            for cluster_input in [_input_for(cluster, (0, 1))] * 3
        ]
        assert objs[0] == pytest.approx(objs[1]) == pytest.approx(objs[2])
        stats = ctx.stats()
        # assembly plans are shared; the warm-start machinery never engages
        assert stats["assembly_cache_hits"] >= 1
        assert stats["warm_solves"] == 0 and stats["cold_solves"] == 0

    def test_incremental_none_is_plain_cold_path(self):
        cluster = _cluster()
        config = OnlineModelConfig(epoch_length=200.0)
        a = solve_co_online(_input_for(cluster, (0, 2)), config, backend=SimplexBackend())
        b = solve_co_online(_input_for(cluster, (0, 2)), config, backend=SimplexBackend())
        assert a.objective == pytest.approx(b.objective)


class TestWarmStartContext:
    def test_stats_keys(self):
        stats = IncrementalContext().stats()
        assert {
            "assembly_cache_hits",
            "assembly_cache_misses",
            "warm_solves",
            "cold_solves",
            "fallbacks",
            "pivots_saved",
            "std_cache_hits",
            "std_cache_misses",
        } <= set(stats)
        assert all(v == 0 for v in stats.values())

    def test_fake_fraction_consistency_under_warm(self):
        """Tight epochs park work on the fake node identically warm or cold."""
        cluster = _cluster()
        config = OnlineModelConfig(epoch_length=5.0)
        ctx = IncrementalContext()
        backend = SimplexBackend()
        for _ in range(3):
            inp = _input_for(cluster, (0, 1, 2))
            warm = solve_co_online(
                inp, config, backend=backend, incremental=ctx, job_keys=(0, 1, 2)
            )
            cold = solve_co_online(inp, config, backend=SimplexBackend())
            assert np.allclose(warm.fake.sum(), cold.fake.sum(), atol=1e-6)
