"""Unit tests for the linear-expression algebra."""

import pytest

from repro.lp.expr import LinExpr, Variable


def v(i, name=None, lower=0.0, upper=float("inf")):
    return Variable(index=i, name=name or f"x{i}", lower=lower, upper=upper)


class TestVariable:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            Variable(index=0, name="bad", lower=2.0, upper=1.0)

    def test_add_two_variables(self):
        e = v(0) + v(1)
        assert e.coeffs == {0: 1.0, 1: 1.0}
        assert e.constant == 0.0

    def test_scalar_multiply(self):
        e = 3 * v(0)
        assert e.coeffs == {0: 3.0}

    def test_right_multiply(self):
        e = v(0) * 2.5
        assert e.coeffs == {0: 2.5}

    def test_negate(self):
        e = -v(1)
        assert e.coeffs == {1: -1.0}

    def test_subtract_variable(self):
        e = v(0) - v(1)
        assert e.coeffs == {0: 1.0, 1: -1.0}

    def test_rsub_constant(self):
        e = 5 - v(0)
        assert e.coeffs == {0: -1.0}
        assert e.constant == 5.0

    def test_add_constant(self):
        e = v(0) + 7
        assert e.constant == 7.0


class TestLinExpr:
    def test_zero(self):
        z = LinExpr.zero()
        assert z.coeffs == {}
        assert z.constant == 0.0

    def test_from_terms_accumulates_duplicates(self):
        e = LinExpr.from_terms([(v(0), 1.0), (v(0), 2.0), (v(1), -1.0)], constant=4.0)
        assert e.coeffs == {0: 3.0, 1: -1.0}
        assert e.constant == 4.0

    def test_add_merges_coefficients(self):
        a = LinExpr({0: 1.0, 1: 2.0}, 1.0)
        b = LinExpr({1: 3.0, 2: -1.0}, 2.0)
        c = a + b
        assert c.coeffs == {0: 1.0, 1: 5.0, 2: -1.0}
        assert c.constant == 3.0

    def test_add_does_not_mutate_operands(self):
        a = LinExpr({0: 1.0}, 0.0)
        b = LinExpr({0: 2.0}, 0.0)
        _ = a + b
        assert a.coeffs == {0: 1.0}
        assert b.coeffs == {0: 2.0}

    def test_scale(self):
        e = LinExpr({0: 2.0}, 3.0) * -2.0
        assert e.coeffs == {0: -4.0}
        assert e.constant == -6.0

    def test_scale_by_non_number_rejected(self):
        with pytest.raises(TypeError):
            LinExpr({0: 1.0}) * "2"

    def test_coerce_rejects_bad_type(self):
        with pytest.raises(TypeError):
            LinExpr({0: 1.0}) + "x"

    def test_value_evaluation(self):
        e = 2 * v(0) + 3 * v(1) + 1.0
        assert e.value({0: 1.0, 1: 2.0}) == pytest.approx(9.0)

    def test_nonzero_terms_drops_exact_zeros(self):
        e = LinExpr({0: 0.0, 1: 1.0})
        assert e.nonzero_terms() == {1: 1.0}

    def test_add_term_chains(self):
        e = LinExpr.zero().add_term(v(0), 1.0).add_term(v(0), 2.0)
        assert e.coeffs == {0: 3.0}

    def test_sum_builtin(self):
        e = sum(v(i) for i in range(3)) + 0.0
        assert e.coeffs == {0: 1.0, 1: 1.0, 2: 1.0}

    def test_copy_is_independent(self):
        a = LinExpr({0: 1.0}, 1.0)
        b = a.copy()
        b.add_term(v(0), 1.0)
        assert a.coeffs == {0: 1.0}
