"""Sharded solves must be invisible: same results, certified, or fallback.

``solve_sharded`` may change how fast an epoch model is solved, never what
is computed: objectives match the monolithic solve within ``GAP_RTOL``,
merged solutions are feasible, anything uncertifiable falls back, and the
serial (``shards=1``) and pooled (``shards>=2``) paths produce identical
solutions bit for bit.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.lp.problem import AssembledLP
from repro.lp.result import LPStatus
from repro.lp.scipy_backend import HighsBackend
from repro.lp.sharded import GAP_RTOL, resolve_shards, solve_sharded
from repro.lp.simplex import SimplexBackend
from repro.lp.warmstart import WarmStartContext


def assembled(c, a_ub, b_ub, col_labels=None):
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    return AssembledLP(
        c=c,
        a_ub=sparse.csr_matrix(np.asarray(a_ub, dtype=float).reshape(-1, n)),
        b_ub=np.asarray(b_ub, dtype=float),
        a_eq=sparse.csr_matrix((0, n)),
        b_eq=np.zeros(0),
        bounds=np.tile([0.0, np.inf], (n, 1)),
        col_labels=col_labels,
    )


def contention_model(cap=3.0, n_blocks=3):
    """``n_blocks`` jobs with a cheap and a dear machine sharing capacity.

    Each block must cover demand 2 with variables (cheap, dear); every
    cheap variable draws on one shared capacity row of budget ``cap``.
    With ``cap < 2 * n_blocks`` the round-0 relaxation oversubscribes the
    row and the Benders reconcile loop has to run.
    """
    n = 2 * n_blocks
    c = np.zeros(n)
    rows, b = [], []
    labels = []
    for k in range(n_blocks):
        cheap, dear = 2 * k, 2 * k + 1
        c[cheap] = 1.0 + 0.25 * k  # distinct prices -> unique optimum
        c[dear] = 4.0 + 0.5 * k
        demand = np.zeros(n)
        demand[[cheap, dear]] = -1.0
        rows.append(demand)
        b.append(-2.0)
        labels += [("xt", f"job{k}", 0), ("fake", f"job{k}")]
    shared = np.zeros(n)
    shared[::2] = 1.0  # all cheap variables share one capacity row
    rows.append(shared)
    b.append(cap)
    return assembled(c, rows, b, col_labels=labels)


def monolithic_objective(asm):
    res = SimplexBackend().solve_assembled(asm)
    assert res.status is LPStatus.OPTIMAL
    return res.objective


class TestResolveShards:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "7")
        assert resolve_shards(2) == 2
        assert resolve_shards(0) == 0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert resolve_shards() == 3
        monkeypatch.setenv("REPRO_SHARDS", "garbage")
        assert resolve_shards() == 0
        monkeypatch.delenv("REPRO_SHARDS")
        assert resolve_shards() == 0

    def test_negative_clamps_to_zero(self):
        assert resolve_shards(-4) == 0


class TestExactness:
    def test_round0_accepts_when_capacity_is_slack(self):
        asm = contention_model(cap=100.0)
        warm = WarmStartContext()
        res = solve_sharded(asm, backend=SimplexBackend(), shards=1, warm=warm)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(monolithic_objective(asm), rel=1e-9)
        assert res.backend.endswith("+sharded")
        assert warm.sharded_solves == 1 and warm.sharded_fallbacks == 0
        # slack capacity: no reconcile round needed
        assert warm.shard_resolves == 0

    def test_benders_reconciles_contended_capacity(self):
        asm = contention_model(cap=3.0)
        warm = WarmStartContext()
        res = solve_sharded(asm, backend=SimplexBackend(), shards=1, warm=warm)
        mono = monolithic_objective(asm)
        assert res.status is LPStatus.OPTIMAL
        assert warm.sharded_solves == 1 and warm.sharded_fallbacks == 0
        assert warm.shard_resolves > 0  # the loop actually ran
        assert abs(res.objective - mono) <= GAP_RTOL * max(1.0, abs(mono))
        # the merged solution must respect every joint constraint
        slack = asm.b_ub - asm.a_ub @ res.x
        assert np.all(slack >= -1e-6)

    @pytest.mark.parametrize("cap", [2.5, 4.0, 5.5])
    def test_equivalence_across_contention_levels(self, cap):
        asm = contention_model(cap=cap, n_blocks=4)
        res = solve_sharded(asm, backend=SimplexBackend(), shards=1)
        mono = monolithic_objective(asm)
        assert abs(res.objective - mono) <= GAP_RTOL * max(1.0, abs(mono))

    def test_highs_backend_also_shards(self):
        asm = contention_model(cap=3.0)
        warm = WarmStartContext()
        res = solve_sharded(asm, backend=HighsBackend(), shards=1, warm=warm)
        mono = monolithic_objective(asm)
        assert warm.sharded_solves == 1
        assert abs(res.objective - mono) <= GAP_RTOL * max(1.0, abs(mono))

    def test_shard_bases_are_kept_per_block_key(self):
        asm = contention_model(cap=3.0)
        warm = WarmStartContext()
        solve_sharded(asm, backend=SimplexBackend(), shards=1, warm=warm)
        assert len(warm.shard_basis) > 0
        # a second solve of the same model warm-starts every shard
        before = warm.shard_solves
        solve_sharded(asm, backend=SimplexBackend(), shards=1, warm=warm)
        assert warm.shard_solves > before


class TestFallbacks:
    def test_shards_zero_is_the_plain_backend(self):
        asm = contention_model()
        res = solve_sharded(asm, backend=SimplexBackend(), shards=0)
        assert res.backend == SimplexBackend().name
        assert res.objective == pytest.approx(monolithic_objective(asm))

    def test_non_decomposable_model_falls_back(self):
        asm = contention_model()
        # a structural row across all blocks collapses the partition
        tie = np.zeros(asm.num_variables)
        tie[:] = -1.0
        asm = assembled(
            asm.c,
            sparse.vstack([asm.a_ub, sparse.csr_matrix(tie)]).toarray(),
            np.concatenate([asm.b_ub, [-1.0]]),
        )
        warm = WarmStartContext()
        res = solve_sharded(asm, backend=SimplexBackend(), shards=1, warm=warm)
        assert warm.sharded_fallbacks == 1 and warm.sharded_solves == 0
        assert res.objective == pytest.approx(monolithic_objective(asm))

    def test_presolve_backend_falls_back(self):
        # presolve'd backends drop duals, which the reconcile cuts need
        asm = contention_model()
        warm = WarmStartContext()
        backend = SimplexBackend(presolve=True)
        res = solve_sharded(asm, backend=backend, shards=1, warm=warm)
        assert warm.sharded_fallbacks == 1
        assert res.objective == pytest.approx(monolithic_objective(asm))

    def test_infeasible_shard_falls_back_to_monolithic_verdict(self):
        # demand no machine can cover within bounds: joint model infeasible
        asm = assembled(
            c=[1.0, 1.0, 1.0, 1.0],
            a_ub=[
                [-1.0, -1.0, 0.0, 0.0],
                [0.0, 0.0, -1.0, -1.0],
                [1.0, 1.0, 0.0, 0.0],  # block-0 usage cap below its demand
                [1.0, 0.0, 1.0, 0.0],
            ],
            b_ub=[-2.0, -2.0, 1.0, 10.0],
        )
        res = solve_sharded(asm, backend=SimplexBackend(), shards=1)
        assert res.status is LPStatus.INFEASIBLE


class TestSerialPoolIdentity:
    def test_pool_solution_is_bit_identical_to_serial(self):
        asm = contention_model(cap=3.0, n_blocks=3)
        serial = solve_sharded(asm, backend=SimplexBackend(), shards=1)
        pooled = solve_sharded(asm, backend=SimplexBackend(), shards=2)
        assert serial.objective == pooled.objective
        assert np.array_equal(serial.x, pooled.x)
        assert serial.iterations == pooled.iterations
