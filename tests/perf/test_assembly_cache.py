"""The assembly plan cache must be invisible except for speed."""

import numpy as np
import pytest

from repro.core.assembly import AssemblyCache, ModelAssembler
from repro.obs.registry import MetricsRegistry, use_registry


def _assembler(small_input):
    return ModelAssembler(
        small_input,
        include_xd=True,
        horizon=500.0,
        include_fake=True,
        epoch_bandwidth=True,
    )


class TestAssemblyCache:
    def test_hit_reproduces_identical_matrices(self, small_input):
        cache = AssemblyCache()
        cold = _assembler(small_input).build()
        first = _assembler(small_input).build(cache=cache)
        second = _assembler(small_input).build(cache=cache)
        assert cache.misses == 1 and cache.hits == 1
        for asm in (first, second):
            assert (asm.a_ub != cold.a_ub).nnz == 0
            np.testing.assert_array_equal(asm.b_ub, cold.b_ub)
            np.testing.assert_array_equal(asm.c, cold.c)

    def test_hit_shares_index_arrays(self, small_input):
        """Hits hand back the plan's exact index arrays (identity), which
        downstream identity-keyed caches rely on."""
        cache = AssemblyCache()
        first = _assembler(small_input).build(cache=cache)
        second = _assembler(small_input).build(cache=cache)
        assert second.a_ub.indices is first.a_ub.indices
        assert second.a_ub.indptr is first.a_ub.indptr

    def test_structural_change_misses(self, small_input):
        cache = AssemblyCache()
        _assembler(small_input).build(cache=cache)
        other = ModelAssembler(
            small_input,
            include_xd=True,
            horizon=500.0,
            include_fake=True,
            epoch_bandwidth=False,
        )
        other.build(cache=cache)
        assert cache.misses == 2 and cache.hits == 0

    def test_counters_reach_registry(self, small_input):
        registry = MetricsRegistry()
        cache = AssemblyCache()
        with use_registry(registry):
            _assembler(small_input).build(cache=cache)
            _assembler(small_input).build(cache=cache)
        names = {m["name"]: m for m in registry.dump()}
        assert "assembly.cache_hits" in names
        assert "assembly.cache_misses" in names


class TestLabels:
    def test_column_labels_cover_every_column(self, small_input):
        assembler = _assembler(small_input)
        asm = assembler.build(job_keys=list(range(small_input.num_jobs)))
        assert asm.col_labels is not None
        assert len(asm.col_labels) == asm.num_variables
        assert len(set(asm.col_labels)) == asm.num_variables

    def test_row_labels_cover_every_ub_row(self, small_input):
        assembler = _assembler(small_input)
        asm = assembler.build(job_keys=list(range(small_input.num_jobs)))
        assert asm.row_labels_ub is not None
        assert len(asm.row_labels_ub) == asm.a_ub.shape[0]
        assert len(set(asm.row_labels_ub)) == asm.a_ub.shape[0]

    def test_job_keys_length_is_validated(self, small_input):
        assembler = _assembler(small_input)
        with pytest.raises(ValueError):
            assembler.build(job_keys=[0])
