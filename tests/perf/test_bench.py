"""``python -m repro bench`` — scenario shape, schema and the gate."""

import json

import pytest

from repro.cli import main
from repro.perf.bench import REL_TOL, SCHEMA, build_bench_parser, build_scenario

#: top-level keys every repro.bench/1 document must carry
SCHEMA_KEYS = {
    "schema",
    "quick",
    "scenario",
    "cold",
    "incremental",
    "speedup",
    "equivalence",
    "highs",
    "sweep",
    "gate",
}


class TestScenario:
    def test_quick_scenario_shape(self):
        cluster, workload, epoch_length, meta = build_scenario(quick=True)
        assert meta["machines"] == 12
        assert cluster.num_machines == 12
        assert len(workload.jobs) == meta["jobs"] == 2
        assert epoch_length == meta["epoch_length_s"] == 60.0

    def test_full_scenario_meets_acceptance_floor(self):
        _, _, _, meta = build_scenario(quick=False)
        # the acceptance criterion demands >= 20 machines and >= 8 epochs
        assert meta["machines"] >= 20
        assert meta["epochs_target"] >= 8

    def test_scenarios_are_deterministic(self):
        _, w1, _, _ = build_scenario(quick=True)
        _, w2, _, _ = build_scenario(quick=True)
        assert [j.tcp for j in w1.jobs] == [j.tcp for j in w2.jobs]


class TestParser:
    def test_defaults(self):
        args = build_bench_parser().parse_args([])
        assert args.out == "BENCH_epoch.json"
        assert not args.quick and args.workers is None

    def test_flags(self):
        args = build_bench_parser().parse_args(
            ["--quick", "--out", "x.json", "--workers", "3"]
        )
        assert args.quick and args.out == "x.json" and args.workers == 3


class TestQuickBenchEndToEnd:
    def test_quick_bench_writes_schema_and_passes_gate(self, tmp_path, capsys):
        out = tmp_path / "BENCH_epoch.json"
        code = main(["bench", "--quick", "--out", str(out)])
        assert code == 0, capsys.readouterr()
        doc = json.loads(out.read_text())
        assert set(doc) == SCHEMA_KEYS
        assert doc["schema"] == SCHEMA
        assert doc["quick"] is True
        assert doc["gate"]["ok"] is True
        # the whole point: incremental must beat cold, with cold-equal results
        assert doc["speedup"] >= 1.0
        assert doc["equivalence"]["max_rel_objective_delta"] <= REL_TOL
        assert doc["cold"]["epochs"] == doc["incremental"]["epochs"] >= 8
        stats = doc["incremental"]["stats"]
        assert stats["warm_solves"] > 0
        assert stats["assembly_cache_hits"] > 0
        assert doc["sweep"]["results_identical"] is True
