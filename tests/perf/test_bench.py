"""``python -m repro bench`` — scenario shape, schema and the gate."""

import json

import pytest

from repro.cli import main
from repro.perf.bench import (
    HISTORY_SCHEMA,
    REL_TOL,
    SCHEMA,
    append_history,
    build_bench_parser,
    build_block_scenario,
    build_scenario,
    history_row,
    resolve_bench_shards,
    scaling_history_rows,
)

#: top-level keys every repro.bench/1 document must carry
SCHEMA_KEYS = {
    "schema",
    "quick",
    "scenario",
    "cold",
    "incremental",
    "speedup",
    "equivalence",
    "highs",
    "sweep",
    "sharded",
    "scaling",
    "gate",
}


class TestScenario:
    def test_quick_scenario_shape(self):
        cluster, workload, epoch_length, meta = build_scenario(quick=True)
        assert meta["machines"] == 12
        assert cluster.num_machines == 12
        assert len(workload.jobs) == meta["jobs"] == 2
        assert epoch_length == meta["epoch_length_s"] == 60.0

    def test_full_scenario_meets_acceptance_floor(self):
        _, _, _, meta = build_scenario(quick=False)
        # the acceptance criterion demands >= 20 machines and >= 8 epochs
        assert meta["machines"] >= 20
        assert meta["epochs_target"] >= 8

    def test_scenarios_are_deterministic(self):
        _, w1, _, _ = build_scenario(quick=True)
        _, w2, _, _ = build_scenario(quick=True)
        assert [j.tcp for j in w1.jobs] == [j.tcp for j in w2.jobs]

    def test_block_scenario_shape(self):
        cluster, workload, epoch_length, meta = build_block_scenario(
            machines=20, n_jobs=4, epochs_target=2
        )
        assert cluster.num_machines == meta["machines"] == 20
        # stores are scarce (one per job), so the LP stays block-decomposable
        # in size rather than exploding to O(data x machines^2)
        assert cluster.num_stores == meta["stores"] == 4
        assert len(workload.jobs) == meta["jobs"] == 4
        assert epoch_length == meta["epoch_length_s"]

    def test_block_scenario_is_deterministic(self):
        _, w1, _, _ = build_block_scenario(machines=20, n_jobs=4)
        _, w2, _, _ = build_block_scenario(machines=20, n_jobs=4)
        assert [j.tcp for j in w1.jobs] == [j.tcp for j in w2.jobs]


class TestParser:
    def test_defaults(self):
        args = build_bench_parser().parse_args([])
        assert args.out == "BENCH_epoch.json"
        assert not args.quick and args.workers is None
        assert args.history == "BENCH_history.jsonl" and not args.no_history
        assert args.trace is None and args.metrics is None
        # sharded/scaling sections are opt-in
        assert args.shards is None and not args.scaling

    def test_flags(self):
        args = build_bench_parser().parse_args(
            ["--quick", "--out", "x.json", "--workers", "3",
             "--history", "h.jsonl", "--trace", "t.jsonl", "--metrics", "m.json"]
        )
        assert args.quick and args.out == "x.json" and args.workers == 3
        assert args.history == "h.jsonl"
        assert args.trace == "t.jsonl" and args.metrics == "m.json"

    def test_shards_flag(self):
        # bare --shards means "auto-pick"; an explicit count passes through
        assert build_bench_parser().parse_args(["--shards"]).shards == 0
        assert build_bench_parser().parse_args(["--shards", "4"]).shards == 4
        assert build_bench_parser().parse_args(["--scaling"]).scaling is True

    def test_resolve_bench_shards(self):
        assert resolve_bench_shards(4) == 4
        assert resolve_bench_shards(1) == 1
        # auto never exceeds 8 and is always at least 1
        assert 1 <= resolve_bench_shards(0) <= 8


#: a minimal repro.bench/1 document with every field history_row reads
FAKE_DOC = {
    "quick": True,
    "scenario": {"machines": 12},
    "cold": {"epochs": 8, "wall_s": 2.0},
    "incremental": {"wall_s": 1.0},
    "speedup": 2.0,
    "highs": {"cold_wall_s": 0.5, "presolve_wall_s": 0.25},
    "sweep": {"serial_points_per_s": 10.0, "parallel_points_per_s": 30.0},
    "gate": {"ok": True},
}


class TestHistory:
    def test_row_schema_and_fields(self):
        row = history_row(FAKE_DOC)
        assert row["schema"] == HISTORY_SCHEMA == "repro.bench-history/1"
        assert row["ts"].endswith("+00:00")  # real UTC timestamp
        assert row["machines"] == 12 and row["epochs"] == 8
        assert row["speedup"] == 2.0 and row["gate_ok"] is True

    def test_append_is_append_only_jsonl(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(FAKE_DOC, path)
        append_history(FAKE_DOC, path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 2
        assert all(r["schema"] == HISTORY_SCHEMA for r in rows)

    def test_sharded_speedup_rides_on_the_main_row(self):
        assert history_row(FAKE_DOC)["sharded_speedup"] is None
        doc = dict(FAKE_DOC, sharded={"speedup": 2.5})
        assert history_row(doc)["sharded_speedup"] == 2.5

    def test_scaling_rows_one_per_size(self, tmp_path):
        doc = dict(
            FAKE_DOC,
            scaling=[
                {"machines": 20, "events": 100, "events_per_s": 50.0},
                {"machines": 100, "events": 900, "events_per_s": 45.0},
            ],
        )
        rows = scaling_history_rows(doc)
        assert [r["machines"] for r in rows] == [20, 100]
        assert all(
            r["schema"] == HISTORY_SCHEMA and r["kind"] == "scaling"
            for r in rows
        )
        # append_history interleaves them after the main row
        path = tmp_path / "BENCH_history.jsonl"
        append_history(doc, path)
        kinds = [
            json.loads(line)["kind"] for line in path.read_text().splitlines()
        ]
        assert kinds == ["bench", "scaling", "scaling"]
        assert scaling_history_rows(FAKE_DOC) == []


class TestQuickBenchEndToEnd:
    def test_quick_bench_writes_schema_and_passes_gate(self, tmp_path, capsys):
        out = tmp_path / "BENCH_epoch.json"
        history = tmp_path / "BENCH_history.jsonl"
        code = main(["bench", "--quick", "--out", str(out),
                     "--history", str(history)])
        assert code == 0, capsys.readouterr()
        (row,) = [json.loads(line) for line in history.read_text().splitlines()]
        assert row["schema"] == HISTORY_SCHEMA and row["quick"] is True
        doc = json.loads(out.read_text())
        assert set(doc) == SCHEMA_KEYS
        assert doc["schema"] == SCHEMA
        assert doc["quick"] is True
        assert doc["gate"]["ok"] is True
        # the whole point: incremental must beat cold, with cold-equal results
        assert doc["speedup"] >= 1.0
        assert doc["equivalence"]["max_rel_objective_delta"] <= REL_TOL
        assert doc["cold"]["epochs"] == doc["incremental"]["epochs"] >= 8
        stats = doc["incremental"]["stats"]
        assert stats["warm_solves"] > 0
        assert stats["assembly_cache_hits"] > 0
        assert doc["sweep"]["results_identical"] is True
        # opt-in sections stay null (but present) when not requested
        assert doc["sharded"] is None and doc["scaling"] is None
