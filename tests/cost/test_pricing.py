"""Unit tests for pricing primitives and the Figure 1 break-even rule."""

import pytest

from repro.cost.pricing import cpu_cost, move_data_break_even, transfer_cost


class TestBasicPricing:
    def test_cpu_cost(self):
        assert cpu_cost(100.0, 2e-5) == pytest.approx(2e-3)

    def test_transfer_cost(self):
        assert transfer_cost(64.0, 1e-5) == pytest.approx(6.4e-4)

    @pytest.mark.parametrize("fn", [cpu_cost, transfer_cost])
    def test_negative_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(-1.0, 1.0)
        with pytest.raises(ValueError):
            fn(1.0, -1.0)


class TestBreakEven:
    def test_paper_inequality_exact(self):
        # move iff c*a > c*b + d
        be = move_data_break_even(tcp=1.0, src_cpu_price=3.0, dst_cpu_price=1.0, transfer_price_per_mb=1.0)
        assert be.should_move  # 3 > 1 + 1
        be2 = move_data_break_even(1.0, 2.0, 1.0, 1.0)
        assert not be2.should_move  # 2 > 2 is false (strict)

    def test_saving_per_mb(self):
        be = move_data_break_even(2.0, 3.0, 1.0, 1.0)
        assert be.saving_per_mb == pytest.approx(2.0 * 3.0 - (2.0 * 1.0 + 1.0))

    def test_relative_saving_bounded_by_one(self):
        be = move_data_break_even(10.0, 5.0, 0.0, 0.0)
        assert be.relative_saving == pytest.approx(1.0)

    def test_zero_tcp_never_moves(self):
        be = move_data_break_even(0.0, 100.0, 0.0, 1.0)
        assert not be.should_move
        assert be.relative_saving == 0.0

    def test_io_bound_needs_higher_ratio_than_cpu_bound(self):
        d, b = 0.5, 1.0
        grep = move_data_break_even(0.3, 2.0 * b, b, d)
        wordcount = move_data_break_even(1.4, 2.0 * b, b, d)
        assert wordcount.saving_per_mb > grep.saving_per_mb

    def test_negative_tcp_rejected(self):
        with pytest.raises(ValueError):
            move_data_break_even(-1.0, 1.0, 1.0, 1.0)
