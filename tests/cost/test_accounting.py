"""Unit tests for the cost ledger."""

import pytest

from repro.cost.accounting import CPU, PLACEMENT_TRANSFER, RUNTIME_TRANSFER, CostLedger, CostRecord


@pytest.fixture
def ledger():
    l = CostLedger()
    l.charge_cpu(1.0, job_id=0, machine_id=0)
    l.charge_cpu(2.0, job_id=1, machine_id=0)
    l.charge_runtime_transfer(0.5, job_id=0, machine_id=1, store_id=2)
    l.charge_placement_transfer(0.25, store_id=2)
    return l


def test_total(ledger):
    assert ledger.total == pytest.approx(3.75)


def test_totals_by_category(ledger):
    cats = ledger.total_by_category()
    assert cats[CPU] == pytest.approx(3.0)
    assert cats[RUNTIME_TRANSFER] == pytest.approx(0.5)
    assert cats[PLACEMENT_TRANSFER] == pytest.approx(0.25)


def test_conservation_across_slices(ledger):
    """Category totals and per-machine/job slices each sum to the whole."""
    assert sum(ledger.total_by_category().values()) == pytest.approx(ledger.total)
    by_job = ledger.by_job()
    # placement transfer carries no job: job slices cover all but 0.25
    assert sum(by_job.values()) == pytest.approx(ledger.total - 0.25)


def test_per_job_attribution(ledger):
    assert ledger.total_for_job(0) == pytest.approx(1.5)
    assert ledger.total_for_job(1) == pytest.approx(2.0)
    assert ledger.total_for_job(99) == 0.0


def test_per_machine_attribution(ledger):
    assert ledger.total_for_machine(0) == pytest.approx(3.0)
    assert ledger.by_machine() == {0: pytest.approx(3.0), 1: pytest.approx(0.5)}


def test_merge_folds_records(ledger):
    other = CostLedger()
    other.charge_cpu(10.0, job_id=7)
    ledger.merge(other)
    assert ledger.total == pytest.approx(13.75)
    assert ledger.total_for_job(7) == pytest.approx(10.0)


def test_negative_charge_rejected():
    with pytest.raises(ValueError):
        CostRecord(category=CPU, amount=-1.0)


def test_len_counts_records(ledger):
    assert len(ledger) == 4
