"""Tests for multi-tenant chargeback allocation."""

import pytest

from repro.cost.accounting import CostLedger
from repro.cost.chargeback import chargeback
from repro.workload.job import Job, Workload


@pytest.fixture
def workload():
    jobs = [
        Job(job_id=0, name="a0", tcp=0.0, cpu_seconds_noinput=1.0, pool="alpha"),
        Job(job_id=1, name="a1", tcp=0.0, cpu_seconds_noinput=1.0, pool="alpha"),
        Job(job_id=2, name="b0", tcp=0.0, cpu_seconds_noinput=1.0, pool="beta"),
    ]
    return Workload(jobs=jobs, data=[])


@pytest.fixture
def ledger():
    l = CostLedger()
    l.charge_cpu(3.0, job_id=0)
    l.charge_cpu(1.0, job_id=1)
    l.charge_runtime_transfer(2.0, job_id=2)
    l.charge_placement_transfer(1.2, store_id=0)  # shared: no job id
    return l


def test_direct_attribution(ledger, workload):
    rep = chargeback(ledger, workload)
    assert rep.bill_for("alpha").direct == pytest.approx(4.0)
    assert rep.bill_for("beta").direct == pytest.approx(2.0)


def test_shared_allocated_by_spend(ledger, workload):
    rep = chargeback(ledger, workload)
    assert rep.bill_for("alpha").shared == pytest.approx(1.2 * 4.0 / 6.0)
    assert rep.bill_for("beta").shared == pytest.approx(1.2 * 2.0 / 6.0)
    assert rep.unallocated == 0.0


def test_conservation(ledger, workload):
    rep = chargeback(ledger, workload)
    assert rep.total == pytest.approx(ledger.total)


def test_custom_weights(ledger, workload):
    rep = chargeback(ledger, workload, weights={"alpha": 1.0, "beta": 3.0})
    assert rep.bill_for("beta").shared == pytest.approx(1.2 * 0.75)


def test_negative_weights_rejected(ledger, workload):
    with pytest.raises(ValueError):
        chargeback(ledger, workload, weights={"alpha": -1.0})


def test_no_basis_leaves_unallocated(workload):
    l = CostLedger()
    l.charge_placement_transfer(5.0)
    rep = chargeback(l, workload)
    assert rep.unallocated == pytest.approx(5.0)
    assert rep.total == pytest.approx(5.0)


def test_rows_sorted(ledger, workload):
    rep = chargeback(ledger, workload)
    pools = [r[0] for r in rep.rows()]
    assert pools == ["alpha", "beta"]


def test_end_to_end_from_simulation(two_zone_cluster):
    from repro.hadoop.sim import HadoopSimulator, SimConfig
    from repro.schedulers import LipsScheduler
    from repro.workload.job import DataObject

    data = [DataObject(data_id=0, name="d", size_mb=640.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="scan", tcp=1.0, data_ids=[0], num_tasks=10, pool="etl"),
        Job(job_id=1, name="pi", tcp=0.0, num_tasks=2, cpu_seconds_noinput=100.0, pool="adhoc"),
    ]
    w = Workload(jobs=jobs, data=data)
    sim = HadoopSimulator(
        two_zone_cluster, w, LipsScheduler(epoch_length=600.0),
        SimConfig(placement_seed=2, speculative=False),
    )
    metrics = sim.run().metrics
    rep = chargeback(metrics.ledger, w)
    assert rep.total == pytest.approx(metrics.total_cost)
    assert rep.bill_for("etl").total > rep.bill_for("adhoc").total
