"""Unit tests for cluster assembly and the paper testbed builder."""

import pytest

from repro.cluster.builder import ClusterBuilder, build_paper_testbed
from repro.cluster.topology import Topology


def test_add_machine_creates_colocated_store():
    b = ClusterBuilder(topology=Topology.of(["z"]))
    m = b.add_machine("m0", ecu=1.0, cpu_cost=1e-5, zone="z")
    c = b.build()
    store = c.store_for_machine(m.machine_id)
    assert store is not None
    assert store.zone == "z"


def test_machine_without_store():
    b = ClusterBuilder(topology=Topology.of(["z"]))
    b.add_machine("m0", ecu=1.0, cpu_cost=1e-5, zone="z", with_store=False)
    b.add_remote_store("r", capacity_mb=10.0, zone="z")
    c = b.build()
    assert c.store_for_machine(0) is None
    assert c.num_stores == 1


def test_empty_cluster_rejected():
    b = ClusterBuilder(topology=Topology.of(["z"]))
    with pytest.raises(ValueError, match="at least one machine"):
        b.build()


def test_add_ec2_nodes_uses_catalog():
    b = ClusterBuilder(topology=Topology.of(["z"]), price_point=0.0)
    b.add_ec2_nodes("c1.medium", count=3, zone="z")
    c = b.build()
    assert c.num_machines == 3
    assert all(m.ecu == 5.0 for m in c.machines)
    assert all(m.instance_type == "c1.medium" for m in c.machines)
    # 0.92 millicent at the low price point
    assert c.machines[0].cpu_cost == pytest.approx(0.92e-5)


def test_vectors_align_with_machines():
    c = build_paper_testbed(6, c1_medium_fraction=0.5, seed=0, price_point=0.5)
    assert c.cpu_cost_vector().shape == (6,)
    assert c.throughput_vector().shape == (6,)
    assert c.store_capacity_vector().shape == (6,)
    for i, m in enumerate(c.machines):
        assert c.cpu_cost_vector()[i] == m.cpu_cost
        assert c.throughput_vector()[i] == m.ecu


def test_paper_testbed_mix_counts():
    c = build_paper_testbed(20, c1_medium_fraction=0.5, seed=0)
    kinds = [m.instance_type for m in c.machines]
    assert kinds.count("c1.medium") == 10
    assert kinds.count("m1.medium") == 10


def test_paper_testbed_three_zones_round_robin():
    c = build_paper_testbed(9, seed=0)
    by_zone = c.machines_by_zone()
    assert sorted(by_zone) == ["us-east-a", "us-east-b", "us-east-c"]
    assert all(len(v) == 3 for v in by_zone.values())


def test_paper_testbed_price_jitter_varies_within_type():
    c = build_paper_testbed(20, seed=0)  # all m1.medium, random price points
    costs = {m.cpu_cost for m in c.machines}
    assert len(costs) > 1


def test_paper_testbed_pinned_price_point_uniform():
    c = build_paper_testbed(20, seed=0, price_point=0.5)
    costs = {m.cpu_cost for m in c.machines}
    assert len(costs) == 1


def test_fraction_validation():
    with pytest.raises(ValueError):
        build_paper_testbed(10, c1_medium_fraction=0.7, m1_small_fraction=0.7)
    with pytest.raises(ValueError):
        build_paper_testbed(0)
