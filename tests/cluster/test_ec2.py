"""Unit tests for the EC2 catalog (paper Table III)."""

import pytest

from repro.cluster.ec2 import (
    CROSS_ZONE_TRANSFER_PER_GB,
    EC2_CATALOG,
    ec2_instance,
    table3_rows,
    transfer_cost_per_mb,
)


def test_catalog_contains_paper_types():
    assert {"m1.small", "m1.medium", "c1.medium"} <= set(EC2_CATALOG)


def test_table3_values_verbatim():
    c1 = ec2_instance("c1.medium")
    assert c1.cpus == 2 and c1.ecu == 5.0 and c1.memory_gb == 1.7
    assert (c1.price_low, c1.price_high) == (0.17, 0.23)
    m1s = ec2_instance("m1.small")
    assert m1s.ecu == 1.0 and m1s.storage_gb == 160.0


def test_footnote_millicent_overrides():
    m1 = ec2_instance("m1.medium")
    assert m1.cpu_cost_millicent(0.0) == pytest.approx(4.44)
    assert m1.cpu_cost_millicent(1.0) == pytest.approx(6.39)


def test_derived_millicent_when_no_override():
    m1s = ec2_instance("m1.small")
    # 0.08 $/hr / 1 ECU / 3600 s = 2.22e-5 $ = 2.22 millicent
    assert m1s.cpu_cost_millicent(0.0) == pytest.approx(2.2222, abs=1e-3)


def test_c1_vs_m1_price_gap_is_4_to_5x():
    ratio = ec2_instance("m1.medium").cpu_cost_millicent() / ec2_instance(
        "c1.medium"
    ).cpu_cost_millicent()
    assert 4.0 <= ratio <= 5.5


def test_price_point_validation():
    with pytest.raises(ValueError):
        ec2_instance("m1.small").price_per_hour(1.5)
    with pytest.raises(ValueError):
        ec2_instance("m1.medium").cpu_cost_per_ecu_second(-0.1)


def test_unknown_instance_lists_known():
    with pytest.raises(KeyError, match="m1.small"):
        ec2_instance("x9.gigantic")


def test_cross_zone_transfer_price():
    assert CROSS_ZONE_TRANSFER_PER_GB == 0.01
    # paper: 62.5 millicent per 64 MB block
    per_block = transfer_cost_per_mb(cross_zone=True) * 64.0
    assert per_block == pytest.approx(62.5e-5)
    assert transfer_cost_per_mb(cross_zone=False) == 0.0


def test_table3_rows_cover_catalog():
    rows = table3_rows()
    assert {r[0] for r in rows} == set(EC2_CATALOG)
