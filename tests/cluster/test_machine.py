"""Unit tests for the machine model."""

import pytest

from repro.cluster.machine import Machine


def mk(**kw):
    defaults = dict(machine_id=0, name="m", ecu=2.0, cpu_cost=1e-5)
    defaults.update(kw)
    return Machine(**defaults)


def test_capacity_is_ecu_times_uptime():
    m = mk(ecu=4.0, uptime=100.0)
    assert m.capacity == pytest.approx(400.0)


def test_execution_cost():
    m = mk(cpu_cost=2e-5)
    assert m.execution_cost(1000.0) == pytest.approx(0.02)


def test_execution_cost_rejects_negative():
    with pytest.raises(ValueError):
        mk().execution_cost(-1.0)


def test_wall_time_scales_with_ecu():
    assert mk(ecu=4.0).wall_time(100.0) == pytest.approx(25.0)


def test_slot_ecu_divides_across_slots():
    m = mk(ecu=5.0, map_slots=4)
    assert m.slot_ecu == pytest.approx(1.25)


def test_slot_ecu_with_zero_slots_safe():
    m = mk(ecu=5.0, map_slots=0)
    assert m.slot_ecu == pytest.approx(5.0)


@pytest.mark.parametrize(
    "field,value",
    [("ecu", 0.0), ("ecu", -1.0), ("cpu_cost", -1e-9), ("map_slots", -1)],
)
def test_invalid_parameters_rejected(field, value):
    with pytest.raises(ValueError):
        mk(**{field: value})
