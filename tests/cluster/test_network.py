"""Unit tests for the MS/SS/B matrix derivation."""

import numpy as np
import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.ec2 import transfer_cost_per_mb
from repro.cluster.network import LOCAL_READ_MB_PER_S, NetworkModel
from repro.cluster.topology import Topology


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]))
    b.add_machine("a0", ecu=1.0, cpu_cost=1e-5, zone="za")
    b.add_machine("b0", ecu=1.0, cpu_cost=1e-5, zone="zb")
    b.add_remote_store("s3", capacity_mb=1e6, zone="zb")
    return b.build()


def test_local_read_free_and_fast(cluster):
    net = cluster.network
    # machine 0's own store is store 0
    assert net.ms_cost[0, 0] == 0.0
    assert net.bandwidth[0, 0] == LOCAL_READ_MB_PER_S


def test_intra_zone_remote_read_free_but_slower(cluster):
    net = cluster.network
    # machine 1 (zb) reading the remote s3 store (zb): free, intra-zone bw
    assert net.ms_cost[1, 2] == 0.0
    assert net.bandwidth[1, 2] == pytest.approx(500.0 / 8.0)


def test_cross_zone_read_priced(cluster):
    net = cluster.network
    expected = transfer_cost_per_mb(cross_zone=True)
    assert net.ms_cost[0, 1] == pytest.approx(expected)
    assert net.bandwidth[0, 1] == pytest.approx(250.0 / 8.0)


def test_ss_matrix_zero_diagonal(cluster):
    assert np.all(np.diag(cluster.network.ss_cost) == 0.0)


def test_ss_cross_zone_priced(cluster):
    net = cluster.network
    assert net.ss_cost[0, 1] == pytest.approx(transfer_cost_per_mb(cross_zone=True))
    assert net.ss_cost[1, 2] == 0.0  # both in zb


def test_intra_zone_cost_override():
    b = ClusterBuilder(topology=Topology.of(["z"]))
    b.add_machine("m0", ecu=1.0, cpu_cost=1e-5, zone="z")
    b.add_machine("m1", ecu=1.0, cpu_cost=1e-5, zone="z")
    c = b.build(intra_zone_cost_per_mb=5e-6)
    # remote intra-zone read now costs; local stays free
    assert c.network.ms_cost[0, 1] == pytest.approx(5e-6)
    assert c.network.ms_cost[0, 0] == 0.0


def test_unknown_zone_rejected():
    from repro.cluster.machine import Machine
    from repro.cluster.storage import DataStore

    with pytest.raises(ValueError, match="unknown zone"):
        NetworkModel(
            machines=[Machine(machine_id=0, name="m", ecu=1.0, cpu_cost=0.0, zone="ghost")],
            stores=[DataStore(store_id=0, name="s", capacity_mb=1.0, zone="ghost")],
            topology=Topology.of(["real"]),
        )


def test_store_bandwidth_same_store_is_local(cluster):
    assert cluster.network.store_bandwidth(0, 0) == LOCAL_READ_MB_PER_S
    assert cluster.network.store_bandwidth(0, 1) == pytest.approx(250.0 / 8.0)
