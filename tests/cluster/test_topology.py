"""Unit tests for zones and the network topology."""

import pytest

from repro.cluster.topology import (
    INTER_ZONE_MBPS,
    INTRA_ZONE_MBPS,
    Topology,
    Zone,
    mbps_to_mb_per_s,
    paper_topology,
)


@pytest.fixture
def topo():
    return Topology.of(["a", "b", "c"])


def test_intra_zone_bandwidth_default(topo):
    assert topo.bandwidth_mbps("a", "a") == INTRA_ZONE_MBPS


def test_inter_zone_bandwidth_default(topo):
    assert topo.bandwidth_mbps("a", "b") == INTER_ZONE_MBPS


def test_bandwidth_symmetric(topo):
    topo.set_bandwidth("a", "b", 123.0)
    assert topo.bandwidth_mbps("a", "b") == 123.0
    assert topo.bandwidth_mbps("b", "a") == 123.0


def test_rtt_cross_zone_3x(topo):
    assert topo.rtt_ms("a", "b") == pytest.approx(3.0 * topo.rtt_ms("a", "a"))


def test_rtt_override(topo):
    topo.set_rtt("a", "c", 9.9)
    assert topo.rtt_ms("c", "a") == 9.9


def test_unknown_zone_raises(topo):
    with pytest.raises(KeyError, match="unknown zone"):
        topo.bandwidth_mbps("a", "nope")


def test_duplicate_zone_rejected(topo):
    with pytest.raises(ValueError):
        topo.add_zone(Zone("a"))


def test_cross_zone_predicate(topo):
    assert topo.cross_zone("a", "b")
    assert not topo.cross_zone("a", "a")


def test_mbps_conversion():
    assert mbps_to_mb_per_s(500.0) == pytest.approx(62.5)


def test_paper_topology_has_three_us_east_zones():
    t = paper_topology()
    assert t.zone_names() == ["us-east-a", "us-east-b", "us-east-c"]
