"""Unit tests for data stores."""

import pytest

from repro.cluster.storage import BLOCK_MB, DataStore


def test_block_size_is_paper_default():
    assert BLOCK_MB == 64.0


def test_local_store_flags_machine():
    s = DataStore(store_id=0, name="dn", capacity_mb=1000.0, colocated_machine=3)
    assert s.is_local
    assert s.colocated_machine == 3


def test_remote_store():
    s = DataStore(store_id=0, name="s3", capacity_mb=1e6)
    assert not s.is_local


def test_capacity_blocks():
    s = DataStore(store_id=0, name="dn", capacity_mb=640.0)
    assert s.capacity_blocks() == pytest.approx(10.0)
    assert s.capacity_blocks(block_mb=128.0) == pytest.approx(5.0)


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        DataStore(store_id=0, name="bad", capacity_mb=-1.0)
