"""Unit tests for the synthetic SWIM/Facebook day trace."""

import numpy as np
import pytest

from repro.cluster.storage import BLOCK_MB
from repro.workload.swim import SwimConfig, class_histogram, synthesize_facebook_day


@pytest.fixture(scope="module")
def trace():
    return synthesize_facebook_day(SwimConfig(num_jobs=300, seed=4))


def test_job_count(trace):
    assert trace.num_jobs == 300


def test_interactive_jobs_dominate_counts(trace):
    hist = class_histogram(trace)
    assert hist["interactive"] > hist["medium"] > hist["long"]


def test_long_jobs_dominate_bytes(trace):
    mb_by_class = {}
    for j in trace.jobs:
        mb_by_class.setdefault(j.pool, 0.0)
        mb_by_class[j.pool] += j.total_input_mb(trace.data)
    assert mb_by_class["long"] > mb_by_class["interactive"]


def test_arrivals_sorted_within_day(trace):
    times = [j.arrival_time for j in trace.jobs]
    assert times == sorted(times)
    assert 0.0 <= times[0] and times[-1] < 24 * 3600.0


def test_one_block_per_map(trace):
    for j in trace.jobs:
        if j.has_input:
            d = trace.data[j.data_ids[0]]
            assert d.size_mb == pytest.approx(j.num_tasks * BLOCK_MB)


def test_origin_stores_round_robin():
    w = synthesize_facebook_day(SwimConfig(num_jobs=50, num_origin_stores=4, seed=1))
    origins = {d.origin_store for d in w.data}
    assert origins <= {0, 1, 2, 3}
    assert len(origins) == 4


def test_deterministic_under_seed():
    a = synthesize_facebook_day(SwimConfig(num_jobs=40, seed=7))
    b = synthesize_facebook_day(SwimConfig(num_jobs=40, seed=7))
    assert [j.num_tasks for j in a.jobs] == [j.num_tasks for j in b.jobs]
    assert [j.arrival_time for j in a.jobs] == [j.arrival_time for j in b.jobs]


def test_config_validation():
    with pytest.raises(ValueError):
        SwimConfig(num_jobs=0)
    with pytest.raises(ValueError):
        SwimConfig(classes=(("only", 0.5, (1, 2)),))
    with pytest.raises(ValueError):
        SwimConfig(app_mix=(("grep", 0.4),))


def test_heavy_tail_shape(trace):
    sizes = np.array(sorted(j.num_tasks for j in trace.jobs))
    # median tiny, max huge — the FB-2010 signature
    assert np.median(sizes) <= 20
    assert sizes.max() >= 150
