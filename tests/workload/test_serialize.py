"""Round-trip tests for workload/cluster JSON serialisation."""

import json

import numpy as np
import pytest

from repro.cluster.builder import build_paper_testbed
from repro.workload.apps import table4_jobs
from repro.workload.serialize import (
    cluster_from_dict,
    cluster_to_dict,
    load_cluster,
    load_workload,
    save_cluster,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)
from repro.workload.swim import SwimConfig, synthesize_facebook_day


class TestWorkloadRoundTrip:
    def test_table4_roundtrip(self):
        w = table4_jobs()
        w2 = workload_from_dict(workload_to_dict(w))
        assert w2.num_jobs == w.num_jobs
        assert w2.total_tasks() == w.total_tasks()
        assert w2.total_input_mb() == w.total_input_mb()
        for a, b in zip(w.jobs, w2.jobs):
            assert a == b
        for a, b in zip(w.data, w2.data):
            assert a == b

    def test_swim_roundtrip_preserves_arrivals(self):
        w = synthesize_facebook_day(SwimConfig(num_jobs=30, seed=2))
        w2 = workload_from_dict(workload_to_dict(w))
        assert [j.arrival_time for j in w2.jobs] == [j.arrival_time for j in w.jobs]
        assert [j.pool for j in w2.jobs] == [j.pool for j in w.jobs]

    def test_reduce_and_partial_fields_survive(self):
        from repro.workload.apps import make_job
        from repro.workload.job import DataObject, Job, Workload

        data = [DataObject(data_id=0, name="d", size_mb=128.0, origin_store=0)]
        jobs = [
            make_job("wordcount", 0, data_ids=[0], num_tasks=2, num_reduces=3),
            Job(job_id=1, name="p", tcp=1.0, data_ids=[0], read_fraction=0.4),
        ]
        w2 = workload_from_dict(workload_to_dict(Workload(jobs=jobs, data=data)))
        assert w2.jobs[0].num_reduces == 3
        assert w2.jobs[0].shuffle_ratio == pytest.approx(0.3)
        assert w2.jobs[1].read_fraction == pytest.approx(0.4)

    def test_file_roundtrip(self, tmp_path):
        w = table4_jobs()
        p = tmp_path / "w.json"
        save_workload(w, p)
        w2 = load_workload(p)
        assert w2.total_tasks() == 1608
        # the file is real JSON
        assert json.loads(p.read_text())["format"] == "repro-workload"

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="expected format"):
            workload_from_dict({"format": "something-else", "version": 1})

    def test_bad_version_rejected(self):
        payload = workload_to_dict(table4_jobs())
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            workload_from_dict(payload)


class TestRoundTripProperty:
    def test_random_workloads_roundtrip(self):
        from hypothesis import given, settings, strategies as st

        from repro.workload.job import DataObject, Job, Workload

        @st.composite
        def random_wl(draw):
            n = draw(st.integers(min_value=1, max_value=6))
            data, jobs = [], []
            for k in range(n):
                if draw(st.booleans()):
                    d = DataObject(
                        data_id=len(data),
                        name=f"d{len(data)}",
                        size_mb=draw(st.floats(min_value=1.0, max_value=4096.0)),
                        origin_store=draw(st.integers(min_value=0, max_value=5)),
                    )
                    data.append(d)
                    jobs.append(
                        Job(
                            job_id=k,
                            name=f"j{k}",
                            tcp=draw(st.floats(min_value=0.0, max_value=3.0)),
                            data_ids=[d.data_id],
                            num_tasks=draw(st.integers(min_value=1, max_value=50)),
                            arrival_time=draw(st.floats(min_value=0.0, max_value=1e5)),
                            pool=draw(st.sampled_from(["a", "b"])),
                            read_fraction=draw(st.floats(min_value=0.1, max_value=1.0)),
                        )
                    )
                else:
                    jobs.append(
                        Job(
                            job_id=k,
                            name=f"j{k}",
                            tcp=0.0,
                            num_tasks=draw(st.integers(min_value=1, max_value=8)),
                            cpu_seconds_noinput=draw(st.floats(min_value=0.1, max_value=1e4)),
                        )
                    )
            return Workload(jobs=jobs, data=data)

        @given(random_wl())
        @settings(max_examples=40, deadline=None)
        def check(w):
            w2 = workload_from_dict(workload_to_dict(w))
            assert w2.jobs == w.jobs
            assert w2.data == w.data

        check()


class TestClusterRoundTrip:
    def test_paper_testbed_roundtrip(self):
        c = build_paper_testbed(9, c1_medium_fraction=1 / 3, seed=4)
        c2 = cluster_from_dict(cluster_to_dict(c))
        assert c2.num_machines == c.num_machines
        assert c2.num_stores == c.num_stores
        assert np.allclose(c2.cpu_cost_vector(), c.cpu_cost_vector())
        assert np.allclose(c2.throughput_vector(), c.throughput_vector())
        # derived matrices identical
        assert np.allclose(c2.network.ms_cost, c.network.ms_cost)
        assert np.allclose(c2.network.bandwidth, c.network.bandwidth)

    def test_remote_store_and_overrides_survive(self, tmp_path):
        from repro.cluster.builder import ClusterBuilder
        from repro.cluster.topology import Topology

        topo = Topology.of(["za", "zb"])
        topo.set_bandwidth("za", "zb", 123.0)
        topo.set_rtt("za", "za", 0.9)
        b = ClusterBuilder(topology=topo)
        b.add_machine("m0", ecu=2.0, cpu_cost=1e-5, zone="za")
        b.add_remote_store("s3", capacity_mb=5000.0, zone="zb")
        c = b.build()
        p = tmp_path / "c.json"
        save_cluster(c, p)
        c2 = load_cluster(p)
        assert c2.num_stores == 2
        assert not c2.stores[1].is_local
        assert c2.topology.bandwidth_mbps("za", "zb") == 123.0
        assert c2.topology.rtt_ms("za", "za") == 0.9

    def test_loaded_cluster_runs_a_simulation(self):
        from repro.hadoop.sim import HadoopSimulator, SimConfig
        from repro.schedulers import FifoScheduler

        c = cluster_from_dict(cluster_to_dict(build_paper_testbed(6, seed=1)))
        w = workload_from_dict(workload_to_dict(table4_jobs()))
        res = HadoopSimulator(c, w, FifoScheduler(), SimConfig(placement_seed=1)).run()
        assert res.metrics.tasks_run == 1608
