"""Tests for SWIM TSV import and workload statistics."""

import pytest

from repro.workload.stats import arrival_histogram, summarize
from repro.workload.swim import SwimConfig, synthesize_facebook_day
from repro.workload.swim_io import (
    SwimTraceRow,
    load_swim_workload,
    parse_swim_tsv,
    workload_from_swim,
)

MB = 1024.0 * 1024.0


def write_trace(path, rows):
    lines = []
    for i, (submit, input_b, shuffle_b, output_b) in enumerate(rows):
        lines.append(f"job{i}\t{submit}\t0\t{input_b}\t{shuffle_b}\t{output_b}")
    path.write_text("\n".join(lines) + "\n")


class TestParse:
    def test_parse_roundtrip(self, tmp_path):
        p = tmp_path / "trace.tsv"
        write_trace(p, [(0.0, 128 * MB, 10 * MB, MB), (60.0, 64 * MB, 0.0, 0.0)])
        rows = parse_swim_tsv(p)
        assert len(rows) == 2
        assert rows[0].map_input_bytes == 128 * MB
        assert rows[1].submit_time_s == 60.0

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "trace.tsv"
        p.write_text("job0\t0\t0\t67108864\t0\t0\n\n")
        assert len(parse_swim_tsv(p)) == 1

    def test_malformed_line_reports_lineno(self, tmp_path):
        p = tmp_path / "trace.tsv"
        p.write_text("job0\t0\t0\n")
        with pytest.raises(ValueError, match=":1:"):
            parse_swim_tsv(p)

    def test_non_numeric_rejected(self, tmp_path):
        p = tmp_path / "trace.tsv"
        p.write_text("job0\tzero\t0\t1\t1\t1\n")
        with pytest.raises(ValueError, match=":1:"):
            parse_swim_tsv(p)


class TestConvert:
    def _rows(self):
        return [
            SwimTraceRow("a", 10.0, 128 * MB, 38 * MB, MB),
            SwimTraceRow("b", 0.0, 64 * MB, 0.0, 0.0),
            SwimTraceRow("c", 5.0, 100 * 64 * MB, 10 * MB, MB),
        ]

    def test_maps_from_input_bytes(self):
        w = workload_from_swim(self._rows())
        by_name = {j.name: j for j in w.jobs}
        assert by_name["swim-a"].num_tasks == 2  # 128 MB / 64 MB
        assert by_name["swim-b"].num_tasks == 1
        assert by_name["swim-c"].num_tasks == 100

    def test_jobs_sorted_by_submit(self):
        w = workload_from_swim(self._rows())
        times = [j.arrival_time for j in w.jobs]
        assert times == sorted(times)

    def test_size_classes(self):
        w = workload_from_swim(self._rows())
        pools = {j.name: j.pool for j in w.jobs}
        assert pools["swim-a"] == "interactive"
        assert pools["swim-c"] == "medium"

    def test_shuffle_ratio_from_trace(self):
        w = workload_from_swim(self._rows(), reduces_per_job=2)
        job_a = next(j for j in w.jobs if j.name == "swim-a")
        assert job_a.num_reduces == 2
        assert job_a.shuffle_ratio == pytest.approx(38 / 128)

    def test_map_only_by_default(self):
        w = workload_from_swim(self._rows())
        assert all(j.num_reduces == 0 for j in w.jobs)

    def test_app_mix_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            workload_from_swim(self._rows(), app_mix=[("grep", 0.5)])

    def test_deterministic_profiles(self):
        a = workload_from_swim(self._rows(), seed=3)
        b = workload_from_swim(self._rows(), seed=3)
        assert [j.app for j in a.jobs] == [j.app for j in b.jobs]

    def test_load_end_to_end(self, tmp_path):
        p = tmp_path / "trace.tsv"
        write_trace(p, [(0.0, 640 * MB, 64 * MB, MB)])
        w = load_swim_workload(p, num_origin_stores=3)
        assert w.num_jobs == 1
        assert w.jobs[0].num_tasks == 10
        # usable by the scheduler stack
        from repro.cluster.builder import build_paper_testbed
        from repro.core import SchedulingInput, solve_co_offline

        cluster = build_paper_testbed(6, seed=0, uptime=50_000.0)
        sol = solve_co_offline(SchedulingInput.from_parts(cluster, w))
        assert sol.objective > 0


class TestStats:
    def test_summary_of_synthetic_day(self):
        w = synthesize_facebook_day(SwimConfig(num_jobs=120, seed=5))
        s = summarize(w)
        assert s.num_jobs == 120
        assert s.total_tasks == w.total_tasks()
        assert s.map_count_percentiles[50] <= s.map_count_percentiles[90]
        assert set(s.jobs_by_pool) <= {"interactive", "medium", "long"}
        assert s.arrival_span_s > 0
        assert len(s.rows()) > 8

    def test_arrival_histogram_counts(self):
        w = synthesize_facebook_day(SwimConfig(num_jobs=200, seed=1))
        h = arrival_histogram(w, num_buckets=24)
        assert h.sum() == 200
        assert len(h) == 24

    def test_arrival_histogram_degenerate(self):
        from repro.workload.job import Job, Workload

        w = Workload(
            jobs=[Job(job_id=0, name="j", tcp=0.0, cpu_seconds_noinput=1.0)], data=[]
        )
        h = arrival_histogram(w, num_buckets=4)
        assert h.tolist() == [1, 0, 0, 0]

    def test_histogram_validation(self):
        w = synthesize_facebook_day(SwimConfig(num_jobs=5, seed=1))
        with pytest.raises(ValueError):
            arrival_histogram(w, num_buckets=0)
