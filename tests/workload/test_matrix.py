"""Unit tests for the JD access matrix."""

import numpy as np
import pytest

from repro.workload.job import DataObject, Job
from repro.workload.matrix import access_matrix, accessed_pairs, validate_access_matrix


@pytest.fixture
def setup():
    data = [
        DataObject(data_id=0, name="d0", size_mb=64.0, origin_store=0),
        DataObject(data_id=1, name="d1", size_mb=64.0, origin_store=0),
    ]
    jobs = [
        Job(job_id=0, name="a", tcp=1.0, data_ids=[0]),
        Job(job_id=1, name="b", tcp=1.0, data_ids=[0, 1]),
        Job(job_id=2, name="pi", tcp=0.0, cpu_seconds_noinput=1.0),
    ]
    return jobs, data


def test_binary_entries(setup):
    jobs, data = setup
    jd = access_matrix(jobs, data)
    assert jd.shape == (3, 2)
    assert jd[0].tolist() == [1.0, 0.0]
    assert jd[1].tolist() == [1.0, 1.0]
    assert jd[2].tolist() == [0.0, 0.0]


def test_accessed_pairs(setup):
    jobs, data = setup
    pairs = accessed_pairs(access_matrix(jobs, data))
    assert set(pairs) == {(0, 0), (1, 0), (1, 1)}


def test_validate_accepts_fractional():
    validate_access_matrix(np.array([[0.5, 1.0], [0.0, 0.0]]))


def test_validate_rejects_out_of_range():
    with pytest.raises(ValueError):
        validate_access_matrix(np.array([[1.5]]))
    with pytest.raises(ValueError):
        validate_access_matrix(np.array([[-0.1]]))
    with pytest.raises(ValueError):
        validate_access_matrix(np.array([[np.nan]]))
