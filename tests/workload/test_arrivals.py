"""Unit tests for arrival processes."""

import pytest

from repro.workload.arrivals import MergedArrivals, PoissonArrivals, TraceArrivals
from repro.workload.job import Job


def jobs(n):
    return [
        Job(job_id=i, name=f"j{i}", tcp=0.0, cpu_seconds_noinput=1.0, arrival_time=float(n - i))
        for i in range(n)
    ]


def test_trace_arrivals_sorted_by_time():
    t = TraceArrivals(jobs(5))
    times = [time for time, _ in t]
    assert times == sorted(times)


def test_trace_window_query():
    t = TraceArrivals(jobs(5))  # arrival times 5,4,3,2,1
    within = t.jobs_in_window(2.0, 4.0)
    assert {j.arrival_time for j in within} == {2.0, 3.0}


def test_poisson_arrivals_monotone_and_positive():
    p = PoissonArrivals(jobs(50), rate_per_s=0.5, seed=3)
    times = [time for time, _ in p]
    assert all(t2 >= t1 for t1, t2 in zip(times, times[1:]))
    assert times[0] > 0


def test_poisson_repeatable_iteration():
    p = PoissonArrivals(jobs(10), rate_per_s=1.0, seed=3)
    assert list(p) == list(p)


def test_poisson_seed_controls_draw():
    a = [t for t, _ in PoissonArrivals(jobs(10), 1.0, seed=1)]
    b = [t for t, _ in PoissonArrivals(jobs(10), 1.0, seed=2)]
    assert a != b


def test_poisson_rate_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(jobs(1), rate_per_s=0.0)


def test_poisson_mean_gap_tracks_rate():
    p = PoissonArrivals(jobs(2000), rate_per_s=2.0, seed=0)
    times = [t for t, _ in p]
    mean_gap = times[-1] / len(times)
    assert mean_gap == pytest.approx(0.5, rel=0.15)


def _trace(ids_and_times):
    return TraceArrivals(
        [
            Job(
                job_id=i,
                name=f"j{i}",
                tcp=0.0,
                cpu_seconds_noinput=1.0,
                arrival_time=t,
            )
            for i, t in ids_and_times
        ]
    )


def test_merged_stream_is_nondecreasing():
    merged = MergedArrivals(
        [
            PoissonArrivals(jobs(10), rate_per_s=0.5, seed=1),
            PoissonArrivals(
                [Job(job_id=100 + i, name=f"k{i}", tcp=0.0, cpu_seconds_noinput=1.0) for i in range(10)],
                rate_per_s=0.8,
                seed=2,
            ),
        ]
    )
    times = [t for t, _ in merged]
    assert len(times) == 20
    assert times == sorted(times)


def test_merged_tie_break_is_stable_by_source_then_id():
    # identical timestamps across sources: earlier source wins, then job_id
    a = _trace([(0, 5.0), (2, 5.0)])
    b = _trace([(1, 5.0), (3, 5.0)])
    merged = MergedArrivals([b, a])
    assert [job.job_id for _, job in merged] == [1, 3, 0, 2]


def test_merged_is_repeatable():
    def build():
        return MergedArrivals(
            [
                PoissonArrivals(jobs(8), rate_per_s=0.3, seed=9),
                _trace([(50 + i, float(i)) for i in range(4)]),
            ]
        )

    assert [(t, j.job_id) for t, j in build()] == [
        (t, j.job_id) for t, j in build()
    ]


def test_merged_rejects_duplicate_job_ids():
    with pytest.raises(ValueError, match="job_id 0 appears"):
        MergedArrivals([_trace([(0, 1.0)]), _trace([(0, 2.0)])])


def test_merged_rejects_empty_source_list():
    with pytest.raises(ValueError, match="at least one source"):
        MergedArrivals([])
