"""Unit tests for the Figure 5 random workload generator."""

import numpy as np
import pytest

from repro.cluster.ec2 import MILLICENT
from repro.cluster.storage import BLOCK_MB
from repro.workload.generator import (
    FIG5_CPU_COST_MILLICENT,
    FIG5_INPUT_MB,
    FIG5_JOB_CPU_SECONDS,
    FIG5_TRANSFER_MILLICENT_PER_BLOCK,
    random_workload,
)


@pytest.fixture(scope="module")
def rw():
    return random_workload(200, 10, 8, seed=42)


def test_dimensions(rw):
    assert rw.cluster.num_machines == 8
    assert rw.cluster.num_stores == 10
    assert rw.workload.num_jobs == 10  # 200 tasks / 20 per job


def test_costs_within_caption_ranges(rw):
    lo, hi = FIG5_CPU_COST_MILLICENT
    costs = rw.cluster.cpu_cost_vector() / MILLICENT
    assert np.all(costs >= lo) and np.all(costs <= hi)


def test_input_sizes_within_range(rw):
    lo, hi = FIG5_INPUT_MB
    for d in rw.workload.data:
        assert BLOCK_MB <= d.size_mb <= max(hi, BLOCK_MB)


def test_job_cpu_within_range(rw):
    lo, hi = FIG5_JOB_CPU_SECONDS
    for j in rw.workload.jobs:
        cpu = j.total_cpu_seconds(rw.workload.data)
        assert lo <= cpu <= hi + 1e-9


def test_transfer_matrices_shape_and_range(rw):
    assert rw.ms_cost.shape == (8, 10)
    assert rw.ss_cost.shape == (10, 10)
    per_mb_hi = FIG5_TRANSFER_MILLICENT_PER_BLOCK[1] * MILLICENT / BLOCK_MB
    assert rw.ms_cost.max() <= per_mb_hi
    assert np.all(np.diag(rw.ss_cost) == 0.0)


def test_colocated_reads_free(rw):
    for s in rw.cluster.stores:
        if s.colocated_machine is not None:
            assert rw.ms_cost[s.colocated_machine, s.store_id] == 0.0


def test_more_stores_than_machines_adds_remote():
    rw2 = random_workload(100, 12, 4, seed=0)
    assert rw2.cluster.num_stores == 12
    remote = [s for s in rw2.cluster.stores if not s.is_local]
    assert len(remote) == 8


def test_deterministic_under_seed():
    a = random_workload(100, 5, 5, seed=9)
    b = random_workload(100, 5, 5, seed=9)
    assert np.allclose(a.ms_cost, b.ms_cost)
    assert [d.size_mb for d in a.workload.data] == [d.size_mb for d in b.workload.data]


def test_seed_changes_draw():
    a = random_workload(100, 5, 5, seed=1)
    b = random_workload(100, 5, 5, seed=2)
    assert not np.allclose(a.ms_cost, b.ms_cost)


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        random_workload(0, 5, 5)
