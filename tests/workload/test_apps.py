"""Unit tests for the Table I app profiles and Table IV workload."""

import pytest

from repro.cluster.storage import BLOCK_MB
from repro.workload.apps import (
    APP_PROFILES,
    PI_TASK_CPU_SECONDS,
    app_profile,
    make_job,
    table1_rows,
    table4_jobs,
)


class TestProfiles:
    def test_table1_values(self):
        assert APP_PROFILES["grep"].cpu_per_block == 20.0
        assert APP_PROFILES["stress1"].cpu_per_block == 37.0
        assert APP_PROFILES["stress2"].cpu_per_block == 75.0
        assert APP_PROFILES["wordcount"].cpu_per_block == 90.0
        assert APP_PROFILES["pi"].is_input_less

    def test_tcp_per_mb_conversion(self):
        assert APP_PROFILES["grep"].tcp == pytest.approx(20.0 / BLOCK_MB)
        assert APP_PROFILES["pi"].tcp == 0.0

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="grep"):
            app_profile("sort")

    def test_table1_rows_mark_pi_infinite(self):
        rows = {r[0]: r for r in table1_rows()}
        assert rows["pi"][2] == "inf"


class TestMakeJob:
    def test_pi_rejects_data(self):
        with pytest.raises(ValueError, match="no input"):
            make_job("pi", 0, data_ids=[0])

    def test_pi_cpu_scales_with_tasks(self):
        j = make_job("pi", 0, num_tasks=4)
        assert j.cpu_seconds_noinput == pytest.approx(4 * PI_TASK_CPU_SECONDS)

    def test_data_app_requires_data(self):
        with pytest.raises(ValueError, match="requires input"):
            make_job("grep", 0)

    def test_job_carries_profile(self):
        j = make_job("wordcount", 1, data_ids=[0], num_tasks=16)
        assert j.app == "wordcount"
        assert j.tcp == pytest.approx(90.0 / BLOCK_MB)


class TestTable4:
    def test_shape(self):
        w = table4_jobs()
        assert w.num_jobs == 9
        assert w.num_data == 7  # two Pi jobs carry no data
        assert w.total_tasks() == 1608
        assert w.total_input_mb() == pytest.approx(100 * 1024.0)

    def test_tasks_equal_blocks(self):
        w = table4_jobs()
        for job in w.jobs:
            if job.has_input:
                blocks = sum(w.data[d].num_blocks for d in job.data_ids)
                assert job.num_tasks == blocks

    def test_origin_round_robin(self):
        w = table4_jobs(origin_stores=[3, 5])
        origins = [d.origin_store for d in w.data]
        assert origins == [3, 5, 3, 5, 3, 5, 3]

    def test_total_cpu_demand_matches_hand_computation(self):
        w = table4_jobs()
        # grep 3*320*20 + wc 2*160*90 + stress2 2*160*75 + pi 2*4*300
        expected = 3 * 320 * 20 + 2 * 160 * 90 + 2 * 160 * 75 + 2 * 4 * PI_TASK_CPU_SECONDS
        assert w.total_cpu_seconds() == pytest.approx(expected)
