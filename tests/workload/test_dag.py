"""Tests for job DAGs and the levelling reduction."""

import pytest

from repro.workload.dag import JobDag, chain, schedule_dag_offline
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def workload():
    data = [
        DataObject(data_id=0, name="raw", size_mb=640.0, origin_store=0),
        DataObject(data_id=1, name="mid", size_mb=320.0, origin_store=1),
    ]
    jobs = [
        Job(job_id=0, name="extract", tcp=0.3, data_ids=[0], num_tasks=10),
        Job(job_id=1, name="clean", tcp=0.3, data_ids=[0], num_tasks=10),
        Job(job_id=2, name="join", tcp=0.8, data_ids=[1], num_tasks=5),
        Job(job_id=3, name="report", tcp=0.0, num_tasks=1, cpu_seconds_noinput=50.0),
    ]
    return Workload(jobs=jobs, data=data)


class TestJobDag:
    def test_levels_without_edges_single_generation(self, workload):
        dag = JobDag(workload)
        assert dag.levels() == [[0, 1, 2, 3]]

    def test_diamond_levels(self, workload):
        dag = JobDag(workload)
        dag.add_dependency(0, 2)
        dag.add_dependency(1, 2)
        dag.add_dependency(2, 3)
        assert dag.levels() == [[0, 1], [2], [3]]
        assert dag.critical_path_length() == 3

    def test_cycle_rejected(self, workload):
        dag = JobDag(workload)
        dag.add_dependency(0, 1)
        with pytest.raises(ValueError, match="cycle"):
            dag.add_dependency(1, 0)
        # the failed edge was rolled back
        assert dag.num_edges == 1

    def test_self_dependency_rejected(self, workload):
        dag = JobDag(workload)
        with pytest.raises(ValueError):
            dag.add_dependency(0, 0)

    def test_unknown_job_rejected(self, workload):
        dag = JobDag(workload)
        with pytest.raises(KeyError):
            dag.add_dependency(0, 99)

    def test_pred_succ_queries(self, workload):
        dag = JobDag(workload)
        dag.add_dependency(0, 2)
        dag.add_dependency(1, 2)
        assert dag.predecessors(2) == [0, 1]
        assert dag.successors(0) == [2]

    def test_chain_builder(self, workload):
        dag = chain(workload)
        assert dag.levels() == [[0], [1], [2], [3]]

    def test_sub_workload_reindexes(self, workload):
        dag = JobDag(workload)
        dag.add_dependency(0, 2)
        sub, back = dag.sub_workload([2, 3])
        assert sub.num_jobs == 2
        assert back == {0: 2, 1: 3}
        assert sub.jobs[0].data_ids == [0]  # "mid" re-indexed to 0
        assert sub.data[0].name == "mid"

    def test_sub_workload_shares_data_once(self, workload):
        dag = JobDag(workload)
        sub, _ = dag.sub_workload([0, 1])  # both read "raw"
        assert sub.num_data == 1
        assert sub.jobs[0].data_ids == sub.jobs[1].data_ids == [0]


class TestScheduleDagOffline:
    def test_every_level_scheduled(self, two_zone_cluster, workload):
        dag = JobDag(workload)
        dag.add_dependency(0, 2)
        dag.add_dependency(1, 2)
        dag.add_dependency(2, 3)
        res = schedule_dag_offline(two_zone_cluster, dag)
        assert res.num_levels == 3
        assert res.total_cost > 0
        assert res.makespan_estimate > 0

    def test_costs_sum(self, two_zone_cluster, workload):
        dag = chain(workload)
        res = schedule_dag_offline(two_zone_cluster, dag)
        assert res.total_cost == pytest.approx(sum(l.cost for l in res.levels))

    def test_independent_dag_matches_flat_schedule(self, two_zone_cluster, workload):
        """No edges: one level == plain co-scheduling of the whole set."""
        from repro.core.co_offline import solve_co_offline
        from repro.core.model import SchedulingInput

        dag = JobDag(workload)
        res = schedule_dag_offline(two_zone_cluster, dag)
        inp = SchedulingInput.from_parts(two_zone_cluster, workload)
        flat = solve_co_offline(inp, placement_tiebreak=1e-9)
        assert res.total_cost == pytest.approx(
            flat.cost_breakdown(inp).real_total, rel=1e-6
        )

    def test_carried_placement_avoids_double_move(self, two_zone_cluster):
        """Two chained jobs on the same object: the move is paid once."""
        data = [DataObject(data_id=0, name="shared", size_mb=1024.0, origin_store=0)]
        jobs = [
            Job(job_id=0, name="pass1", tcp=1.0, data_ids=[0], num_tasks=8),
            Job(job_id=1, name="pass2", tcp=1.0, data_ids=[0], num_tasks=8),
        ]
        w = Workload(jobs=jobs, data=data)
        res = schedule_dag_offline(two_zone_cluster, chain(w))
        # cross-zone move of 1 GB costs ~0.01$; paying it twice would show
        # up as the second level costing at least as much as the first
        assert res.num_levels == 2
        level_costs = [l.cost for l in res.levels]
        # second level found its data already in the cheap zone
        assert level_costs[1] <= level_costs[0]
