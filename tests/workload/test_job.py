"""Unit tests for jobs, tasks and data objects."""

import pytest

from repro.workload.job import DataObject, Job, Task, Workload


@pytest.fixture
def data():
    return [
        DataObject(data_id=0, name="d0", size_mb=640.0, origin_store=0),
        DataObject(data_id=1, name="d1", size_mb=100.0, origin_store=1),
    ]


class TestDataObject:
    def test_num_blocks_ceils(self):
        d = DataObject(data_id=0, name="d", size_mb=100.0, origin_store=0)
        assert d.num_blocks == 2  # 100/64 -> 2 blocks

    def test_zero_size_zero_blocks(self):
        d = DataObject(data_id=0, name="d", size_mb=0.0, origin_store=0)
        assert d.num_blocks == 0

    def test_custom_block_size(self):
        d = DataObject(data_id=0, name="d", size_mb=100.0, origin_store=0, block_mb=50.0)
        assert d.num_blocks == 2

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            DataObject(data_id=0, name="d", size_mb=-1.0, origin_store=0)
        with pytest.raises(ValueError):
            DataObject(data_id=0, name="d", size_mb=1.0, origin_store=0, block_mb=0.0)


class TestJob:
    def test_total_cpu_seconds(self, data):
        j = Job(job_id=0, name="j", tcp=0.5, data_ids=[0])
        assert j.total_cpu_seconds(data) == pytest.approx(320.0)

    def test_noinput_cpu_added(self, data):
        j = Job(job_id=0, name="j", tcp=0.5, data_ids=[0], cpu_seconds_noinput=10.0)
        assert j.total_cpu_seconds(data) == pytest.approx(330.0)

    def test_input_less_job(self):
        j = Job(job_id=0, name="pi", tcp=0.0, num_tasks=4, cpu_seconds_noinput=400.0)
        assert not j.has_input
        assert j.total_cpu_seconds([]) == pytest.approx(400.0)

    def test_cpu_seconds_for_object(self, data):
        j = Job(job_id=0, name="j", tcp=2.0, data_ids=[1])
        assert j.cpu_seconds_for(data[1]) == pytest.approx(200.0)
        with pytest.raises(ValueError):
            j.cpu_seconds_for(data[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            Job(job_id=0, name="j", tcp=-1.0)
        with pytest.raises(ValueError):
            Job(job_id=0, name="j", tcp=0.0, num_tasks=0)


class TestSplitIntoTasks:
    def test_input_less_split_even(self):
        j = Job(job_id=0, name="pi", tcp=0.0, num_tasks=4, cpu_seconds_noinput=400.0)
        tasks = j.split_into_tasks([])
        assert len(tasks) == 4
        assert all(t.cpu_seconds == pytest.approx(100.0) for t in tasks)
        assert all(t.data_id is None for t in tasks)

    def test_data_job_split_conserves_totals(self, data):
        j = Job(job_id=0, name="j", tcp=1.0, data_ids=[0], num_tasks=10)
        tasks = j.split_into_tasks(data)
        assert len(tasks) == 10
        assert sum(t.input_mb for t in tasks) == pytest.approx(640.0)
        assert sum(t.cpu_seconds for t in tasks) == pytest.approx(640.0)

    def test_task_ids_dense(self, data):
        j = Job(job_id=3, name="j", tcp=1.0, data_ids=[0], num_tasks=5)
        tasks = j.split_into_tasks(data)
        assert [t.task_id for t in tasks] == list(range(5))
        assert all(t.job_id == 3 for t in tasks)


class TestWorkload:
    def test_totals(self, data):
        jobs = [
            Job(job_id=0, name="a", tcp=1.0, data_ids=[0], num_tasks=2),
            Job(job_id=1, name="b", tcp=2.0, data_ids=[1], num_tasks=2),
        ]
        w = Workload(jobs=jobs, data=data)
        assert w.total_input_mb() == pytest.approx(740.0)
        assert w.total_cpu_seconds() == pytest.approx(640.0 + 200.0)
        assert w.total_tasks() == 4

    def test_dense_index_enforced(self, data):
        bad = [Job(job_id=5, name="a", tcp=1.0, data_ids=[0])]
        with pytest.raises(ValueError, match="densely indexed"):
            Workload(jobs=bad, data=data)

    def test_unknown_data_reference_rejected(self, data):
        jobs = [Job(job_id=0, name="a", tcp=1.0, data_ids=[9])]
        with pytest.raises(ValueError, match="unknown data"):
            Workload(jobs=jobs, data=data)

    def test_jobs_by_arrival_sorted(self, data):
        jobs = [
            Job(job_id=0, name="late", tcp=1.0, data_ids=[0], arrival_time=10.0),
            Job(job_id=1, name="early", tcp=1.0, data_ids=[1], arrival_time=1.0),
        ]
        w = Workload(jobs=jobs, data=data)
        assert [j.name for j in w.jobs_by_arrival()] == ["early", "late"]


class TestTask:
    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            Task(task_id=0, job_id=0, data_id=None, input_mb=-1.0, cpu_seconds=0.0)
