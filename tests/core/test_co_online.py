"""Unit tests for the Figure 4 online epoch model and the fake node."""

import numpy as np
import pytest

from repro.core.assembly import fake_unit_costs
from repro.core.co_offline import solve_co_offline
from repro.core.co_online import OnlineModelConfig, solve_co_online
from repro.core.solution import validate_solution


def test_config_validation():
    with pytest.raises(ValueError):
        OnlineModelConfig(epoch_length=0.0)


def test_always_feasible_even_with_tiny_epoch(small_input):
    sol = solve_co_online(small_input, OnlineModelConfig(epoch_length=1.0))
    # almost nothing fits in one second: the bulk parks on the fake node,
    # yet every job is still fully covered (scheduled + fake == 1)
    assert sol.fake.sum() >= small_input.num_jobs - 0.5
    assert np.all(sol.job_coverage() >= 1.0 - 1e-6)


def test_no_fake_when_capacity_ample(small_input):
    sol = solve_co_online(small_input, OnlineModelConfig(epoch_length=10_000.0))
    assert sol.fake.sum() == pytest.approx(0.0, abs=1e-6)


def test_fake_used_iff_capacity_short(small_input):
    """Scan epochs: fake usage must be monotone non-increasing in epoch."""
    usages = []
    for e in (10.0, 100.0, 400.0, 2000.0, 10_000.0):
        sol = solve_co_online(small_input, OnlineModelConfig(epoch_length=e))
        usages.append(sol.fake.sum())
    assert all(a >= b - 1e-6 for a, b in zip(usages, usages[1:]))


def test_epoch_capacity_respected(small_input):
    e = 500.0
    sol = solve_co_online(small_input, OnlineModelConfig(epoch_length=e))
    rep = validate_solution(small_input, sol, horizon=e, check_epoch_bandwidth=True)
    assert rep.ok, rep.violations


def test_bandwidth_constraint_21_binds():
    """A big object on a remote-only store forces multi-machine fan-out."""
    from repro.cluster.builder import ClusterBuilder
    from repro.cluster.topology import Topology
    from repro.core.model import SchedulingInput
    from repro.workload.job import DataObject, Job, Workload

    # machines without local stores: all reads stream from the shared
    # remote store at 62.5 MB/s.  20 GB needs ~328 s per machine, so a
    # 200 s epoch cannot push the whole job through one machine's NIC.
    b = ClusterBuilder(topology=Topology.of(["z"]), default_uptime=10_000.0)
    for i in range(4):
        b.add_machine(f"m{i}", ecu=50.0, cpu_cost=1e-5, zone="z", with_store=False)
    b.add_remote_store("shared", capacity_mb=1e6, zone="z")
    cluster = b.build()

    data = [DataObject(data_id=0, name="big", size_mb=20 * 1024.0, origin_store=0)]
    jobs = [Job(job_id=0, name="scan", tcp=0.01, data_ids=[0], num_tasks=320)]
    inp = SchedulingInput.from_parts(cluster, Workload(jobs=jobs, data=data))
    sol = solve_co_online(inp, OnlineModelConfig(epoch_length=200.0))
    scheduled = sol.xt_data[0].sum()
    assert scheduled > 0.5  # CPU is ample; only bandwidth limits
    machines_used = (sol.xt_data[0].sum(axis=1) > 1e-6).sum()
    assert machines_used >= 2
    rep = validate_solution(inp, sol, horizon=200.0, check_epoch_bandwidth=True)
    assert rep.ok, rep.violations


def test_bandwidth_constraint_can_be_disabled(small_input):
    sol = solve_co_online(
        small_input,
        OnlineModelConfig(epoch_length=500.0, enforce_bandwidth=False),
    )
    assert validate_solution(small_input, sol, horizon=500.0).ok


def test_fake_cost_dominates_real_cost(small_input):
    fc = fake_unit_costs(small_input)
    # parking any job on F must cost more than the most expensive real run
    worst_real = small_input.jm.max(axis=1) + small_input.size_mb * (
        small_input.ms_cost.max() + small_input.ss_cost.max()
    )
    assert np.all(fc > worst_real)


def test_objective_includes_fake_penalty(small_input):
    sol = solve_co_online(small_input, OnlineModelConfig(epoch_length=50.0))
    bd = sol.cost_breakdown(small_input)
    assert bd.total == pytest.approx(sol.objective, rel=1e-6)
    assert bd.fake > 0
    assert bd.real_total < bd.total


def test_online_with_ample_epoch_matches_offline(small_input):
    online = solve_co_online(
        small_input, OnlineModelConfig(epoch_length=10_000.0, enforce_bandwidth=False)
    )
    offline = solve_co_offline(small_input)
    assert online.objective == pytest.approx(offline.objective, rel=1e-6)


def test_remaining_store_capacity_honoured(small_input):
    remaining = np.array([700.0, 0.0, 0.0, 400.0])
    sol = solve_co_online(
        small_input,
        OnlineModelConfig(epoch_length=10_000.0),
        store_capacity=remaining,
    )
    load = sol.store_data_load(small_input)
    assert np.all(load <= remaining * (1 + 1e-6) + 1e-9)
