"""Unit tests for CoScheduleSolution and validate_solution."""

import numpy as np
import pytest

from repro.core.co_offline import solve_co_offline
from repro.core.solution import CoScheduleSolution, validate_solution


@pytest.fixture
def sol(small_input):
    return solve_co_offline(small_input)


def test_job_coverage_ones(small_input, sol):
    assert np.allclose(sol.job_coverage(), 1.0, atol=1e-6)


def test_machine_load_conserves_cpu(small_input, sol):
    assert sol.machine_cpu_load(small_input).sum() == pytest.approx(
        small_input.cpu.sum(), rel=1e-6
    )


def test_transfer_mb_conserves_reads(small_input, sol):
    total_read = sol.transfer_mb(small_input).sum()
    assert total_read == pytest.approx(small_input.size_mb.sum(), rel=1e-6)


def test_store_data_load_totals(small_input, sol):
    load = sol.store_data_load(small_input)
    # every object placed at least once (>= 1 coverage)
    assert load.sum() >= small_input.data_size_mb.sum() - 1e-6


def test_data_locality_metric(small_input, sol):
    loc = sol.data_locality(small_input)
    assert 0.0 <= loc <= 1.0


def test_data_locality_defaults_one_without_reads(small_input):
    empty = CoScheduleSolution(
        xt_data=np.zeros((3, 4, 4)),
        xt_free=np.zeros((3, 4)),
        xd=np.zeros((2, 4)),
        fake=np.zeros(3),
        objective=0.0,
    )
    assert empty.data_locality(small_input) == 1.0


def test_machines_used(small_input, sol):
    used = sol.machines_used()
    load = sol.machine_cpu_load(small_input)
    assert set(used) == set(np.where(load > 1e-9)[0])


class TestValidator:
    def test_detects_uncovered_job(self, small_input, sol):
        bad = CoScheduleSolution(
            xt_data=sol.xt_data * 0.5,
            xt_free=sol.xt_free * 0.5,
            xd=sol.xd,
            fake=sol.fake,
            objective=0.0,
        )
        rep = validate_solution(small_input, bad)
        assert not rep.ok
        assert any("covered only" in v for v in rep.violations)

    def test_detects_unplaced_data(self, small_input, sol):
        bad = CoScheduleSolution(
            xt_data=sol.xt_data,
            xt_free=sol.xt_free,
            xd=sol.xd * 0.2,
            fake=sol.fake,
            objective=0.0,
        )
        rep = validate_solution(small_input, bad)
        assert any("placed only" in v for v in rep.violations)

    def test_detects_machine_overload(self, small_input, sol):
        rep = validate_solution(small_input, sol, horizon=0.001)
        assert any("cpu-s > cap" in v for v in rep.violations)

    def test_detects_coupling_violation(self, small_input, sol):
        bad_xd = sol.xd.copy()
        bad_xd[:] = 0.0
        bad_xd[:, 0] = 1.0  # data claimed to be only on store 0
        moved = CoScheduleSolution(
            xt_data=sol.xt_data,
            xt_free=sol.xt_free,
            xd=bad_xd,
            fake=sol.fake,
            objective=0.0,
        )
        rep = validate_solution(small_input, moved)
        # unless all reads already come from store 0, coupling must trip
        reads_elsewhere = sol.xt_data[:, :, 1:].sum()
        if reads_elsewhere > 1e-6:
            assert any("placed there" in v for v in rep.violations)

    def test_detects_out_of_range_fractions(self, small_input, sol):
        bad = CoScheduleSolution(
            xt_data=sol.xt_data.copy(),
            xt_free=sol.xt_free,
            xd=sol.xd,
            fake=sol.fake - 0.5,  # negative fake
            objective=0.0,
        )
        rep = validate_solution(small_input, bad)
        assert any("outside [0, 1]" in v for v in rep.violations)


def test_cost_breakdown_components_nonnegative(small_input, sol):
    bd = sol.cost_breakdown(small_input)
    assert bd.placement_transfer >= 0
    assert bd.execution > 0
    assert bd.runtime_transfer >= 0
    assert bd.total == pytest.approx(
        bd.placement_transfer + bd.execution + bd.runtime_transfer + bd.fake
    )


def test_placement_to_origin_is_free(small_input):
    """Leaving data at its origin store incurs no placement cost."""
    identity = np.zeros((2, 4))
    identity[0, small_input.origin[0]] = 1.0
    identity[1, small_input.origin[1]] = 1.0
    sol = CoScheduleSolution(
        xt_data=np.zeros((3, 4, 4)),
        xt_free=np.zeros((3, 4)),
        xd=identity,
        fake=np.zeros(3),
        objective=0.0,
    )
    assert sol.cost_breakdown(small_input).placement_transfer == 0.0
