"""Unit tests for the epoch controller (online scheduling loop)."""

import pytest

from repro.core.epoch import EpochController
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def workload():
    data = [
        DataObject(data_id=0, name="d0", size_mb=640.0, origin_store=0),
        DataObject(data_id=1, name="d1", size_mb=320.0, origin_store=1),
    ]
    jobs = [
        Job(job_id=0, name="j0", tcp=0.5, data_ids=[0], num_tasks=10, arrival_time=0.0),
        Job(job_id=1, name="j1", tcp=1.0, data_ids=[1], num_tasks=5, arrival_time=0.0),
        Job(job_id=2, name="pi", tcp=0.0, num_tasks=2, cpu_seconds_noinput=100.0, arrival_time=700.0),
    ]
    return Workload(jobs=jobs, data=data)


def test_all_jobs_complete(two_zone_cluster, workload):
    res = EpochController(two_zone_cluster, epoch_length=600.0).run(workload)
    assert set(res.job_completion) == {0, 1, 2}


def test_late_arrival_waits_for_its_epoch(two_zone_cluster, workload):
    res = EpochController(two_zone_cluster, epoch_length=600.0).run(workload)
    # job 2 arrives at 700s: its first schedulable epoch starts at 1200s
    completion = workload.jobs[2].arrival_time + res.job_completion[2]
    assert completion >= 1200.0


def test_costs_accumulate_per_category(two_zone_cluster, workload):
    res = EpochController(two_zone_cluster, epoch_length=600.0).run(workload)
    cats = res.ledger.total_by_category()
    assert cats.get("cpu", 0.0) > 0
    assert res.total_cost == pytest.approx(sum(cats.values()))


def test_machine_cpu_seconds_conserved(two_zone_cluster, workload):
    res = EpochController(two_zone_cluster, epoch_length=600.0).run(workload)
    assert res.machine_cpu_seconds.sum() == pytest.approx(
        workload.total_cpu_seconds(), rel=1e-6
    )


def test_small_epoch_requeues_then_finishes(two_zone_cluster, workload):
    """With a tight epoch the fake node defers work but the run terminates."""
    res = EpochController(two_zone_cluster, epoch_length=30.0).run(workload)
    assert set(res.job_completion) == {0, 1, 2}
    requeues = sum(r.num_requeued for r in res.reports)
    assert requeues > 0  # the 30s epoch cannot hold the whole queue
    assert res.num_epochs >= 2


def test_longer_epoch_cheaper_or_equal(two_zone_cluster, workload):
    short = EpochController(two_zone_cluster, epoch_length=60.0).run(workload)
    long_ = EpochController(two_zone_cluster, epoch_length=6000.0).run(workload)
    assert long_.total_cost <= short.total_cost * 1.05


def test_makespan_positive_and_covers_arrivals(two_zone_cluster, workload):
    res = EpochController(two_zone_cluster, epoch_length=600.0).run(workload)
    assert res.makespan >= 700.0  # at least the last arrival


def test_max_epochs_guard(two_zone_cluster, workload):
    with pytest.raises(RuntimeError, match="max_epochs"):
        EpochController(two_zone_cluster, epoch_length=1e-3, max_epochs=5).run(workload)


def test_keep_solutions_flag(two_zone_cluster, workload):
    res = EpochController(two_zone_cluster, epoch_length=600.0, keep_solutions=True).run(
        workload
    )
    assert any(r.solution is not None for r in res.reports)
    res2 = EpochController(two_zone_cluster, epoch_length=600.0).run(workload)
    assert all(r.solution is None for r in res2.reports)


def test_epoch_length_validation(two_zone_cluster):
    with pytest.raises(ValueError):
        EpochController(two_zone_cluster, epoch_length=0.0)


def test_total_execution_time_metric(two_zone_cluster, workload):
    res = EpochController(two_zone_cluster, epoch_length=600.0).run(workload)
    assert res.total_execution_time() == pytest.approx(sum(res.job_completion.values()))


def test_fairness_config_threads_through(two_zone_cluster):
    """EpochController passes the fair-share config into every epoch LP."""
    from repro.core.fairness import FairShareConfig
    from repro.workload.job import DataObject, Job, Workload

    data = [
        DataObject(data_id=0, name="d0", size_mb=640.0, origin_store=0),
        DataObject(data_id=1, name="d1", size_mb=640.0, origin_store=1),
    ]
    jobs = [
        Job(job_id=0, name="a", tcp=1.0, data_ids=[0], num_tasks=10, pool="alpha"),
        Job(job_id=1, name="b", tcp=1.0, data_ids=[1], num_tasks=10, pool="beta"),
    ]
    w = Workload(jobs=jobs, data=data)
    plain = EpochController(two_zone_cluster, epoch_length=30.0).run(w)
    fair = EpochController(
        two_zone_cluster, epoch_length=30.0, fairness=FairShareConfig(fulfillment=0.9)
    ).run(w)
    # both complete everything; under contention the fair run never lets a
    # pool monopolise an epoch, so per-pool completions are closer together
    assert set(plain.job_completion) == set(fair.job_completion) == {0, 1}
    gap_plain = abs(plain.job_completion[0] - plain.job_completion[1])
    gap_fair = abs(fair.job_completion[0] - fair.job_completion[1])
    assert gap_fair <= gap_plain + 1e-6


# -- idle-skip (sparse arrivals) ---------------------------------------------


def test_skip_idle_to_lands_on_the_covering_boundary(two_zone_cluster):
    c = EpochController(two_zone_cluster, epoch_length=60.0)
    c.begin()
    c.skip_idle_to(120.0)  # exact boundary: epoch 2 starts at 120s
    assert c.epoch_index == 2
    c.skip_idle_to(121.0)  # just past it: next boundary is 180s
    assert c.epoch_index == 3
    # always advances at least one epoch, even for an already-covered time
    c.skip_idle_to(0.0)
    assert c.epoch_index == 4


def test_skip_idle_to_clamps_at_max_epochs(two_zone_cluster):
    c = EpochController(two_zone_cluster, epoch_length=60.0, max_epochs=10)
    c.begin()
    c.skip_idle_to(1e12)
    assert c.epoch_index == 10


def test_sparse_arrivals_jump_instead_of_spinning(two_zone_cluster, monkeypatch):
    """Regression: a long idle gap must not be walked one empty epoch at a
    time — run() jumps straight to the next arrival's epoch."""
    data = [DataObject(data_id=0, name="d0", size_mb=64.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="early", tcp=1.0, data_ids=[0], num_tasks=1),
        Job(
            job_id=1,
            name="late",
            tcp=0.0,
            num_tasks=1,
            cpu_seconds_noinput=50.0,
            arrival_time=59_940.0,  # epoch 999 at 60s epochs
        ),
    ]
    c = EpochController(two_zone_cluster, epoch_length=60.0, max_epochs=2000)
    steps = 0
    original = EpochController.step

    def counting_step(self, *args, **kwargs):
        nonlocal steps
        steps += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(EpochController, "step", counting_step)
    res = c.run(Workload(jobs=jobs, data=data))
    assert set(res.job_completion) == {0, 1}
    # without the jump this loop would step ~1000 times
    assert steps < 20
    assert res.makespan >= 59_940.0


def test_incremental_api_matches_run(two_zone_cluster, workload):
    """begin/submit/step/finish drives the identical schedule run() does."""
    ref = EpochController(two_zone_cluster, epoch_length=600.0).run(workload)

    c = EpochController(two_zone_cluster, epoch_length=600.0)
    c.begin()
    arrivals = sorted(workload.jobs, key=lambda j: (j.arrival_time, j.job_id))
    pending = list(arrivals)
    while pending or c.pending:
        start = c.epoch_index * c.epoch_length
        while pending and pending[0].arrival_time <= start:
            job = pending.pop(0)
            c.submit(job, workload.data[job.data_ids[0]] if job.data_ids else None)
        if not c.pending:
            c.skip_idle_to(pending[0].arrival_time)
            continue
        c.step()
    res = c.finish(workload.jobs)

    assert res.job_completion == ref.job_completion
    assert res.ledger.total == ref.ledger.total
    assert res.makespan == ref.makespan
