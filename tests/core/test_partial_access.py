"""Tests for partial data access (fractional JD) across the stack."""

import pytest

from repro.core.co_offline import solve_co_offline
from repro.core.model import SchedulingInput
from repro.core.solution import validate_solution
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.schedulers import FifoScheduler
from repro.workload.job import DataObject, Job, Workload
from repro.workload.matrix import access_matrix


def workload(read_fraction=1.0):
    data = [DataObject(data_id=0, name="d", size_mb=640.0, origin_store=0)]
    jobs = [
        Job(
            job_id=0,
            name="partial-scan",
            tcp=0.5,
            data_ids=[0],
            num_tasks=10,
            read_fraction=read_fraction,
        )
    ]
    return Workload(jobs=jobs, data=data)


class TestJobSemantics:
    def test_read_fraction_validation(self):
        with pytest.raises(ValueError):
            workload(read_fraction=0.0)
        with pytest.raises(ValueError):
            workload(read_fraction=1.5)

    def test_read_and_cpu_scale(self):
        w = workload(0.25)
        j = w.jobs[0]
        assert j.total_input_mb(w.data) == 640.0
        assert j.total_read_mb(w.data) == pytest.approx(160.0)
        assert j.total_cpu_seconds(w.data) == pytest.approx(80.0)

    def test_access_matrix_fractional(self):
        w = workload(0.25)
        jd = access_matrix(w.jobs, w.data)
        assert jd[0, 0] == pytest.approx(0.25)
        binary = access_matrix(w.jobs, w.data, fractions=False)
        assert binary[0, 0] == 1.0


class TestLPModels:
    def test_partial_job_costs_proportionally_less(self, two_zone_cluster):
        full = SchedulingInput.from_parts(two_zone_cluster, workload(1.0))
        half = SchedulingInput.from_parts(two_zone_cluster, workload(0.5))
        sol_full = solve_co_offline(full)
        sol_half = solve_co_offline(half)
        # execution + transfer both scale with the read volume
        assert sol_half.objective == pytest.approx(sol_full.objective * 0.5, rel=1e-6)

    def test_partial_solution_feasible(self, two_zone_cluster):
        inp = SchedulingInput.from_parts(two_zone_cluster, workload(0.3))
        sol = solve_co_offline(inp)
        assert validate_solution(inp, sol).ok

    def test_size_vector_carries_fraction(self, two_zone_cluster):
        inp = SchedulingInput.from_parts(two_zone_cluster, workload(0.3))
        assert inp.size_mb[0] == pytest.approx(192.0)
        # store capacity still constrains the *full* object
        assert inp.data_size_mb[0] == 640.0


class TestSimulator:
    def test_simulator_reads_fraction(self, two_zone_cluster):
        sim = HadoopSimulator(
            two_zone_cluster, workload(0.25), FifoScheduler(), SimConfig(placement_seed=1)
        )
        res = sim.run()
        assert res.metrics.total_read_mb == pytest.approx(160.0, rel=1e-6)
        assert res.metrics.tasks_run == 10  # still one task per block

    def test_simulator_cpu_scales(self, two_zone_cluster):
        full = HadoopSimulator(
            two_zone_cluster, workload(1.0), FifoScheduler(), SimConfig(placement_seed=1)
        ).run()
        half = HadoopSimulator(
            two_zone_cluster, workload(0.5), FifoScheduler(), SimConfig(placement_seed=1)
        ).run()
        assert sum(half.metrics.machine_cpu_seconds.values()) == pytest.approx(
            sum(full.metrics.machine_cpu_seconds.values()) * 0.5, rel=1e-6
        )
