"""Property-based tests of the fair-share extension (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.core.co_online import OnlineModelConfig, solve_co_online
from repro.core.fairness import (
    FairShareConfig,
    fairness_rows,
    jains_index,
    pool_demands,
    pool_scheduled_cpu,
)
from repro.core.model import SchedulingInput
from repro.workload.job import DataObject, Job, Workload


@st.composite
def pooled_input(draw):
    n_machines = draw(st.integers(min_value=1, max_value=3))
    b = ClusterBuilder(topology=Topology.of(["z"]), default_uptime=10_000.0)
    for i in range(n_machines):
        b.add_machine(
            f"m{i}",
            ecu=draw(st.sampled_from([1.0, 2.0, 5.0])),
            cpu_cost=draw(st.floats(min_value=1e-6, max_value=1e-4)),
            zone="z",
        )
    cluster = b.build()
    pools = draw(st.lists(st.sampled_from(["p0", "p1", "p2"]), min_size=1, max_size=4))
    data, jobs = [], []
    for k, pool in enumerate(pools):
        d = DataObject(
            data_id=len(data),
            name=f"d{len(data)}",
            size_mb=draw(st.floats(min_value=64.0, max_value=1024.0)),
            origin_store=0,
        )
        data.append(d)
        jobs.append(
            Job(
                job_id=k,
                name=f"j{k}",
                tcp=draw(st.floats(min_value=0.1, max_value=2.0)),
                data_ids=[d.data_id],
                num_tasks=draw(st.integers(min_value=1, max_value=16)),
                pool=pool,
            )
        )
    epoch = draw(st.floats(min_value=20.0, max_value=2000.0))
    fulfillment = draw(st.floats(min_value=0.1, max_value=1.0))
    return SchedulingInput.from_parts(cluster, Workload(jobs=jobs, data=data)), epoch, fulfillment


@given(pooled_input())
@settings(max_examples=25, deadline=None)
def test_guarantees_always_satisfiable_and_met(case):
    """The min(demand, share) cap keeps every guarantee feasible, and the
    solver honours it — over random pools/epochs/fulfilments."""
    inp, epoch, fulfillment = case
    cfg = FairShareConfig(fulfillment=fulfillment)
    sol = solve_co_online(
        inp,
        OnlineModelConfig(epoch_length=epoch, enforce_bandwidth=False),
        fairness=cfg,
    )
    rows = fairness_rows(inp, epoch, cfg)
    scheduled = pool_scheduled_cpu(inp, sol)
    demands = pool_demands(inp)
    pool_of = {tuple(sorted(ids.tolist())): p for p, (ids, _) in demands.items()}
    for ids, min_cpu in rows:
        pool = pool_of[tuple(sorted(ids.tolist()))]
        slack = 1e-6 * max(1.0, min_cpu)
        assert scheduled[pool] >= min_cpu - slack


@given(pooled_input())
@settings(max_examples=25, deadline=None)
def test_fairness_never_lowers_lp_objective(case):
    inp, epoch, fulfillment = case
    cfg = OnlineModelConfig(epoch_length=epoch, enforce_bandwidth=False)
    plain = solve_co_online(inp, cfg)
    fair = solve_co_online(inp, cfg, fairness=FairShareConfig(fulfillment=fulfillment))
    scale = max(1.0, abs(plain.objective))
    assert fair.objective >= plain.objective - 1e-6 * scale


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_jains_index_bounds(values):
    j = jains_index(values)
    assert 1.0 / len(values) - 1e-12 <= j <= 1.0 + 1e-12
