"""Unit tests for the Figure 2 offline simple task scheduling model."""

import numpy as np
import pytest

from repro.core.simple_task import identity_placement, solve_simple_task
from repro.core.solution import validate_solution
from repro.lp import SimplexBackend


def test_identity_placement(small_input):
    p = identity_placement(small_input)
    assert p.shape == (2, 4)
    assert p[0, 0] == 1.0 and p[1, 1] == 1.0
    assert p.sum() == 2.0


def test_solution_is_feasible(small_input):
    sol = solve_simple_task(small_input)
    assert validate_solution(small_input, sol).ok


def test_objective_matches_independent_cost(small_input):
    sol = solve_simple_task(small_input)
    bd = sol.cost_breakdown(small_input)
    assert bd.total == pytest.approx(sol.objective, rel=1e-6)
    assert bd.placement_transfer == 0.0  # no data moves in this model


def test_all_jobs_fully_scheduled(small_input):
    sol = solve_simple_task(small_input)
    assert np.all(sol.job_coverage() >= 1.0 - 1e-6)


def test_prefers_cheap_machines_when_free(small_input):
    sol = solve_simple_task(small_input)
    load = sol.machine_cpu_load(small_input)
    prices = small_input.cluster.cpu_cost_vector()
    # cheap zone-b machines (5x cheaper) should carry nearly all the work;
    # expensive machines stay idle (capacity is ample, reads affordable)
    cheap_total = load[prices <= prices.min() + 1e-12].sum()
    assert cheap_total / load.sum() > 0.9


def test_respects_capacity(two_zone_cluster, small_workload):
    from repro.core.model import SchedulingInput

    # shrink the horizon so one machine cannot take everything
    inp = SchedulingInput.from_parts(two_zone_cluster, small_workload)
    sol = solve_simple_task(inp, horizon=300.0)
    load = sol.machine_cpu_load(inp)
    cap = inp.machine_capacity(300.0)
    assert np.all(load <= cap * (1 + 1e-6))


def test_infeasible_when_capacity_too_small(small_input):
    with pytest.raises(RuntimeError, match="not solvable"):
        solve_simple_task(small_input, horizon=1.0)


def test_custom_placement_changes_reads(small_input):
    # place all data on store 3 (cheap zone): reads come from store 3
    placement = np.zeros((2, 4))
    placement[:, 3] = 1.0
    sol = solve_simple_task(small_input, placement=placement)
    reads = sol.transfer_mb(small_input)
    assert reads[:, 3].sum() == pytest.approx(small_input.size_mb.sum())
    assert reads[:, :3].sum() == pytest.approx(0.0, abs=1e-6)


def test_simplex_backend_agrees(small_input):
    a = solve_simple_task(small_input)
    b = solve_simple_task(small_input, backend=SimplexBackend())
    assert b.objective == pytest.approx(a.objective, rel=1e-6)


def test_cheaper_than_any_single_machine_schedule(small_input):
    """LP optimum lower-bounds naive all-on-one-machine schedules."""
    inp = small_input
    sol = solve_simple_task(inp)
    for l in range(inp.num_machines):
        naive = float(inp.jm[:, l].sum())
        # add the forced reads from each job's origin store
        for k in inp.jobs_with_input():
            i = inp.job_data[k]
            naive += inp.size_mb[k] * inp.ms_cost[l, inp.origin[i]]
        assert sol.objective <= naive + 1e-9
