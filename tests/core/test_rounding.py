"""Unit tests for fractional-to-integral rounding."""

import numpy as np
import pytest

from repro.core.co_offline import solve_co_offline
from repro.core.rounding import largest_remainder_round, round_schedule


class TestLargestRemainder:
    def test_exact_total(self):
        out = largest_remainder_round(np.array([0.5, 0.3, 0.2]), 10)
        assert out.sum() == 10
        assert out.tolist() == [5, 3, 2]

    def test_remainders_assigned_to_largest(self):
        out = largest_remainder_round(np.array([0.4, 0.35, 0.25]), 10)
        assert out.sum() == 10
        assert out[0] >= out[1] >= out[2]

    def test_zero_weights_default_first(self):
        out = largest_remainder_round(np.zeros(3), 5)
        assert out.tolist() == [5, 0, 0]

    def test_zero_total(self):
        assert largest_remainder_round(np.array([1.0, 2.0]), 0).sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            largest_remainder_round(np.array([1.0]), -1)
        with pytest.raises(ValueError):
            largest_remainder_round(np.array([-0.1]), 1)
        with pytest.raises(ValueError):
            largest_remainder_round(np.ones((2, 2)), 1)

    def test_always_sums_to_total(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            w = rng.uniform(0, 1, rng.integers(1, 10))
            n = int(rng.integers(0, 100))
            assert largest_remainder_round(w, n).sum() == n


class TestRoundSchedule:
    def test_task_counts_match_workload(self, small_input):
        sol = solve_co_offline(small_input)
        integral = round_schedule(small_input, sol)
        expected = sum(j.num_tasks for j in small_input.workload.jobs)
        assert integral.total_tasks() == expected

    def test_integral_cost_bounds_lp(self, small_input):
        sol = solve_co_offline(small_input)
        integral = round_schedule(small_input, sol)
        # the LP optimum is a lower bound on any integral schedule
        assert integral.integral_cost >= integral.lp_cost - 1e-9
        assert integral.integrality_gap >= -1e-9
        assert integral.relative_gap < 0.5  # rounding should stay close

    def test_min_fraction_drops_slivers(self, small_input):
        sol = solve_co_offline(small_input)
        integral = round_schedule(small_input, sol, min_fraction=0.2)
        for k, counts in enumerate(integral.task_counts):
            n = small_input.workload.jobs[k].num_tasks
            for count in counts.values():
                # any surviving assignment is at least 20% of the job
                assert count / n >= 0.2 - 1e-9 or len(counts) == 1

    def test_rounded_solution_usable(self, small_input):
        sol = solve_co_offline(small_input)
        integral = round_schedule(small_input, sol)
        rounded = integral.solution
        # coverage preserved after rounding
        assert np.all(rounded.job_coverage() >= 1.0 - 1e-6)

    def test_input_less_jobs_rounded_too(self, small_input):
        sol = solve_co_offline(small_input)
        integral = round_schedule(small_input, sol)
        pi_counts = integral.task_counts[2]  # job 2 is the Pi job
        assert sum(pi_counts.values()) == 4
        assert all(store == -1 for (_, store) in pi_counts)
