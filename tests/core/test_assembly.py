"""Direct unit tests of the vectorised LP assembler."""

import numpy as np
import pytest

from repro.core.assembly import FAKE_PRICE_MULTIPLIER, ModelAssembler, fake_unit_costs
from repro.core.model import SchedulingInput
from repro.core.simple_task import identity_placement
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def inp(two_zone_cluster):
    data = [DataObject(data_id=0, name="d", size_mb=640.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="scan", tcp=0.5, data_ids=[0], num_tasks=10),
        Job(job_id=1, name="pi", tcp=0.0, num_tasks=2, cpu_seconds_noinput=100.0),
    ]
    return SchedulingInput.from_parts(two_zone_cluster, Workload(jobs=jobs, data=data))


class TestColumnLayout:
    def test_column_counts(self, inp):
        a = ModelAssembler(inp, include_xd=True, include_fake=True)
        # 1 data job * 4 machines * 4 stores + 1 free job * 4 machines
        #   + 2 fake columns + 1 data object * 4 stores
        assert a.num_cols == 16 + 4 + 2 + 4

    def test_offsets_disjoint_and_ordered(self, inp):
        a = ModelAssembler(inp, include_xd=True, include_fake=True)
        assert a.off_d == 0
        assert a.off_n == 16
        assert a.off_f == 20
        assert a.off_xd == 22

    def test_cols_d_unique(self, inp):
        a = ModelAssembler(inp, include_xd=True)
        cols = a.cols_d().reshape(-1)
        assert len(set(cols.tolist())) == len(cols)

    def test_simple_model_has_no_xd_columns(self, inp):
        a = ModelAssembler(inp, include_xd=False, fixed_placement=identity_placement(inp))
        assert a.num_cols == 16 + 4

    def test_fixed_placement_required_for_simple(self, inp):
        with pytest.raises(ValueError, match="fixed data placement"):
            ModelAssembler(inp, include_xd=False)


class TestRowRanges:
    def test_families_present_and_contiguous(self, inp):
        a = ModelAssembler(
            inp, include_xd=True, include_fake=True, epoch_bandwidth=True, horizon=600.0
        )
        asm = a.build()
        ranges = a.row_ranges
        expected = [
            "job_coverage", "coupling", "machine_capacity",
            "data_coverage", "store_capacity", "epoch_bandwidth", "fairness",
        ]
        assert list(ranges) == expected
        # contiguous, non-overlapping, covering all of A_ub
        flat = [ranges[k] for k in expected]
        assert flat[0][0] == 0
        for (a0, a1), (b0, _) in zip(flat, flat[1:]):
            assert a1 == b0
        assert flat[-1][1] == asm.a_ub.shape[0]

    def test_row_counts_match_model_shape(self, inp):
        a = ModelAssembler(inp, include_xd=True, horizon=600.0)
        a.build()
        r = a.row_ranges
        assert r["job_coverage"][1] - r["job_coverage"][0] == inp.num_jobs
        assert r["coupling"][1] - r["coupling"][0] == 1 * inp.num_stores
        assert r["machine_capacity"][1] - r["machine_capacity"][0] == inp.num_machines
        assert r["store_capacity"][1] - r["store_capacity"][0] == inp.num_stores
        assert r["fairness"] == (r["fairness"][0], r["fairness"][0])  # empty


class TestFakeCosts:
    def test_fake_dominates_any_real_cost(self, inp):
        fc = fake_unit_costs(inp)
        worst = inp.jm.max(axis=1) + inp.size_mb * (inp.ms_cost.max() + inp.ss_cost.max())
        assert np.all(fc > worst)
        assert np.all(fc >= FAKE_PRICE_MULTIPLIER * 0)  # positive even for free jobs

    def test_fake_positive_for_zero_cost_job(self, two_zone_cluster):
        jobs = [Job(job_id=0, name="noop", tcp=0.0, num_tasks=1, cpu_seconds_noinput=1e-12)]
        inp = SchedulingInput.from_parts(two_zone_cluster, Workload(jobs=jobs, data=[]))
        assert fake_unit_costs(inp)[0] > 0


class TestObjective:
    def test_objective_terms(self, inp):
        a = ModelAssembler(inp, include_xd=True)
        c = a.objective()
        # data-job block: JM + MS * size
        expected0 = inp.jm[0, 0] + inp.ms_cost[0, 0] * inp.size_mb[0]
        assert c[0] == pytest.approx(expected0)
        # input-less block: pure JM
        assert c[a.off_n] == pytest.approx(inp.jm[1, 0])
        # xd block: size * SS from origin (plus no tiebreak by default)
        assert c[a.off_xd + 1] == pytest.approx(
            inp.data_size_mb[0] * inp.ss_cost[inp.origin[0], 1]
        )

    def test_placement_tiebreak_added(self, inp):
        a = ModelAssembler(inp, include_xd=True, placement_tiebreak=1e-5)
        c = a.objective()
        base = ModelAssembler(inp, include_xd=True).objective()
        assert np.allclose(c[a.off_xd:], base[a.off_xd:] + 1e-5)

    def test_negative_tiebreak_rejected(self, inp):
        with pytest.raises(ValueError):
            ModelAssembler(inp, include_xd=True, placement_tiebreak=-1.0)


class TestDecode:
    def test_decode_roundtrip_shapes(self, inp):
        a = ModelAssembler(inp, include_xd=True, include_fake=True)
        a.build()
        x = np.zeros(a.num_cols)
        x[0] = 0.25
        x[a.off_f] = 0.75
        sol = a.decode(x, objective=1.23, model="test")
        assert sol.xt_data.shape == (2, 4, 4)
        assert sol.xt_data[0, 0, 0] == 0.25
        assert sol.fake[0] == 0.75
        assert sol.objective == 1.23

    def test_decode_clips_noise(self, inp):
        a = ModelAssembler(inp, include_xd=True, include_fake=True)
        a.build()
        x = np.full(a.num_cols, -1e-12)
        sol = a.decode(x, objective=0.0, model="test")
        assert np.all(sol.xt_data >= 0)
        assert np.all(sol.xd >= 0)
