"""Property-based tests of the LiPS LP models (hypothesis).

Invariants, over random clusters/workloads:

* every optimal solution satisfies the paper's printed constraints;
* the objective equals the independent cost evaluation;
* co-scheduling never costs more than fixed-placement scheduling;
* the online model with an ample epoch matches the offline optimum;
* scaling all prices scales the optimum linearly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.core.co_offline import solve_co_offline
from repro.core.co_online import OnlineModelConfig, solve_co_online
from repro.core.model import SchedulingInput
from repro.core.simple_task import solve_simple_task
from repro.core.solution import validate_solution
from repro.workload.job import DataObject, Job, Workload


@st.composite
def scheduling_input(draw):
    n_machines = draw(st.integers(min_value=1, max_value=4))
    n_jobs = draw(st.integers(min_value=1, max_value=4))
    zones = ["z0", "z1"]
    b = ClusterBuilder(topology=Topology.of(zones), default_uptime=50_000.0)
    for i in range(n_machines):
        b.add_machine(
            f"m{i}",
            ecu=draw(st.sampled_from([1.0, 2.0, 5.0])),
            cpu_cost=draw(st.floats(min_value=1e-6, max_value=1e-4)),
            zone=zones[i % 2],
        )
    cluster = b.build()

    data, jobs = [], []
    for k in range(n_jobs):
        if draw(st.booleans()) or not data or True:
            has_input = draw(st.integers(min_value=0, max_value=3)) > 0
        if has_input:
            d = DataObject(
                data_id=len(data),
                name=f"d{len(data)}",
                size_mb=draw(st.floats(min_value=64.0, max_value=2048.0)),
                origin_store=draw(st.integers(min_value=0, max_value=n_machines - 1)),
            )
            data.append(d)
            jobs.append(
                Job(
                    job_id=k,
                    name=f"j{k}",
                    tcp=draw(st.floats(min_value=0.01, max_value=2.0)),
                    data_ids=[d.data_id],
                    num_tasks=draw(st.integers(min_value=1, max_value=32)),
                )
            )
        else:
            jobs.append(
                Job(
                    job_id=k,
                    name=f"j{k}",
                    tcp=0.0,
                    num_tasks=draw(st.integers(min_value=1, max_value=8)),
                    cpu_seconds_noinput=draw(st.floats(min_value=1.0, max_value=1000.0)),
                )
            )
    return SchedulingInput.from_parts(cluster, Workload(jobs=jobs, data=data))


@given(scheduling_input())
@settings(max_examples=30, deadline=None)
def test_co_offline_solution_satisfies_paper_constraints(inp):
    sol = solve_co_offline(inp)
    report = validate_solution(inp, sol)
    assert report.ok, report.violations


@given(scheduling_input())
@settings(max_examples=30, deadline=None)
def test_objective_equals_independent_cost(inp):
    sol = solve_co_offline(inp)
    bd = sol.cost_breakdown(inp)
    assert bd.total == pytest.approx(sol.objective, rel=1e-6, abs=1e-9)


@given(scheduling_input())
@settings(max_examples=30, deadline=None)
def test_co_scheduling_dominates_fixed_placement(inp):
    fixed = solve_simple_task(inp)
    co = solve_co_offline(inp)
    assert co.objective <= fixed.objective * (1 + 1e-9) + 1e-12


@given(scheduling_input())
@settings(max_examples=20, deadline=None)
def test_online_ample_epoch_matches_offline(inp):
    offline = solve_co_offline(inp)
    online = solve_co_online(
        inp, OnlineModelConfig(epoch_length=1e6, enforce_bandwidth=False)
    )
    assert online.fake.sum() == pytest.approx(0.0, abs=1e-6)
    assert online.objective == pytest.approx(offline.objective, rel=1e-6, abs=1e-9)


@given(scheduling_input(), st.floats(min_value=0.5, max_value=4.0))
@settings(max_examples=20, deadline=None)
def test_price_scaling_scales_optimum(inp, scale):
    base = solve_co_offline(inp)
    scaled_inp = SchedulingInput.from_parts(
        inp.cluster,
        inp.workload,
        ms_cost=inp.ms_cost * scale,
        ss_cost=inp.ss_cost * scale,
    )
    # CPU prices scale through jm
    scaled_inp.jm = inp.jm * scale
    scaled = solve_co_offline(scaled_inp)
    assert scaled.objective == pytest.approx(base.objective * scale, rel=1e-6, abs=1e-9)


@given(scheduling_input())
@settings(max_examples=20, deadline=None)
def test_online_fake_monotone_in_epoch(inp):
    prev = None
    for e in (10.0, 1000.0, 100_000.0):
        sol = solve_co_online(inp, OnlineModelConfig(epoch_length=e, enforce_bandwidth=False))
        used = sol.fake.sum()
        if prev is not None:
            assert used <= prev + 1e-6
        prev = used
