"""Tests for the deadline-constrained cost frontier."""

import pytest

from repro.core.deadline import (
    cost_deadline_frontier,
    min_cost_for_deadline,
    min_deadline,
)
from repro.core.solution import validate_solution


def test_min_deadline_bound(small_input):
    d = min_deadline(small_input)
    assert d == pytest.approx(small_input.cpu.sum() / small_input.tp.sum())


def test_infeasible_below_bound(small_input):
    point = min_cost_for_deadline(small_input, min_deadline(small_input) * 0.5)
    assert not point.feasible
    assert point.cost is None


def test_feasible_solution_meets_deadline(small_input):
    d = min_deadline(small_input) * 3.0
    point = min_cost_for_deadline(small_input, d)
    assert point.feasible
    rep = validate_solution(small_input, point.solution, horizon=d)
    assert rep.ok, rep.violations


def test_cost_monotone_in_deadline(small_input):
    frontier = cost_deadline_frontier(small_input, num_points=6)
    costs = [p.cost for p in frontier.feasible_points()]
    assert len(costs) >= 3
    assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))


def test_cheapest_is_last(small_input):
    frontier = cost_deadline_frontier(small_input, num_points=6)
    cheapest = frontier.cheapest()
    feas = frontier.feasible_points()
    assert cheapest.cost == pytest.approx(feas[-1].cost)


def test_pick_respects_budget(small_input):
    frontier = cost_deadline_frontier(small_input, num_points=6)
    feas = frontier.feasible_points()
    budget = feas[1].deadline_s
    picked = frontier.pick(budget)
    assert picked is not None
    assert picked.deadline_s <= budget
    # nothing feasible within an impossible budget
    assert frontier.pick(min_deadline(small_input) * 0.1) is None


def test_deadline_validation(small_input):
    with pytest.raises(ValueError):
        min_cost_for_deadline(small_input, 0.0)


def test_tight_deadline_costs_more(small_input):
    """Meeting a near-minimal deadline forces expensive machines in."""
    base = min_deadline(small_input)
    tight = min_cost_for_deadline(small_input, base * 1.2)
    loose = min_cost_for_deadline(small_input, base * 20.0)
    assert tight.feasible and loose.feasible
    assert tight.cost >= loose.cost - 1e-12
