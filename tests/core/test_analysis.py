"""Tests for LP duals and capacity shadow prices."""

import numpy as np
import pytest

from repro.core.analysis import capacity_shadow_prices
from repro.core.co_offline import solve_co_offline
from repro.core.model import SchedulingInput
from repro.lp import HighsBackend, LinearProgram, Sense
from repro.workload.job import DataObject, Job, Workload


class TestBackendDuals:
    def test_duals_exported(self):
        lp = LinearProgram()
        x = lp.new_var("x")
        lp.add_constraint(x, Sense.LE, 2.0)
        lp.add_constraint(x, Sense.GE, 1.0)
        lp.set_objective(-1.0 * x)  # push x to its cap
        res = HighsBackend().solve(lp)
        assert res.dual_ub is not None
        # the cap binds: relaxing it by 1 improves (lowers) the objective by 1
        assert res.dual_ub[0] == pytest.approx(-1.0)

    def test_slack_row_zero_dual(self):
        lp = LinearProgram()
        x = lp.new_var("x", upper=1.0)
        lp.add_constraint(x, Sense.LE, 100.0)  # never binding
        lp.set_objective(x)
        res = HighsBackend().solve(lp)
        assert res.dual_ub[0] == pytest.approx(0.0)


@pytest.fixture
def tight_input(tiny_cluster):
    """Demand just above the cheap machine's capacity: it must bottleneck."""
    data = [DataObject(data_id=0, name="d", size_mb=640.0, origin_store=0)]
    # cheap machine: 4 ecu * 10000 s = 40000 cpu-s capacity; demand 48000
    jobs = [Job(job_id=0, name="big", tcp=75.0, data_ids=[0], num_tasks=16)]
    return SchedulingInput.from_parts(tiny_cluster, Workload(jobs=jobs, data=data))


class TestShadowPrices:
    def test_bottleneck_machine_priced(self, tight_input):
        sp = capacity_shadow_prices(tight_input)
        prices = tight_input.cluster.cpu_cost_vector()
        cheap = int(prices.argmin())
        assert cheap in sp.bottleneck_machines()
        # extra capacity on the cheap machine saves the price *difference*
        expected = prices.max() - prices.min()
        assert sp.machine_cpu[cheap] == pytest.approx(expected, rel=1e-6)

    def test_slack_machine_unpriced(self, small_input):
        """With ample capacity everywhere no machine carries a price."""
        sp = capacity_shadow_prices(small_input)
        assert len(sp.bottleneck_machines()) == 0
        assert np.all(sp.machine_cpu == 0.0)

    def test_prices_nonnegative(self, tight_input):
        sp = capacity_shadow_prices(tight_input)
        assert np.all(sp.machine_cpu >= 0.0)
        assert np.all(sp.store_mb >= 0.0)

    def test_perturbation_matches_dual(self, tight_input):
        """First-order check: +delta capacity => objective -= price*delta."""
        sp = capacity_shadow_prices(tight_input)
        prices = tight_input.cluster.cpu_cost_vector()
        cheap = int(prices.argmin())
        price = sp.machine_cpu[cheap]
        delta = 100.0  # cpu-seconds

        # re-solve with the cheap machine's uptime extended accordingly
        machine = tight_input.cluster.machines[cheap]
        old_uptime = machine.uptime
        machine.uptime = old_uptime + delta / machine.ecu
        try:
            bumped = SchedulingInput.from_parts(tight_input.cluster, tight_input.workload)
            new_obj = solve_co_offline(bumped).objective
        finally:
            machine.uptime = old_uptime
        assert new_obj == pytest.approx(sp.objective - price * delta, rel=1e-6)

    def test_store_bottleneck_priced(self, two_zone_cluster):
        """A twice-read object wants to move to the cheap zone; zero
        cheap-zone capacity makes every MB there worth one saved read."""
        data = [DataObject(data_id=0, name="shared", size_mb=500.0, origin_store=0)]
        jobs = [
            Job(job_id=0, name="ja", tcp=1.0, data_ids=[0], num_tasks=8),
            Job(job_id=1, name="jb", tcp=1.0, data_ids=[0], num_tasks=8),
        ]
        inp = SchedulingInput.from_parts(
            two_zone_cluster, Workload(jobs=jobs, data=data)
        )
        caps = np.array([1000.0, 1000.0, 0.0, 0.0])  # cheap zone full
        sp = capacity_shadow_prices(inp, store_capacity=caps)
        # an extra MB in the cheap zone converts one of the two cross-zone
        # runtime reads into a (same-priced) one-off move: saves one read
        cross_zone = float(inp.ms_cost.max())
        assert sp.store_mb[2] == pytest.approx(cross_zone, rel=1e-6)
        assert sp.store_mb[3] == pytest.approx(cross_zone, rel=1e-6)

    def test_requires_dual_backend(self, small_input):
        class NoDualBackend(HighsBackend):
            name = "no-duals"

            def solve_assembled(self, asm):
                res = super().solve_assembled(asm)
                res.dual_ub = None
                return res

        with pytest.raises(RuntimeError, match="no duals"):
            capacity_shadow_prices(small_input, backend=NoDualBackend())
