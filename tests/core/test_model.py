"""Unit tests for SchedulingInput and workload levelling."""

import numpy as np
import pytest

from repro.core.model import SchedulingInput, split_multi_object_jobs
from repro.workload.job import DataObject, Job, Workload


def test_from_parts_shapes(small_input):
    inp = small_input
    assert inp.jd.shape == (3, 2)
    assert inp.jm.shape == (3, 4)
    assert inp.ms_cost.shape == (4, 4)
    assert inp.ss_cost.shape == (4, 4)
    assert inp.bandwidth.shape == (4, 4)


def test_jm_is_cpu_times_price(small_input):
    inp = small_input
    expected = np.outer(inp.cpu, inp.cluster.cpu_cost_vector())
    assert np.allclose(inp.jm, expected)


def test_job_data_and_sizes(small_input):
    inp = small_input
    assert inp.job_data.tolist() == [0, 1, -1]
    assert inp.size_mb.tolist() == [640.0, 384.0, 0.0]


def test_cpu_vector(small_input):
    inp = small_input
    assert inp.cpu[0] == pytest.approx(640.0 * 20.0 / 64.0)
    assert inp.cpu[2] == pytest.approx(400.0)


def test_job_partitions(small_input):
    inp = small_input
    assert inp.jobs_with_input().tolist() == [0, 1]
    assert inp.jobs_without_input().tolist() == [2]


def test_machine_capacity_horizon_override(small_input):
    inp = small_input
    default = inp.machine_capacity()
    epoch = inp.machine_capacity(100.0)
    assert np.allclose(default, inp.tp * inp.uptime)
    assert np.allclose(epoch, inp.tp * 100.0)


def test_multi_object_job_rejected(two_zone_cluster):
    data = [
        DataObject(data_id=0, name="d0", size_mb=64.0, origin_store=0),
        DataObject(data_id=1, name="d1", size_mb=64.0, origin_store=1),
    ]
    jobs = [Job(job_id=0, name="multi", tcp=1.0, data_ids=[0, 1])]
    with pytest.raises(ValueError, match="split_multi_object_jobs"):
        SchedulingInput.from_parts(two_zone_cluster, Workload(jobs=jobs, data=data))


def test_matrix_shape_validation(two_zone_cluster, small_workload):
    with pytest.raises(ValueError, match="ms_cost"):
        SchedulingInput.from_parts(
            two_zone_cluster, small_workload, ms_cost=np.zeros((2, 2))
        )


class TestSplitMultiObjectJobs:
    def _workload(self):
        data = [
            DataObject(data_id=0, name="big", size_mb=960.0, origin_store=0),
            DataObject(data_id=1, name="small", size_mb=320.0, origin_store=1),
        ]
        jobs = [
            Job(job_id=0, name="multi", tcp=1.0, data_ids=[0, 1], num_tasks=20),
            Job(job_id=1, name="single", tcp=2.0, data_ids=[1], num_tasks=4),
        ]
        return Workload(jobs=jobs, data=data)

    def test_split_preserves_total_work(self):
        w = self._workload()
        out = split_multi_object_jobs(w)
        assert out.num_jobs == 3
        assert out.total_cpu_seconds() == pytest.approx(w.total_cpu_seconds())

    def test_task_counts_proportional(self):
        out = split_multi_object_jobs(self._workload())
        multi_subs = [j for j in out.jobs if j.name.startswith("multi")]
        tasks = {j.data_ids[0]: j.num_tasks for j in multi_subs}
        assert tasks[0] == 15  # 960/1280 of 20
        assert tasks[1] == 5

    def test_single_object_jobs_untouched(self):
        out = split_multi_object_jobs(self._workload())
        single = [j for j in out.jobs if j.name == "single"][0]
        assert single.num_tasks == 4
        assert single.data_ids == [1]

    def test_result_accepted_by_from_parts(self, two_zone_cluster):
        out = split_multi_object_jobs(self._workload())
        inp = SchedulingInput.from_parts(two_zone_cluster, out)
        assert inp.num_jobs == 3
