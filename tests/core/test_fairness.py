"""Tests for the fair-share LP extension."""

import pytest

from repro.core.co_online import OnlineModelConfig, solve_co_online
from repro.core.fairness import (
    FairShareConfig,
    fairness_rows,
    fulfillment_ratios,
    jains_index,
    pool_demands,
    pool_scheduled_cpu,
)
from repro.core.model import SchedulingInput
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def contended_input(two_zone_cluster):
    """Two pools competing for a too-small epoch: cheap pool vs pricey pool."""
    data = [
        DataObject(data_id=0, name="a", size_mb=640.0, origin_store=2),
        DataObject(data_id=1, name="b", size_mb=640.0, origin_store=3),
    ]
    jobs = [
        Job(job_id=0, name="alpha-job", tcp=1.0, data_ids=[0], num_tasks=10, pool="alpha"),
        Job(job_id=1, name="beta-job", tcp=1.0, data_ids=[1], num_tasks=10, pool="beta"),
        Job(job_id=2, name="alpha-pi", tcp=0.0, num_tasks=2, cpu_seconds_noinput=200.0, pool="alpha"),
    ]
    return SchedulingInput.from_parts(two_zone_cluster, Workload(jobs=jobs, data=data))


class TestConfig:
    def test_fulfillment_validated(self):
        with pytest.raises(ValueError):
            FairShareConfig(fulfillment=0.0)
        with pytest.raises(ValueError):
            FairShareConfig(fulfillment=1.5)

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            FairShareConfig(weights={"a": -1.0})

    def test_default_weight_one(self):
        cfg = FairShareConfig(weights={"a": 3.0})
        assert cfg.weight_of("a") == 3.0
        assert cfg.weight_of("unknown") == 1.0


class TestRows:
    def test_pool_demands(self, contended_input):
        d = pool_demands(contended_input)
        assert set(d) == {"alpha", "beta"}
        ids, demand = d["alpha"]
        assert set(ids) == {0, 2}
        assert demand == pytest.approx(640.0 + 200.0)

    def test_rows_capped_by_demand(self, contended_input):
        rows = fairness_rows(contended_input, epoch_length=1e6, config=FairShareConfig(fulfillment=1.0))
        # epoch huge: each pool's guarantee equals its own demand
        rhs = {tuple(sorted(ids)): cpu for ids, cpu in rows}
        assert rhs[(0, 2)] == pytest.approx(840.0)
        assert rhs[(1,)] == pytest.approx(640.0)

    def test_rows_capped_by_share(self, contended_input):
        e = 10.0  # total capacity = 14 ecu * 10 = 140 cpu-s; share = 70 each
        rows = fairness_rows(contended_input, e, FairShareConfig(fulfillment=1.0))
        for ids, cpu in rows:
            assert cpu <= 70.0 + 1e-9

    def test_epoch_validation(self, contended_input):
        with pytest.raises(ValueError):
            fairness_rows(contended_input, 0.0, FairShareConfig())


class TestSolveWithFairness:
    def test_guarantees_met(self, contended_input):
        e = 50.0  # capacity 700 cpu-s vs demand 1480: contention
        cfg = FairShareConfig(fulfillment=0.9)
        sol = solve_co_online(
            contended_input,
            OnlineModelConfig(epoch_length=e, enforce_bandwidth=False),
            fairness=cfg,
        )
        rows = fairness_rows(contended_input, e, cfg)
        scheduled = pool_scheduled_cpu(contended_input, sol)
        demands = pool_demands(contended_input)
        pool_of = {tuple(sorted(ids)): p for p, (ids, _) in demands.items()}
        for ids, min_cpu in rows:
            pool = pool_of[tuple(sorted(ids))]
            assert scheduled[pool] >= min_cpu - 1e-6

    def test_fairness_improves_jains_index(self, contended_input):
        """Under contention fairness raises the fulfilment balance."""
        e = 50.0
        base = solve_co_online(
            contended_input, OnlineModelConfig(epoch_length=e, enforce_bandwidth=False)
        )
        fair = solve_co_online(
            contended_input,
            OnlineModelConfig(epoch_length=e, enforce_bandwidth=False),
            fairness=FairShareConfig(fulfillment=0.95),
        )
        j_base = jains_index(list(fulfillment_ratios(contended_input, base).values()))
        j_fair = jains_index(list(fulfillment_ratios(contended_input, fair).values()))
        assert j_fair >= j_base - 1e-9

    def test_fairness_costs_at_least_as_much(self, contended_input):
        """Adding constraints can only raise the optimal objective."""
        e = 50.0
        base = solve_co_online(
            contended_input, OnlineModelConfig(epoch_length=e, enforce_bandwidth=False)
        )
        fair = solve_co_online(
            contended_input,
            OnlineModelConfig(epoch_length=e, enforce_bandwidth=False),
            fairness=FairShareConfig(fulfillment=0.95),
        )
        assert fair.objective >= base.objective - 1e-9

    def test_no_contention_no_effect(self, contended_input):
        e = 1e5  # ample: everything schedules either way
        base = solve_co_online(
            contended_input, OnlineModelConfig(epoch_length=e, enforce_bandwidth=False)
        )
        fair = solve_co_online(
            contended_input,
            OnlineModelConfig(epoch_length=e, enforce_bandwidth=False),
            fairness=FairShareConfig(fulfillment=1.0),
        )
        assert fair.objective == pytest.approx(base.objective, rel=1e-6)


class TestJainsIndex:
    def test_equal_allocation_is_one(self):
        assert jains_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_dominator_is_one_over_n(self):
        assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jains_index([]) == 1.0
        assert jains_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jains_index([-1.0])

    def test_scale_invariant(self):
        a = jains_index([1.0, 2.0, 3.0])
        b = jains_index([10.0, 20.0, 30.0])
        assert a == pytest.approx(b)
