"""Unit tests for the Figure 3 offline co-scheduling model."""

import numpy as np
import pytest

from repro.core.co_offline import solve_co_offline
from repro.core.simple_task import solve_simple_task
from repro.core.solution import validate_solution
from repro.lp import SimplexBackend


def test_solution_feasible(small_input):
    sol = solve_co_offline(small_input)
    assert validate_solution(small_input, sol).ok


def test_objective_matches_cost_breakdown(small_input):
    sol = solve_co_offline(small_input)
    assert sol.cost_breakdown(small_input).total == pytest.approx(sol.objective, rel=1e-6)


def test_never_worse_than_fixed_placement(small_input):
    """Freeing the placement can only help (fixed placement is feasible)."""
    fixed = solve_simple_task(small_input)
    co = solve_co_offline(small_input)
    assert co.objective <= fixed.objective + 1e-9


def test_all_data_placed(small_input):
    sol = solve_co_offline(small_input)
    assert np.all(sol.xd.sum(axis=1) >= 1.0 - 1e-6)


def test_store_capacity_respected(two_zone_cluster, small_workload):
    from repro.core.model import SchedulingInput

    inp = SchedulingInput.from_parts(two_zone_cluster, small_workload)
    tight = np.full(inp.num_stores, 400.0)  # each object barely fits somewhere
    sol = solve_co_offline(inp, store_capacity=tight)
    load = sol.store_data_load(inp)
    assert np.all(load <= tight * (1 + 1e-6))


def test_infeasible_when_storage_too_small(small_input):
    with pytest.raises(RuntimeError, match="not solvable"):
        solve_co_offline(small_input, store_capacity=np.full(4, 10.0))


def test_coupling_constraint_reads_match_placement(small_input):
    sol = solve_co_offline(small_input)
    for k in small_input.jobs_with_input():
        i = small_input.job_data[k]
        reads = sol.xt_data[k].sum(axis=0)
        assert np.all(reads <= sol.xd[i] + 1e-6)


def test_moves_data_to_cheap_zone_for_shared_input(two_zone_cluster):
    """Two jobs share one object in the pricey zone: the LP moves it once."""
    from repro.core.model import SchedulingInput
    from repro.workload.job import DataObject, Job, Workload

    data = [DataObject(data_id=0, name="shared", size_mb=1024.0, origin_store=0)]
    jobs = [
        Job(job_id=0, name="a", tcp=1.0, data_ids=[0], num_tasks=8),
        Job(job_id=1, name="b", tcp=1.0, data_ids=[0], num_tasks=8),
    ]
    inp = SchedulingInput.from_parts(two_zone_cluster, Workload(jobs=jobs, data=data))
    sol = solve_co_offline(inp, placement_tiebreak=1e-6)
    # the cheap zone holds stores 2 and 3
    placed_cheap = sol.xd[0, 2] + sol.xd[0, 3]
    assert placed_cheap == pytest.approx(1.0, abs=1e-6)
    # and the runtime reads are then free (intra-zone)
    assert sol.cost_breakdown(inp).runtime_transfer == pytest.approx(0.0, abs=1e-9)


def test_placement_tiebreak_minimises_copies(small_input):
    sol = solve_co_offline(small_input, placement_tiebreak=1e-6)
    # with the tiebreak each object is placed exactly once
    assert sol.xd.sum() == pytest.approx(small_input.num_data, abs=1e-4)


def test_backends_agree(small_input):
    a = solve_co_offline(small_input)
    b = solve_co_offline(small_input, backend=SimplexBackend())
    assert b.objective == pytest.approx(a.objective, rel=1e-6)
