"""Tests for chaos injection, the invariant oracle and the soak harness."""

import numpy as np
import pytest

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.obs.registry import MetricsRegistry, use_registry
from repro.resilience import (
    ChaosPlan,
    ChaosSoakConfig,
    InvariantViolation,
    PartitionEvent,
    ReadFaultEvent,
    StragglerEvent,
    check_sim_invariants,
    random_chaos_plan,
    run_chaos_soak,
    run_chaos_soak_seed,
    soak_summary,
)
from repro.resilience.soak import build_soak_cluster, build_soak_workload
from repro.schedulers import FifoScheduler
from repro.workload.job import DataObject, Job, Workload


@pytest.fixture
def cluster():
    b = ClusterBuilder(topology=Topology.of(["za", "zb"]), store_capacity_mb=1e6)
    for i in range(4):
        b.add_machine(
            f"m{i}", ecu=2.0, cpu_cost=1e-5,
            zone="za" if i < 2 else "zb", map_slots=2,
        )
    return b.build()


def free_workload(tasks=8, cpu=400.0):
    jobs = [Job(job_id=0, name="pi", tcp=0.0, num_tasks=tasks, cpu_seconds_noinput=cpu)]
    return Workload(jobs=jobs, data=[])


def data_workload():
    data = [DataObject(data_id=0, name="d", size_mb=320.0, origin_store=0)]
    jobs = [Job(job_id=0, name="scan", tcp=1.0, data_ids=[0], num_tasks=5)]
    return Workload(jobs=jobs, data=data)


class TestEvents:
    def test_straggler_validation(self):
        with pytest.raises(ValueError):
            StragglerEvent(machine_id=0, start=10.0, end=5.0, slowdown=2.0)
        with pytest.raises(ValueError, match="slowdown"):
            StragglerEvent(machine_id=0, start=0.0, end=5.0, slowdown=0.5)

    def test_straggler_window(self):
        s = StragglerEvent(machine_id=0, start=10.0, end=20.0, slowdown=3.0)
        assert not s.active(9.9) and s.active(10.0) and not s.active(20.0)

    def test_partition_needs_two_zones(self):
        with pytest.raises(ValueError, match="distinct"):
            PartitionEvent(zone_a="z", zone_b="z", start=0.0, end=1.0)

    def test_partition_severs_both_directions(self):
        p = PartitionEvent(zone_a="za", zone_b="zb", start=0.0, end=100.0)
        assert p.severs("za", "zb", 50.0)
        assert p.severs("zb", "za", 50.0)
        assert not p.severs("za", "za", 50.0)
        assert not p.severs("za", "zb", 150.0)

    def test_plan_validates_references(self, cluster):
        plan = ChaosPlan(stragglers=[StragglerEvent(99, 0.0, 1.0, 2.0)])
        with pytest.raises(ValueError, match="unknown machine"):
            plan.validate(cluster)
        plan = ChaosPlan(partitions=[PartitionEvent("za", "nope", 0.0, 1.0)])
        with pytest.raises(ValueError, match="unknown zone"):
            plan.validate(cluster)
        plan = ChaosPlan(read_faults=[ReadFaultEvent(99, 0.0, 1.0)])
        with pytest.raises(ValueError, match="unknown store"):
            plan.validate(cluster)

    def test_compute_factor_multiplies_overlaps(self):
        plan = ChaosPlan(
            stragglers=[
                StragglerEvent(0, 0.0, 100.0, 2.0),
                StragglerEvent(0, 50.0, 100.0, 3.0),
                StragglerEvent(1, 0.0, 100.0, 10.0),
            ]
        )
        assert plan.compute_factor(0, 10.0) == 2.0
        assert plan.compute_factor(0, 60.0) == 6.0
        assert plan.compute_factor(0, 100.0) == 1.0


class TestDeterminism:
    """Satellite: all chaos randomness flows through an explicit Generator."""

    def test_same_generator_same_plan(self, cluster):
        a = random_chaos_plan(cluster, 2000.0, np.random.default_rng(5),
                              mean_time_to_failure_s=500.0)
        b = random_chaos_plan(cluster, 2000.0, np.random.default_rng(5),
                              mean_time_to_failure_s=500.0)
        assert a.failures.events == b.failures.events
        assert a.stragglers == b.stragglers
        assert a.partitions == b.partitions
        assert a.read_faults == b.read_faults

    def test_different_seeds_differ(self, cluster):
        a = random_chaos_plan(cluster, 2000.0, np.random.default_rng(5))
        b = random_chaos_plan(cluster, 2000.0, np.random.default_rng(6))
        assert (a.stragglers, a.partitions, a.read_faults) != (
            b.stragglers, b.partitions, b.read_faults,
        )

    def test_plan_validates_against_its_cluster(self, cluster):
        plan = random_chaos_plan(cluster, 2000.0, np.random.default_rng(0),
                                 mean_time_to_failure_s=500.0)
        plan.validate(cluster)
        assert len(plan) == (
            len(plan.failures) + len(plan.stragglers)
            + len(plan.partitions) + len(plan.read_faults)
        )

    def test_horizon_validation(self, cluster):
        with pytest.raises(ValueError):
            random_chaos_plan(cluster, 0.0, np.random.default_rng(0))


class TestStragglers:
    def test_straggler_stretches_makespan(self, cluster):
        base = HadoopSimulator(cluster, free_workload(), FifoScheduler(), SimConfig()).run()
        plan = ChaosPlan(
            stragglers=[StragglerEvent(m, 0.0, 1e6, 8.0) for m in range(4)]
        )
        slow = HadoopSimulator(
            cluster, free_workload(), FifoScheduler(), SimConfig(), chaos=plan
        ).run()
        assert slow.metrics.makespan > base.metrics.makespan * 4
        # stragglers slow wall time but burn the same billed CPU seconds
        assert slow.metrics.total_cost == pytest.approx(base.metrics.total_cost)

    def test_straggler_counted(self, cluster):
        registry = MetricsRegistry()
        plan = ChaosPlan(stragglers=[StragglerEvent(0, 0.0, 1e6, 4.0)])
        with use_registry(registry):
            sim = HadoopSimulator(
                cluster, free_workload(), FifoScheduler(), SimConfig(), chaos=plan
            )
            sim.run()
        assert sim.metrics.chaos_faults_injected > 0
        assert registry.counter("chaos_faults_injected_total").value(kind="straggler") > 0


class TestReadFaults:
    def test_store_fault_kills_then_recovers(self, cluster):
        # all reads from store 0 fail for the first 200s; tasks burn the
        # read, re-queue with backoff, and complete once the window closes
        plan = ChaosPlan(
            read_faults=[ReadFaultEvent(store_id=0, start=0.0, end=200.0)],
            retry_backoff_s=30.0,
        )
        sim = HadoopSimulator(
            cluster, data_workload(), FifoScheduler(),
            SimConfig(replication=1, populate="origin"), chaos=plan,
        )
        res = sim.run()
        assert sim.jobtracker.all_complete()
        assert sim.metrics.chaos_faults_injected > 0
        assert res.metrics.killed_attempts > 0
        assert res.metrics.tasks_run == 5
        assert res.metrics.makespan > 200.0
        assert check_sim_invariants(sim) == []

    def test_partition_blocks_cross_zone_reads(self, cluster):
        # data lives in za; partition za|zb for the first 300s: zb machines
        # fail their reads, za machines still succeed
        plan = ChaosPlan(
            partitions=[PartitionEvent("za", "zb", start=0.0, end=300.0)]
        )
        sim = HadoopSimulator(
            cluster, data_workload(), FifoScheduler(),
            SimConfig(replication=1, populate="origin"), chaos=plan,
        )
        sim.run()
        assert sim.jobtracker.all_complete()
        assert check_sim_invariants(sim) == []

    def test_clean_run_injects_nothing(self, cluster):
        sim = HadoopSimulator(
            cluster, data_workload(), FifoScheduler(),
            SimConfig(replication=1), chaos=ChaosPlan(),
        )
        sim.run()
        assert sim.metrics.chaos_faults_injected == 0
        assert check_sim_invariants(sim) == []


class TestInvariantOracle:
    def test_clean_sim_passes(self, cluster):
        sim = HadoopSimulator(cluster, free_workload(), FifoScheduler(), SimConfig())
        sim.run()
        assert check_sim_invariants(sim) == []

    def test_oracle_catches_lost_task(self, cluster):
        sim = HadoopSimulator(cluster, free_workload(), FifoScheduler(), SimConfig())
        sim.run()
        job = sim.jobtracker.jobs[0]
        job.completed_maps -= 1  # corrupt: pretend one completion vanished
        violations = check_sim_invariants(sim)
        assert any(v.name == "task_conservation" for v in violations)

    def test_oracle_catches_queue_leak(self, cluster):
        sim = HadoopSimulator(cluster, free_workload(), FifoScheduler(), SimConfig())
        sim.run()
        job = sim.jobtracker.jobs[0]
        job.pending.append(job.tasks[0])  # corrupt: a task left in the queue
        violations = check_sim_invariants(sim)
        assert any(v.name == "queue_leak" for v in violations)

    def test_oracle_catches_lost_block(self, cluster):
        sim = HadoopSimulator(
            cluster, data_workload(), FifoScheduler(), SimConfig(replication=1)
        )
        sim.run()
        sim.hdfs.blocks[0].replicas.clear()  # corrupt: all replicas gone
        violations = check_sim_invariants(sim)
        assert any(v.name == "lost_block" for v in violations)

    def test_oracle_catches_negative_charge(self, cluster):
        sim = HadoopSimulator(cluster, free_workload(), FifoScheduler(), SimConfig())
        sim.run()
        # corrupt one frozen record past its constructor validation
        object.__setattr__(sim.metrics.ledger.records[0], "amount", -1.0)
        violations = check_sim_invariants(sim)
        assert any(v.name == "billing_consistency" for v in violations)

    def test_violation_renders(self):
        v = InvariantViolation("queue_leak", "job 'x' has 2 pending")
        assert "queue_leak" in str(v) and "pending" in str(v)


class TestSoak:
    def test_builders_are_seed_deterministic(self):
        rng = np.random.default_rng(3)
        c1 = build_soak_cluster(4, np.random.default_rng(3))
        c2 = build_soak_cluster(4, np.random.default_rng(3))
        assert [m.cpu_cost for m in c1.machines] == [m.cpu_cost for m in c2.machines]
        w1 = build_soak_workload(3, 4, 2000.0, np.random.default_rng(3))
        w2 = build_soak_workload(3, 4, 2000.0, np.random.default_rng(3))
        assert [j.arrival_time for j in w1.jobs] == [j.arrival_time for j in w2.jobs]
        assert [d.size_mb for d in w1.data] == [d.size_mb for d in w2.data]

    def test_config_validation(self):
        with pytest.raises(ValueError, match="force"):
            ChaosSoakConfig(force="sometimes")
        with pytest.raises(ValueError, match="seed"):
            ChaosSoakConfig(seeds=())

    def test_soak_seed_clean(self):
        cfg = ChaosSoakConfig(
            seeds=(0,), num_machines=4, num_jobs=3, horizon_s=2000.0
        )
        outcome = run_chaos_soak_seed(0, cfg)
        assert outcome.ok, [str(v) for v in outcome.violations]
        assert outcome.faults_planned > 0

    def test_soak_forced_primary_failure_uses_fallback(self):
        cfg = ChaosSoakConfig(
            seeds=(0,), num_machines=4, num_jobs=3, horizon_s=2000.0, force="primary"
        )
        outcome = run_chaos_soak_seed(0, cfg)
        assert outcome.ok, [str(v) for v in outcome.violations]
        assert outcome.solver_failures > 0
        assert outcome.solver_fallbacks > 0
        assert outcome.chaos_faults_injected > 0
        assert outcome.epochs_degraded == 0  # the fallback always saves it

    def test_soak_forced_chain_failure_degrades(self):
        cfg = ChaosSoakConfig(
            seeds=(1,), num_machines=4, num_jobs=3, horizon_s=2000.0, force="all"
        )
        outcome = run_chaos_soak_seed(1, cfg)
        assert outcome.ok, [str(v) for v in outcome.violations]
        assert outcome.epochs_degraded > 0

    def test_multi_seed_summary(self):
        cfg = ChaosSoakConfig(seeds=(0, 1), num_machines=4, num_jobs=2,
                              horizon_s=1500.0)
        outcomes = run_chaos_soak(cfg)
        assert [o.seed for o in outcomes] == [0, 1]
        summary = soak_summary(outcomes)
        assert summary["seeds"] == 2
        assert summary["violations"] == sum(len(o.violations) for o in outcomes)


class TestBackoffJitter:
    """The retry backoff is a pure function of the plan (seed-carried rng)."""

    def test_zero_jitter_is_the_fixed_base(self):
        plan = ChaosPlan(retry_backoff_s=30.0, backoff_jitter=0.0)
        assert [plan.next_backoff() for _ in range(5)] == [30.0] * 5

    def test_same_seed_replays_the_exact_sequence(self):
        a = ChaosPlan(retry_backoff_s=30.0, backoff_jitter=0.25, backoff_seed=42)
        b = ChaosPlan(retry_backoff_s=30.0, backoff_jitter=0.25, backoff_seed=42)
        assert [a.next_backoff() for _ in range(20)] == [
            b.next_backoff() for _ in range(20)
        ]

    def test_different_seeds_spread_the_retries(self):
        a = ChaosPlan(retry_backoff_s=30.0, backoff_jitter=0.25, backoff_seed=1)
        b = ChaosPlan(retry_backoff_s=30.0, backoff_jitter=0.25, backoff_seed=2)
        assert [a.next_backoff() for _ in range(8)] != [
            b.next_backoff() for _ in range(8)
        ]

    def test_backoff_stays_inside_the_jitter_band(self):
        plan = ChaosPlan(retry_backoff_s=30.0, backoff_jitter=0.25, backoff_seed=7)
        draws = [plan.next_backoff() for _ in range(200)]
        assert all(30.0 <= d <= 30.0 * 1.25 for d in draws)
        assert len(set(draws)) > 1  # it actually jitters

    def test_backoff_rng_is_plan_private_not_ambient(self):
        """FLOW001 guard: the jitter draws never touch global numpy RNG."""
        import numpy as np

        np.random.seed(123)
        before = np.random.get_state()[1][:8].tolist()
        plan = ChaosPlan(retry_backoff_s=30.0, backoff_jitter=0.5, backoff_seed=3)
        for _ in range(50):
            plan.next_backoff()
        assert np.random.get_state()[1][:8].tolist() == before

    def test_chaos_module_is_flow001_clean(self):
        """The determinism pass finds no ambient RNG/clock reads reachable
        from the simulator entry point through the chaos path."""
        from pathlib import Path

        from repro.lint.flow import analyze_paths

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        report = analyze_paths(
            [src / "resilience" / "chaos.py"], entry_points=["next_backoff"]
        )
        assert [f for f in report.findings if f.rule in ("FLOW001", "FLOW002")] == []
