"""Tests for ResilientSolver: classification, retries, fallback, timeout."""

import time

import numpy as np
import pytest

from repro.lp.problem import LinearProgram, Sense
from repro.lp.result import LPResult, LPStatus
from repro.lp.scipy_backend import HighsBackend
from repro.lp.simplex import SimplexBackend, SimplexError
from repro.obs.registry import MetricsRegistry, use_registry
from repro.resilience import (
    RETRYABLE_KINDS,
    FailureKind,
    FaultInjectingBackend,
    ResilientSolver,
    classify_result,
)


def small_lp() -> LinearProgram:
    lp = LinearProgram()
    x = lp.new_var("x")
    y = lp.new_var("y", upper=1.0)
    lp.add_constraint(x + 2 * y, Sense.GE, 2.0)
    lp.set_objective(x + y)
    return lp


class _FailingBackend:
    """Always returns a chosen failure status (or raises)."""

    name = "failing"

    def __init__(self, status=LPStatus.NUMERICAL, exc=None):
        self.status = status
        self.exc = exc
        self.calls = 0
        self.seen_c = []

    def solve_assembled(self, asm):
        self.calls += 1
        self.seen_c.append(np.array(asm.c, copy=True))
        if self.exc is not None:
            raise self.exc
        return LPResult(
            status=self.status, objective=float("nan"), x=None, backend=self.name
        )


class _SlowBackend:
    name = "slow"

    def __init__(self, delay_s: float):
        self.delay_s = delay_s

    def solve_assembled(self, asm):
        time.sleep(self.delay_s)
        return HighsBackend().solve_assembled(asm)


class TestClassification:
    def test_optimal_is_none(self):
        res = LPResult(status=LPStatus.OPTIMAL, objective=0.0, x=np.zeros(1))
        assert classify_result(res) is None

    @pytest.mark.parametrize(
        "status,kind",
        [
            (LPStatus.INFEASIBLE, FailureKind.INFEASIBLE),
            (LPStatus.UNBOUNDED, FailureKind.UNBOUNDED),
            (LPStatus.ITERATION_LIMIT, FailureKind.NUMERICAL),
            (LPStatus.NUMERICAL, FailureKind.NUMERICAL),
            (LPStatus.ERROR, FailureKind.BACKEND_ERROR),
        ],
    )
    def test_status_mapping(self, status, kind):
        res = LPResult(status=status, objective=float("nan"), x=None)
        assert classify_result(res) is kind

    def test_only_timeout_and_numerical_retry(self):
        assert RETRYABLE_KINDS == {FailureKind.TIMEOUT, FailureKind.NUMERICAL}

    def test_simplex_iteration_cap_is_structured(self):
        # satellite: SimplexError carries a structured status, no
        # string-matching anywhere in the classification path
        err = SimplexError("iteration cap 5 reached", status=LPStatus.ITERATION_LIMIT)
        assert err.status is LPStatus.ITERATION_LIMIT
        assert SimplexError("singular").status is LPStatus.NUMERICAL


class TestChain:
    def test_healthy_primary_solves(self):
        solver = ResilientSolver([HighsBackend(), SimplexBackend()])
        res = solver.solve(small_lp())
        assert res.is_optimal
        assert res.objective == pytest.approx(1.0)
        assert solver.last_attempts == []
        assert solver.fallbacks_total == 0

    def test_fallback_order(self):
        failing = _FailingBackend()
        solver = ResilientSolver([failing, HighsBackend()], max_retries=1)
        res = solver.solve(small_lp())
        assert res.is_optimal
        assert failing.calls == 2  # first attempt + one retry
        assert solver.fallbacks_total == 1
        assert [a.backend for a in solver.last_attempts] == ["failing", "failing"]

    def test_numerical_retries_bounded(self):
        failing = _FailingBackend()
        solver = ResilientSolver([failing], max_retries=3)
        res = solver.solve(small_lp())
        assert not res.is_optimal
        assert failing.calls == 4
        assert solver.retries_total == 3

    def test_infeasible_skips_retries_but_falls_back(self):
        failing = _FailingBackend(status=LPStatus.INFEASIBLE)
        solver = ResilientSolver([failing, HighsBackend()], max_retries=3)
        res = solver.solve(small_lp())
        assert res.is_optimal
        assert failing.calls == 1  # no retry for a model property
        assert solver.retries_total == 0
        assert solver.fallbacks_total == 1

    def test_exception_classified_backend_error(self):
        failing = _FailingBackend(exc=RuntimeError("boom"))
        solver = ResilientSolver([failing], max_retries=2)
        res = solver.solve_assembled(small_lp().assemble())
        assert res.status is LPStatus.ERROR
        assert "boom" in res.message
        assert solver.last_attempts[0].kind is FailureKind.BACKEND_ERROR
        assert failing.calls == 1  # backend errors are not retried

    def test_whole_chain_failure_returns_last_result(self):
        solver = ResilientSolver(
            [_FailingBackend(), _FailingBackend(status=LPStatus.ERROR)], max_retries=0
        )
        res = solver.solve_assembled(small_lp().assemble())
        assert res.status is LPStatus.ERROR  # the *last* backend's verdict
        assert solver.fallbacks_total == 1

    def test_needs_at_least_one_backend(self):
        with pytest.raises(ValueError):
            ResilientSolver([])


class TestPerturbation:
    def test_retry_objective_is_perturbed_deterministically(self):
        a = _FailingBackend()
        ResilientSolver([a], max_retries=2).solve_assembled(small_lp().assemble())
        b = _FailingBackend()
        ResilientSolver([b], max_retries=2).solve_assembled(small_lp().assemble())
        assert len(a.seen_c) == 3
        # attempt 0 solves the unperturbed objective
        np.testing.assert_array_equal(a.seen_c[0], small_lp().assemble().c)
        assert not np.array_equal(a.seen_c[0], a.seen_c[1])
        assert not np.array_equal(a.seen_c[1], a.seen_c[2])
        # rerun retries through the identical perturbation sequence
        for ca, cb in zip(a.seen_c, b.seen_c):
            np.testing.assert_array_equal(ca, cb)

    def test_perturbed_solve_reports_true_objective(self):
        class FlakyOnce:
            name = "flaky"
            calls = 0

            def solve_assembled(self, asm):
                FlakyOnce.calls += 1
                if FlakyOnce.calls == 1:
                    return LPResult(
                        status=LPStatus.NUMERICAL, objective=float("nan"), x=None
                    )
                return HighsBackend().solve_assembled(asm)

        solver = ResilientSolver([FlakyOnce()], max_retries=1, perturb_scale=1e-3)
        res = solver.solve_assembled(small_lp().assemble())
        assert res.is_optimal
        # even with a coarse perturbation the reported objective is
        # re-evaluated against the ORIGINAL coefficients
        assert res.objective == pytest.approx(1.0, abs=1e-6)

    def test_backoff_schedule(self):
        sleeps = []
        solver = ResilientSolver(
            [_FailingBackend()],
            max_retries=3,
            backoff_base_s=0.5,
            sleep=sleeps.append,
        )
        solver.solve_assembled(small_lp().assemble())
        assert sleeps == [0.5, 1.0, 2.0]


class TestTimeout:
    def test_slow_solve_times_out_and_falls_back(self):
        solver = ResilientSolver(
            [_SlowBackend(5.0), HighsBackend()], timeout_s=0.05, max_retries=0
        )
        res = solver.solve(small_lp())
        assert res.is_optimal
        assert solver.last_attempts[0].kind is FailureKind.TIMEOUT
        assert solver.fallbacks_total == 1

    def test_fast_solve_unaffected_by_timeout(self):
        solver = ResilientSolver([HighsBackend()], timeout_s=30.0)
        assert solver.solve(small_lp()).is_optimal

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            ResilientSolver([HighsBackend()], timeout_s=0.0)
        with pytest.raises(ValueError):
            ResilientSolver([HighsBackend()], max_retries=-1)


class TestCounters:
    def test_counters_and_labels(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            solver = ResilientSolver([_FailingBackend(), HighsBackend()], max_retries=1)
            solver.solve(small_lp())
        assert registry.counter("solver_retries_total").total() == 1
        assert registry.counter("solver_fallbacks_total").value(
            from_backend="failing", to_backend="highs"
        ) == 1
        assert registry.counter("solver_failures_total").value(
            kind="numerical", backend="failing"
        ) == 2

    def test_no_registry_is_fine(self):
        solver = ResilientSolver([_FailingBackend(), HighsBackend()], max_retries=1)
        assert solver.solve(small_lp()).is_optimal


class TestFaultInjectingBackend:
    def test_fail_first_n(self):
        inner = HighsBackend()
        chaos = FaultInjectingBackend(inner, fail_first=2)
        asm = small_lp().assemble()
        assert not chaos.solve_assembled(asm).is_optimal
        assert not chaos.solve_assembled(asm).is_optimal
        assert chaos.solve_assembled(asm).is_optimal
        assert chaos.faults_injected == 2

    def test_fail_all_and_counting(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            chaos = FaultInjectingBackend(HighsBackend())
            for _ in range(3):
                assert not chaos.solve_assembled(small_lp().assemble()).is_optimal
        assert chaos.faults_injected == 3
        assert registry.counter("chaos_faults_injected_total").value(kind="solver") == 3

    def test_raise_mode(self):
        chaos = FaultInjectingBackend(HighsBackend(), raise_exception=True)
        with pytest.raises(RuntimeError, match="injected"):
            chaos.solve_assembled(small_lp().assemble())
