"""Tests for degraded-mode scheduling: the greedy epoch fallback."""

import numpy as np
import pytest

from repro.core.co_online import OnlineModelConfig, solve_co_online
from repro.core.epoch import EpochController
from repro.core.solution import validate_solution
from repro.hadoop.sim import HadoopSimulator, SimConfig
from repro.lp.result import LPResult, LPStatus
from repro.obs.registry import MetricsRegistry, use_registry
from repro.resilience import DEGRADED_MODEL, greedy_epoch_solution
from repro.schedulers import LipsScheduler
from repro.workload.job import DataObject, Job, Workload


class _DeadBackend:
    """Every solve fails: the whole-chain-down scenario."""

    name = "dead"

    def solve_assembled(self, asm):
        return LPResult(
            status=LPStatus.NUMERICAL, objective=float("nan"), x=None, backend=self.name
        )


class TestGreedySolution:
    def test_feasible_and_validates(self, small_input):
        sol = greedy_epoch_solution(small_input, epoch_length=600.0)
        assert sol.model == DEGRADED_MODEL
        validate_solution(small_input, sol, horizon=600.0)

    def test_fractions_conserved(self, small_input):
        sol = greedy_epoch_solution(small_input, epoch_length=600.0)
        for k in range(small_input.num_jobs):
            placed = sol.xt_data[k].sum() + sol.xt_free[k].sum() + sol.fake[k]
            assert placed == pytest.approx(1.0)

    def test_prefers_cheap_machines(self, small_input):
        # zone-b machines are 5x cheaper in the two_zone_cluster fixture
        sol = greedy_epoch_solution(small_input, epoch_length=10_000.0)
        cheap = sol.xt_data[:, 2:, :].sum() + sol.xt_free[:, 2:].sum()
        pricey = sol.xt_data[:, :2, :].sum() + sol.xt_free[:, :2].sum()
        assert cheap > pricey

    def test_data_stays_at_origin(self, small_input):
        sol = greedy_epoch_solution(small_input, epoch_length=600.0)
        for i in range(small_input.num_data):
            off_origin = np.delete(sol.xd[i], small_input.origin[i])
            assert off_origin.sum() == 0.0

    def test_tiny_epoch_parks_on_fake_node(self, small_input):
        sol = greedy_epoch_solution(small_input, epoch_length=0.01)
        assert sol.fake.sum() > 0  # not everything fits in 10 ms

    def test_respects_store_capacity(self, small_input):
        cap = np.zeros(small_input.num_stores)
        sol = greedy_epoch_solution(small_input, epoch_length=600.0, store_capacity=cap)
        # data jobs cannot place anything; the input-less job still runs
        assert sol.xt_data.sum() == pytest.approx(0.0)
        assert sol.xt_free.sum() > 0

    def test_deterministic(self, small_input):
        a = greedy_epoch_solution(small_input, epoch_length=600.0)
        b = greedy_epoch_solution(small_input, epoch_length=600.0)
        np.testing.assert_array_equal(a.xt_data, b.xt_data)
        np.testing.assert_array_equal(a.fake, b.fake)
        assert a.objective == b.objective

    def test_epoch_length_validation(self, small_input):
        with pytest.raises(ValueError):
            greedy_epoch_solution(small_input, epoch_length=0.0)


class TestSolveCoOnlineOnFailure:
    def test_default_still_raises(self, small_input):
        with pytest.raises(RuntimeError, match="not solvable"):
            solve_co_online(
                small_input,
                OnlineModelConfig(epoch_length=600.0),
                backend=_DeadBackend(),
            )

    def test_greedy_fallback_returns_degraded_solution(self, small_input):
        sol = solve_co_online(
            small_input,
            OnlineModelConfig(epoch_length=600.0),
            backend=_DeadBackend(),
            on_failure="greedy",
        )
        assert sol.model == DEGRADED_MODEL
        validate_solution(small_input, sol, horizon=600.0)

    def test_backend_exception_degrades_too(self, small_input):
        class Raising:
            name = "raising"

            def solve_assembled(self, asm):
                raise RuntimeError("chain exploded")

        sol = solve_co_online(
            small_input,
            OnlineModelConfig(epoch_length=600.0),
            backend=Raising(),
            on_failure="greedy",
        )
        assert sol.model == DEGRADED_MODEL

    def test_bad_on_failure_rejected(self, small_input):
        with pytest.raises(ValueError, match="on_failure"):
            solve_co_online(
                small_input, OnlineModelConfig(epoch_length=600.0), on_failure="panic"
            )


class TestDegradedEpochController:
    def test_run_completes_on_dead_backend(self, two_zone_cluster, small_workload):
        registry = MetricsRegistry()
        with use_registry(registry):
            controller = EpochController(
                two_zone_cluster, epoch_length=600.0, backend=_DeadBackend()
            )
            result = controller.run(small_workload)
        assert set(result.job_completion) == {0, 1, 2}
        assert controller.degraded_epochs == result.num_epochs > 0
        assert all(r.degraded for r in result.reports)
        assert registry.counter("epochs_degraded_total").total() == result.num_epochs
        # degraded epochs still bill real dollars
        assert result.total_cost > 0

    def test_degraded_cost_no_better_than_lp(self, two_zone_cluster, small_workload):
        lp = EpochController(two_zone_cluster, epoch_length=600.0).run(small_workload)
        degraded = EpochController(
            two_zone_cluster, epoch_length=600.0, backend=_DeadBackend()
        ).run(small_workload)
        assert degraded.total_cost >= lp.total_cost - 1e-9

    def test_degraded_mode_off_raises(self, two_zone_cluster, small_workload):
        controller = EpochController(
            two_zone_cluster,
            epoch_length=600.0,
            backend=_DeadBackend(),
            degraded_mode=False,
        )
        with pytest.raises(RuntimeError, match="not solvable"):
            controller.run(small_workload)

    def test_healthy_run_reports_not_degraded(self, two_zone_cluster, small_workload):
        controller = EpochController(two_zone_cluster, epoch_length=600.0)
        result = controller.run(small_workload)
        assert controller.degraded_epochs == 0
        assert not any(r.degraded for r in result.reports)


class TestDegradedLips:
    def _workload(self):
        data = [DataObject(data_id=0, name="d", size_mb=256.0, origin_store=0)]
        jobs = [Job(job_id=0, name="scan", tcp=1.0, data_ids=[0], num_tasks=4)]
        return Workload(jobs=jobs, data=data)

    def test_sim_completes_on_dead_backend(self, tiny_cluster):
        sched = LipsScheduler(epoch_length=60.0, backend=_DeadBackend())
        sim = HadoopSimulator(
            tiny_cluster, self._workload(), sched, config=SimConfig(replication=1)
        )
        result = sim.run()
        assert sched.degraded_epochs > 0
        assert sim.metrics.epochs_degraded == sched.degraded_epochs
        assert result.metrics.tasks_run == 4

    def test_degraded_mode_off_raises(self, tiny_cluster):
        sched = LipsScheduler(
            epoch_length=60.0, backend=_DeadBackend(), degraded_mode=False
        )
        sim = HadoopSimulator(
            tiny_cluster, self._workload(), sched, config=SimConfig(replication=1)
        )
        with pytest.raises(RuntimeError, match="not solvable"):
            sim.run()
