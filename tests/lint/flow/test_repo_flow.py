"""The analyzer against the real repo: entry resolution, reachability,
and the gating contract CI relies on (clean modulo the reviewed baseline)."""

from pathlib import Path

import pytest

from repro.lint.flow import analyze_paths, build_call_graph, build_symbol_table
from repro.lint.flow.engine import DEFAULT_ENTRY_POINTS, resolve_entry_points

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "FLOW_BASELINE.json"


@pytest.fixture(scope="module")
def graph():
    return build_call_graph(build_symbol_table([SRC]))


def test_default_entry_points_resolve_uniquely(graph):
    resolved = resolve_entry_points(graph.table, DEFAULT_ENTRY_POINTS)
    assert resolved["HadoopSimulator.run"] == ["repro.hadoop.sim:HadoopSimulator.run"]
    assert resolved["solve_co_online"] == ["repro.core.co_online:solve_co_online"]
    assert resolved["EpochController.run"] == ["repro.core.epoch:EpochController.run"]


def test_simulator_reaches_tracer_and_metrics(graph):
    reach = graph.reachable(["repro.hadoop.sim:HadoopSimulator.run"])
    assert "repro.obs.trace:Tracer.emit" in reach
    assert "repro.obs.registry:Counter.inc" in reach


def test_daemon_solve_thread_spawn_is_detected(graph):
    spawners = {e.src for e in graph.thread_spawns}
    assert "repro.resilience.solver:ResilientSolver._call" in spawners


def test_entry_points_reach_a_substantial_program_slice(graph):
    resolved = resolve_entry_points(graph.table, DEFAULT_ENTRY_POINTS)
    roots = [q for qs in resolved.values() for q in qs]
    reach = graph.reachable(roots)
    # the three roots cover the sim + solve core; a collapse here means
    # call resolution broke, not that the repo shrank
    assert len(reach) > 200


def test_repo_is_flow_clean_modulo_baseline():
    report = analyze_paths([SRC], baseline=BASELINE)
    assert report.findings == [], [f.render() for f in report.findings]
    assert report.stale == [], [e.path for e in report.stale]
    assert report.ok


def test_baseline_entries_all_carry_reasons():
    from repro.lint.flow import load_baseline

    entries = load_baseline(BASELINE)
    assert entries, "repo baseline should document the deliberate exceptions"
    for entry in entries:
        assert len(entry.reason) > 20, entry
