"""Baseline round-trip, reason enforcement and stale-entry detection."""

import json
from pathlib import Path

import pytest

from repro.lint.flow import analyze_paths, load_baseline, write_baseline
from repro.lint.flow.baseline import BaselineEntry, BaselineError, apply_baseline

FIXTURES = Path(__file__).parent / "fixtures"


def test_write_then_load_round_trips_and_silences(tmp_path):
    report = analyze_paths([FIXTURES / "flow102_bad.py"], entry_points=[])
    assert len(report.findings) == 1

    baseline_path = tmp_path / "baseline.json"
    count = write_baseline(report.findings, baseline_path)
    assert count == 1

    entries = load_baseline(baseline_path)
    assert len(entries) == 1
    assert entries[0].rule == "FLOW102"

    silenced = analyze_paths(
        [FIXTURES / "flow102_bad.py"], entry_points=[], baseline=baseline_path
    )
    assert silenced.findings == []
    assert len(silenced.baselined) == 1
    assert silenced.stale == []
    assert silenced.ok


def test_missing_baseline_file_is_empty():
    assert load_baseline(Path("/nonexistent/flow-baseline.json")) == []


def test_entries_without_reason_are_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"rule": "FLOW101", "path": "x.py", "symbol": "", "reason": "  "}
                ],
            }
        )
    )
    with pytest.raises(BaselineError, match="reason"):
        load_baseline(path)


def test_malformed_json_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError):
        load_baseline(path)


def test_stale_entries_are_reported(tmp_path):
    stale_entry = BaselineEntry(
        rule="FLOW999", path="ghost.py", symbol="", reason="long gone"
    )
    kept, baselined, stale = apply_baseline([], [stale_entry])
    assert kept == [] and baselined == []
    assert stale == [stale_entry]

    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "FLOW999",
                        "path": "ghost.py",
                        "symbol": "",
                        "reason": "long gone",
                    }
                ],
            }
        )
    )
    report = analyze_paths(
        [FIXTURES / "flow102_ok.py"], entry_points=[], baseline=baseline_path
    )
    assert report.findings == []
    assert len(report.stale) == 1
    assert not report.ok  # stale entries gate like findings do


def test_symbol_must_match_when_given():
    from repro.lint.findings import Finding, Severity

    finding = Finding(
        rule="FLOW101",
        severity=Severity.ERROR,
        message="m",
        location="src/x.py",
        line=3,
        symbol="mod:Cls.attr",
    )
    wrong = BaselineEntry(
        rule="FLOW101", path="src/x.py", symbol="mod:Other.attr", reason="r"
    )
    right = BaselineEntry(
        rule="FLOW101", path="src/x.py", symbol="mod:Cls.attr", reason="r"
    )
    assert not wrong.matches(finding)
    assert right.matches(finding)
