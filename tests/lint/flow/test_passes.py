"""Flow-pass tests driven by the fixture corpus in ``fixtures/``.

Mirrors the AST-rule corpus contract: every ``<rule>_bad.py`` must produce
exactly its rule id and nothing else; every ``<rule>_ok.py`` must analyze
clean.  Entry specs are per-fixture: determinism rules need reachability
from ``run``, pool rules fire at the dispatch site regardless.
"""

from pathlib import Path

import pytest

from repro.lint.findings import Severity
from repro.lint.flow import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: (rule id, fixture stem, entry specs for the analysis)
RULE_FIXTURES = [
    ("FLOW001", "flow001", ["run"]),
    ("FLOW002", "flow002", ["run"]),
    ("FLOW003", "flow003", ["run"]),
    ("FLOW101", "flow101", ["run"]),
    ("FLOW102", "flow102", []),
    ("FLOW103", "flow103", []),
    ("FLOW104", "flow104", ["run"]),
    ("FLOW201", "flow201", []),
]


@pytest.mark.parametrize("rule_id,stem,entries", RULE_FIXTURES)
def test_bad_fixture_triggers_exactly_its_rule(rule_id, stem, entries):
    report = analyze_paths([FIXTURES / f"{stem}_bad.py"], entry_points=entries)
    assert report.findings, f"{stem}_bad.py produced no findings"
    assert {f.rule for f in report.findings} == {rule_id}
    assert all(f.line is not None for f in report.findings)
    assert all(f.symbol for f in report.findings)


@pytest.mark.parametrize("rule_id,stem,entries", RULE_FIXTURES)
def test_ok_fixture_is_clean(rule_id, stem, entries):
    report = analyze_paths([FIXTURES / f"{stem}_ok.py"], entry_points=entries)
    assert report.findings == [], [f.render() for f in report.findings]


def test_tracer_race_fixture_flags_the_unlocked_write():
    """Satellite regression: the pre-PR-4 Tracer.emit race pattern."""
    report = analyze_paths([FIXTURES / "flow101_bad.py"], entry_points=["run"])
    [finding] = report.findings
    assert finding.rule == "FLOW101"
    assert finding.severity is Severity.ERROR
    assert "Recorder.records" in finding.message
    assert "Thread target" in finding.message


def test_async_task_fixture_flags_the_unlocked_write():
    """Satellite: service callbacks racing the main path through the loop."""
    report = analyze_paths([FIXTURES / "flow104_bad.py"], entry_points=["run"])
    [finding] = report.findings
    assert finding.rule == "FLOW104"
    assert finding.severity is Severity.ERROR
    assert "Gauge.samples" in finding.message
    assert "asyncio task" in finding.message
    assert "asyncio.Lock" in finding.message


def test_pool_rng_fixture_names_the_unseeded_site():
    report = analyze_paths([FIXTURES / "flow103_bad.py"], entry_points=[])
    [finding] = report.findings
    assert finding.rule == "FLOW103"
    assert "default_rng() without a seed" in finding.message
    assert "seed" in finding.message


def test_determinism_findings_carry_the_call_chain():
    report = analyze_paths([FIXTURES / "flow001_bad.py"], entry_points=["run"])
    [finding] = report.findings
    assert "run -> _plan -> _draw" in finding.message


def test_hazards_unreachable_from_entries_stay_silent():
    # without the `run` entry the RNG site is dead code to this pass
    report = analyze_paths([FIXTURES / "flow001_bad.py"], entry_points=[])
    assert report.findings == []


def test_suppression_comment_silences_a_flow_rule(tmp_path):
    source = (FIXTURES / "flow101_bad.py").read_text()
    patched = source.replace(
        "self.records.append(record)  # unlocked shared write — the race",
        "self.records.append(record)  # lint: ok=FLOW101",
    )
    assert patched != source
    path = tmp_path / "suppressed.py"
    path.write_text(patched)
    report = analyze_paths([path], entry_points=["run"])
    assert report.findings == []


def test_units_pass_flags_cross_unit_comparison(tmp_path):
    path = tmp_path / "cmp.py"
    path.write_text(
        "from repro.units import DOLLARS, SECONDS, returns\n\n"
        "@returns(DOLLARS)\n"
        "def cost():\n    return 1.0\n\n"
        "@returns(SECONDS)\n"
        "def elapsed():\n    return 2.0\n\n"
        "def worse():\n    return cost() > elapsed()\n"
    )
    report = analyze_paths([path], entry_points=[])
    assert [f.rule for f in report.findings] == ["FLOW201"]
    assert "comparison" in report.findings[0].message


def test_units_pass_tracks_assignments_and_augassign(tmp_path):
    path = tmp_path / "aug.py"
    path.write_text(
        "from repro.units import DOLLARS, SECONDS, returns\n\n"
        "@returns(DOLLARS)\n"
        "def cost():\n    return 1.0\n\n"
        "@returns(SECONDS)\n"
        "def elapsed():\n    return 2.0\n\n"
        "def tally():\n"
        "    total = cost()\n"
        "    total += elapsed()\n"
        "    return total\n"
    )
    report = analyze_paths([path], entry_points=[])
    assert [f.rule for f in report.findings] == ["FLOW201"]
    assert "augmented assignment" in report.findings[0].message
