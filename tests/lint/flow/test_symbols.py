"""Symbol-table construction: imports, qnames, markers, globals."""

import textwrap

from repro.lint.flow.symbols import build_symbol_table, parse_module


def _module(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def test_imports_map_aliases_to_fqns(tmp_path):
    path = _module(
        tmp_path,
        """
        import numpy as np
        import os.path
        from repro.obs.trace import current_tracer as ct
        from repro.obs import lpprof
        """,
    )
    info = parse_module(path)
    assert info.imports["np"] == "numpy"
    assert info.imports["os"] == "os"
    assert info.imports["ct"] == "repro.obs.trace.current_tracer"
    assert info.imports["lpprof"] == "repro.obs.lpprof"


def test_function_qnames_mirror_qualname(tmp_path):
    path = _module(
        tmp_path,
        """
        def top():
            def inner():
                pass
            return inner

        class Box:
            def get(self):
                pass
        """,
    )
    info = parse_module(path, module_name="m")
    assert set(info.functions) == {"top", "top.<locals>.inner", "Box.get"}
    assert info.functions["Box.get"].is_method
    assert info.functions["Box.get"].class_name == "Box"
    assert not info.functions["top.<locals>.inner"].is_method


def test_shared_marker_detected_on_class_line(tmp_path):
    path = _module(
        tmp_path,
        """
        class Plain:
            pass

        class Hot:  # flow: shared
            pass
        """,
    )
    info = parse_module(path, module_name="m")
    assert not info.classes["Plain"].shared
    assert info.classes["Hot"].shared


def test_globals_record_mutability(tmp_path):
    path = _module(
        tmp_path,
        """
        CACHE = {}
        LIMIT = 10
        names = ["a"]

        def f():
            local = []
            return local
        """,
    )
    info = parse_module(path, module_name="m")
    assert info.globals["CACHE"].mutable
    assert not info.globals["LIMIT"].mutable
    assert info.globals["names"].mutable
    assert "local" not in info.globals  # function locals are not globals


def test_resolve_suffix_matches_loose_and_full_specs(tmp_path):
    path = _module(
        tmp_path,
        """
        class Sim:
            def run(self):
                pass

        def run():
            pass
        """,
        name="simmod.py",
    )
    table = build_symbol_table([path])
    assert table.resolve_suffix("Sim.run") == ["simmod:Sim.run"]
    assert set(table.resolve_suffix("run")) == {"simmod:Sim.run", "simmod:run"}
    assert table.resolve_suffix("simmod.run") == ["simmod:run"]
    assert table.resolve_suffix("nothing.here") == []


def test_syntax_errors_do_not_take_down_the_table(tmp_path):
    _module(tmp_path, "def broken(:\n", name="broken.py")
    _module(tmp_path, "def fine():\n    pass\n", name="fine.py")
    table = build_symbol_table([tmp_path])
    assert "fine" in table.modules
    assert "broken" not in table.modules
