"""CLI tests for ``python -m repro lint --flow``."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[3]


def test_flow_findings_gate_the_exit_code(tmp_path, capsys):
    rc = main(
        [
            "lint",
            "--flow",
            "--entry",
            "run",
            "--baseline",
            str(tmp_path / "none.json"),
            str(FIXTURES / "flow101_bad.py"),
        ]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "FLOW101" in out


def test_flow_json_schema(tmp_path, capsys):
    rc = main(
        [
            "lint",
            "--flow",
            "--format",
            "json",
            "--entry",
            "run",
            "--baseline",
            str(tmp_path / "none.json"),
            str(FIXTURES / "flow001_bad.py"),
        ]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload["findings"]] == ["FLOW001"]
    finding = payload["findings"][0]
    assert set(finding) == {"rule", "severity", "message", "location", "line", "symbol"}
    flow = payload["flow"]
    assert flow["entry_points"] == {"run": ["flow001_bad:run"]}
    assert flow["modules"] == 1
    assert flow["functions"] == 3
    assert flow["edges"] >= 2
    assert flow["baselined"] == []
    assert flow["stale_baseline"] == []


def test_clean_fixture_exits_zero(tmp_path, capsys):
    rc = main(
        [
            "lint",
            "--flow",
            "--entry",
            "run",
            "--baseline",
            str(tmp_path / "none.json"),
            str(FIXTURES / "flow001_ok.py"),
        ]
    )
    assert rc == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_write_baseline_then_rerun_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    fixture = str(FIXTURES / "flow102_bad.py")
    rc = main(
        ["lint", "--flow", "--write-baseline", "--baseline", str(baseline), fixture]
    )
    assert rc == 0
    assert baseline.exists()
    capsys.readouterr()

    rc = main(["lint", "--flow", "--baseline", str(baseline), fixture])
    assert rc == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_stale_baseline_entry_fails_the_run(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "FLOW101",
                        "path": "ghost.py",
                        "symbol": "",
                        "reason": "ghost",
                    }
                ],
            }
        )
    )
    rc = main(
        [
            "lint",
            "--flow",
            "--baseline",
            str(baseline),
            str(FIXTURES / "flow102_ok.py"),
        ]
    )
    assert rc == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_malformed_baseline_is_a_usage_error(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{broken")
    rc = main(
        ["lint", "--flow", "--baseline", str(baseline), str(FIXTURES / "flow102_ok.py")]
    )
    assert rc == 2
    assert "bad baseline" in capsys.readouterr().err


def test_repo_default_invocation_is_clean(capsys):
    rc = main(["lint", "--flow", "--baseline", str(REPO_ROOT / "FLOW_BASELINE.json")])
    assert rc == 0
    assert "0 finding(s)" in capsys.readouterr().out
