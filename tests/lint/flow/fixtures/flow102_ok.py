"""FLOW102 ok-fixture: a process-pure task — args in, results out."""

from concurrent.futures import ProcessPoolExecutor


def _task(x):
    return x * x


def sweep(xs):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_task, xs))
