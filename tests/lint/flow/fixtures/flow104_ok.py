"""FLOW104 ok-fixture: the same shape, every mutation under the lock."""

import asyncio


class Gauge:  # flow: shared
    def __init__(self):
        self.samples = []
        self._lock = asyncio.Lock()

    async def record(self, value):
        async with self._lock:
            self.samples.append(value)


async def _watchdog(gauge):
    await gauge.record(1)


async def run(gauge):
    asyncio.create_task(_watchdog(gauge))
    await gauge.record(0)
    return gauge.samples
