"""FLOW101 ok-fixture: the same shape, raceless — every write locked."""

import threading


class Recorder:  # flow: shared
    def __init__(self):
        self.records = []
        self._lock = threading.Lock()

    def emit(self, record):
        with self._lock:
            self.records.append(record)


def _worker(rec):
    rec.emit({"from": "worker"})


def run(rec):
    t = threading.Thread(target=_worker, args=(rec,), daemon=True)
    t.start()
    rec.emit({"from": "main"})
    return rec.records
