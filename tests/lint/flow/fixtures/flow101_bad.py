"""FLOW101 fixture: the pre-PR-4 ``Tracer.emit`` race, distilled.

A daemon worker thread (the abandoned LP-solve timeout pattern) appends to
a shared record list while the main thread keeps emitting — the exact
corruption :class:`repro.obs.trace.Tracer` shipped with before its lock.
The concurrency pass must flag the unlocked write.
"""

import threading


class Recorder:  # flow: shared
    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)  # unlocked shared write — the race


def _worker(rec):
    rec.emit({"from": "worker"})


def run(rec):
    t = threading.Thread(target=_worker, args=(rec,), daemon=True)
    t.start()
    rec.emit({"from": "main"})
    return rec.records
