"""FLOW002 fixture: a wall-clock read on the simulation path."""

import time


def _stamp(record):
    record["at"] = time.time()  # wall clock feeding sim state
    return record


def run(record):
    return _stamp(record)
