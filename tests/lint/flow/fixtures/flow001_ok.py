"""FLOW001 ok-fixture: an explicit seeded generator threads through."""

import numpy as np


def _draw(rng, n):
    return rng.random(n)


def run(n, seed=0):
    rng = np.random.default_rng(seed)
    return _draw(rng, n)
