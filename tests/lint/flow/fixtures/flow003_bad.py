"""FLOW003 fixture: order-unstable iteration reachable from the entry."""


def _spread(machines):
    out = []
    for m in set(machines):  # lint: ok=AST001  (flow must flag this itself)
        out.append(m)
    return out


def run(machines):
    return _spread(machines)
