"""FLOW103 ok-fixture: the seed travels in the task arguments."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def _sample(n, seed):
    rng = np.random.default_rng(seed)
    return float(rng.random(n).sum())


def sweep(tasks):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(_sample, n, seed).result() for n, seed in tasks]
