"""FLOW102 fixture: a pool task leaning on mutable module state.

Each worker process gets its own copy of ``_cache``; the parent's stays
empty, so results silently diverge from the serial run.
"""

from concurrent.futures import ProcessPoolExecutor

_cache = {}


def _task(x):
    _cache[x] = x * x
    return _cache[x]


def sweep(xs):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_task, xs))
