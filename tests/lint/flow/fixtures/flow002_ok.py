"""FLOW002 ok-fixture: perf_counter is the sanctioned wall measurement.

Measured wall time rides along as an attribute and never feeds simulation
state — the repo-wide convention the pass encodes.
"""

import time


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run(fn):
    return _timed(fn)
