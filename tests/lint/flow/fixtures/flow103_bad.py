"""FLOW103 fixture: an unseeded ``default_rng()`` inside a pool task.

Worker results depend on per-process RNG state — the dataflow-backed
upgrade of syntactic rule AST006 must flag the task at its dispatch.
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def _sample(n):
    rng = np.random.default_rng()  # lint: ok=AST002  (flow must flag this)
    return float(rng.random(n).sum())


def sweep(sizes):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_sample, sizes))
