"""FLOW104 fixture: a service callback mutating shared state unlocked.

The serve-layer shape: a watchdog coroutine scheduled with
``asyncio.create_task`` appends to the same metrics buffer the request
path writes — every ``await`` on the main path is a point where the task
interleaves, so the unlocked writes corrupt the buffer just like the
thread race in ``flow101_bad.py``.
"""

import asyncio


class Gauge:  # flow: shared
    def __init__(self):
        self.samples = []

    def record(self, value):
        self.samples.append(value)  # unlocked shared write — the race


async def _watchdog(gauge):
    gauge.record(1)


async def run(gauge):
    asyncio.create_task(_watchdog(gauge))
    gauge.record(0)
    return gauge.samples
