"""FLOW003 ok-fixture: sorting before iterating pins the order."""


def _spread(machines):
    out = []
    for m in sorted(set(machines)):
        out.append(m)
    return out


def run(machines):
    return _spread(machines)
