"""FLOW201 fixture: adding seconds to dollars.

``task_cost`` and ``task_time`` are annotated sources; mixing their results
in ``+`` is exactly the plausible-nonsense arithmetic the units pass exists
to catch.
"""

from repro.units import DOLLARS, SECONDS, returns


@returns(DOLLARS)
def task_cost(cpu_seconds, price):
    return cpu_seconds * price


@returns(SECONDS)
def task_time(cpu_seconds, ecu):
    return cpu_seconds / ecu


def report(cpu_seconds, price, ecu):
    cost = task_cost(cpu_seconds, price)
    elapsed = task_time(cpu_seconds, ecu)
    return cost + elapsed  # dollars + seconds
