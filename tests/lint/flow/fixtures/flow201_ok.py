"""FLOW201 ok-fixture: unit-consistent arithmetic over tagged values."""

from repro.units import DOLLARS, SECONDS, returns


@returns(DOLLARS)
def task_cost(cpu_seconds, price):
    return cpu_seconds * price


@returns(SECONDS)
def task_time(cpu_seconds, ecu):
    return cpu_seconds / ecu


def report(cpu_seconds, price, ecu):
    total_cost = task_cost(cpu_seconds, price) + task_cost(cpu_seconds, price)
    total_time = task_time(cpu_seconds, ecu) + task_time(cpu_seconds, ecu)
    return {"dollars": total_cost, "seconds": total_time}
