"""FLOW001 fixture: ambient RNG two calls below a seeded entry point."""

import numpy as np


def _draw(n):
    return np.random.random(n)  # ambient global RNG — seeded runs diverge


def _plan(n):
    return _draw(n)


def run(n):
    return _plan(n)
