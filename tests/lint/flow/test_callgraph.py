"""Call-graph resolution: self-methods, thread/pool edges, reachability."""

import textwrap

from repro.lint.flow.callgraph import EdgeKind, build_call_graph
from repro.lint.flow.symbols import build_symbol_table


def _graph(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return build_call_graph(build_symbol_table([path]))


def _dsts(graph, src, kind=None):
    kinds = {kind} if kind is not None else None
    return {e.dst for e in graph.successors(src, kinds)}


def test_self_method_calls_resolve_through_the_class(tmp_path):
    graph = _graph(
        tmp_path,
        """
        class Sim:
            def run(self):
                self._step()

            def _step(self):
                self._emit()

            def _emit(self):
                pass
        """,
    )
    assert _dsts(graph, "mod:Sim.run") == {"mod:Sim._step"}
    assert _dsts(graph, "mod:Sim._step") == {"mod:Sim._emit"}


def test_self_method_resolves_through_base_class(tmp_path):
    graph = _graph(
        tmp_path,
        """
        class Base:
            def helper(self):
                pass

        class Child(Base):
            def run(self):
                self.helper()
        """,
    )
    assert _dsts(graph, "mod:Child.run") == {"mod:Base.helper"}


def test_thread_target_records_a_thread_edge(tmp_path):
    graph = _graph(
        tmp_path,
        """
        import threading

        def work():
            pass

        def spawn():
            t = threading.Thread(target=work, daemon=True)
            t.start()
        """,
    )
    assert _dsts(graph, "mod:spawn", EdgeKind.THREAD) == {"mod:work"}
    assert [e.dst for e in graph.thread_spawns] == ["mod:work"]


def test_pool_submit_and_map_record_pool_edges(tmp_path):
    graph = _graph(
        tmp_path,
        """
        def task(x):
            return x

        def fan(pool, xs):
            pool.submit(task, xs[0])
            pool.map(task, xs)
        """,
    )
    assert _dsts(graph, "mod:fan", EdgeKind.POOL) == {"mod:task"}
    assert {e.dst for e in graph.pool_dispatches} == {"mod:task"}


def test_callback_reference_counts_as_an_edge(tmp_path):
    graph = _graph(
        tmp_path,
        """
        def on_done(x):
            return x

        def schedule(events):
            events.append(on_done)
        """,
    )
    assert "mod:on_done" in _dsts(graph, "mod:schedule")


def test_nested_def_counts_as_potentially_running(tmp_path):
    graph = _graph(
        tmp_path,
        """
        def outer():
            def inner():
                leaf()
            return inner

        def leaf():
            pass
        """,
    )
    reach = graph.reachable(["mod:outer"])
    assert "mod:outer.<locals>.inner" in reach
    assert "mod:leaf" in reach


def test_constructor_call_binds_to_init(tmp_path):
    graph = _graph(
        tmp_path,
        """
        class Thing:
            def __init__(self):
                self.setup()

            def setup(self):
                pass

        def make():
            return Thing()
        """,
    )
    assert _dsts(graph, "mod:make") == {"mod:Thing.__init__"}
    assert "mod:Thing.setup" in graph.reachable(["mod:make"])


def test_chain_renders_root_to_target():
    from repro.lint.flow.callgraph import CallGraph

    parents = {"a": None, "b": "a", "c": "b"}
    assert CallGraph.chain(parents, "c") == ["a", "b", "c"]
