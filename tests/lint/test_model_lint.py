"""Model-linter tests: each LM/LIPS rule with a triggering and a clean case,
plus the strict solve-path contract (reject before any backend runs, count
findings in the metrics registry)."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.assembly import ModelAssembler
from repro.core.co_online import OnlineModelConfig, solve_co_online
from repro.core.simple_task import identity_placement
from repro.lint import (
    ModelLintError,
    ModelProfile,
    Severity,
    lint_lips,
    lint_lips_model,
    lint_model,
    lint_repo_models,
    strict_check,
)
from repro.lp.problem import AssembledLP, LinearProgram, Sense


def _rules(findings):
    return {f.rule for f in findings}


# -- generic LM rules --------------------------------------------------------


def test_clean_model_has_no_findings():
    lp = LinearProgram("clean")
    x = lp.new_var("x", upper=2.0)
    y = lp.new_var("y", upper=2.0)
    lp.add_constraint(x + y, Sense.GE, 1.0, name="cover")
    lp.set_objective(x + 2.0 * y)
    assert lint_model(lp) == []


def test_lm001_dangling_variable():
    lp = LinearProgram()
    x = lp.new_var("x", upper=1.0)
    lp.new_var("orphan", upper=1.0)
    lp.add_constraint(x + 0.0, Sense.LE, 1.0)
    lp.set_objective(x + 0.0)
    findings = lint_model(lp)
    assert _rules(findings) == {"LM001"}
    assert "orphan" in findings[0].message


def _assembled(b_ub, n_rows=1, n_vars=1):
    """An AssembledLP whose <= rows are all structurally zero."""
    return AssembledLP(
        c=np.ones(n_vars),
        a_ub=sparse.csr_matrix((n_rows, n_vars)),
        b_ub=np.asarray(b_ub, dtype=float),
        a_eq=sparse.csr_matrix((0, n_vars)),
        b_eq=np.zeros(0),
        bounds=np.column_stack([np.zeros(n_vars), np.ones(n_vars)]),
        objective_constant=0.0,
        name="synthetic",
    )


def test_lm002_zero_row_warning_and_error():
    satisfiable = lint_model(_assembled([1.0]))
    assert _rules(satisfiable) == {"LM002"}
    assert satisfiable[0].severity is Severity.WARNING

    impossible = lint_model(_assembled([-1.0]))
    assert _rules(impossible) == {"LM002"}
    assert impossible[0].severity is Severity.ERROR
    assert "infeasible" in impossible[0].message


def test_lm003_duplicate_and_lm004_dominated_rows():
    lp = LinearProgram()
    x = lp.new_var("x", upper=5.0)
    lp.add_constraint(x + 0.0, Sense.LE, 2.0, name="tight")
    lp.add_constraint(x + 0.0, Sense.LE, 2.0, name="copy")
    lp.add_constraint(x + 0.0, Sense.LE, 4.0, name="loose")
    lp.set_objective(x + 0.0)
    findings = lint_model(lp)
    assert _rules(findings) == {"LM003", "LM004"}
    assert len(findings) == 2


def test_lm005_unbounded_improving_direction():
    lp = LinearProgram()
    lp.new_var("free")  # upper defaults to +inf
    lp.set_objective(-1.0 * lp.variable_by_name("free"))
    findings = lint_model(lp, ModelProfile(dollar_objective=False))
    assert _rules(findings) == {"LM005"}
    assert findings[0].severity is Severity.ERROR


def test_lm005_silenced_by_limiting_constraint():
    lp = LinearProgram()
    free = lp.new_var("free")
    lp.add_constraint(free + 0.0, Sense.LE, 10.0)
    lp.set_objective(-1.0 * free)
    findings = lint_model(lp, ModelProfile(dollar_objective=False))
    assert findings == []


def test_lm006_negative_dollar_cost():
    lp = LinearProgram()
    x = lp.new_var("x", upper=1.0)
    lp.add_constraint(x + 0.0, Sense.LE, 1.0)
    lp.set_objective(-3.0 * x)
    findings = lint_model(lp)  # dollar objective is the default profile
    assert _rules(findings) == {"LM006"}
    # non-dollar objectives are allowed to pay for work
    assert lint_model(lp, ModelProfile(dollar_objective=False)) == []


def test_lm007_conditioning_spread():
    lp = LinearProgram()
    x = lp.new_var("x", upper=1.0)
    y = lp.new_var("y", upper=1.0)
    lp.add_constraint(1e-5 * x + 1e5 * y, Sense.LE, 1.0)
    lp.set_objective(x + y)
    findings = lint_model(lp)
    assert _rules(findings) == {"LM007"}
    assert "rescale" in findings[0].message


# -- LiPS well-posedness rules ----------------------------------------------


def _online_assembler(inp, **overrides):
    kwargs = dict(
        include_xd=True, horizon=600.0, include_fake=True, epoch_bandwidth=True
    )
    kwargs.update(overrides)
    return ModelAssembler(inp, **kwargs)


def test_lips_rules_pass_on_well_formed_models(small_input):
    assert lint_repo_models() == []
    assembler = _online_assembler(small_input)
    asm = assembler.build()
    assert lint_lips(assembler, asm, "co-online") == []


def test_lips_rejects_unknown_kind(small_input):
    assembler = _online_assembler(small_input)
    asm = assembler.build()
    with pytest.raises(ValueError, match="unknown LiPS model kind"):
        lint_lips(assembler, asm, "figure-12")


def test_lips001_online_without_fake_node(small_input):
    assembler = _online_assembler(small_input, include_fake=False)
    asm = assembler.build()
    findings = lint_lips(assembler, asm, "co-online")
    assert "LIPS001" in _rules(findings)
    # the same assembler is a legitimate offline model
    offline = ModelAssembler(small_input, include_xd=True)
    assert lint_lips(offline, offline.build(), "co-offline") == []


def test_lips002_fake_cost_must_dominate(small_input):
    assembler = _online_assembler(small_input)
    asm = assembler.build()
    asm.c[assembler.off_f] = 0.0  # job 0's escape hatch is now free
    findings = lint_lips(assembler, asm, "co-online")
    assert _rules(findings) == {"LIPS002"}
    assert "job 0" in findings[0].message


def test_lips003_missing_epoch_capacity_rows(small_input):
    assembler = _online_assembler(small_input, epoch_bandwidth=False)
    asm = assembler.build()  # no constraint-(21) rows were emitted
    assembler.epoch_bandwidth = True  # model now *claims* to enforce them
    findings = lint_lips(assembler, asm, "co-online")
    assert "LIPS003" in _rules(findings)


def test_lips004_malformed_data_coverage(small_input):
    assembler = _online_assembler(small_input)
    asm = assembler.build()
    start, _stop = assembler.row_ranges["data_coverage"]
    asm.b_ub[start] = -2.0  # object 0 forced to be placed twice
    findings = lint_lips(assembler, asm, "co-online")
    assert _rules(findings) == {"LIPS004"}


def test_lips005_missing_job_coverage(small_input):
    assembler = _online_assembler(small_input)
    asm = assembler.build()
    assembler.row_ranges.pop("job_coverage")
    findings = lint_lips(assembler, asm, "co-online")
    assert "LIPS005" in _rules(findings)


def test_lint_lips_model_carries_row_family_labels(small_input):
    """LM findings on assembler-built models name constraint families."""
    assembler = _online_assembler(small_input)
    asm = assembler.build()
    # duplicate the first job-coverage row to provoke LM003 with a label
    start, _stop = assembler.row_ranges["job_coverage"]
    row = asm.a_ub.tocsr()[start]
    asm.a_ub = sparse.vstack([asm.a_ub, row]).tocsr()
    asm.b_ub = np.append(asm.b_ub, asm.b_ub[start])
    findings = [f for f in lint_lips_model(assembler, asm, "co-online") if f.rule == "LM003"]
    assert findings and "job_coverage[0]" in findings[0].message


# -- strict solve-path contract ---------------------------------------------


class _ExplodingBackend:
    """Fails the test if any solve reaches it."""

    def solve_assembled(self, asm):  # lint: ok=AST005
        raise AssertionError("solver ran on a model that failed static lint")


def test_bad_online_model_rejected_before_solver(small_input, monkeypatch):
    from repro.core import co_online

    class NoFakeAssembler(ModelAssembler):
        def __init__(self, inp, **kwargs):
            kwargs["include_fake"] = False
            super().__init__(inp, **kwargs)

    monkeypatch.setattr(co_online, "ModelAssembler", NoFakeAssembler)
    with pytest.raises(ModelLintError) as exc:
        solve_co_online(
            small_input,
            OnlineModelConfig(epoch_length=10.0),
            backend=_ExplodingBackend(),
            strict=True,
        )
    assert "LIPS001" in {f.rule for f in exc.value.findings}
    assert "LIPS001" in str(exc.value)


def test_strict_solve_passes_on_well_formed_model(small_input):
    sol = solve_co_online(
        small_input, OnlineModelConfig(epoch_length=1e6, enforce_bandwidth=False), strict=True
    )
    assert sol.objective >= 0.0


def test_strict_simple_and_offline_paths(small_input):
    from repro.core.co_offline import solve_co_offline
    from repro.core.simple_task import solve_simple_task

    assert solve_simple_task(small_input, strict=True).objective >= 0.0
    assert solve_co_offline(small_input, strict=True).objective >= 0.0


def test_strict_check_counts_findings_in_registry(small_input):
    from repro.obs.registry import MetricsRegistry, use_registry

    assembler = _online_assembler(small_input)
    asm = assembler.build()
    asm.name = "co-online"
    asm.c[assembler.off_f] = 0.0  # seed one LIPS002 error
    registry = MetricsRegistry()
    with use_registry(registry):
        with pytest.raises(ModelLintError):
            strict_check(assembler, asm, "co-online")
    counter = registry.counter("lint_findings_total")
    assert counter.value(rule="LIPS002", model="co-online", severity="error") == 1.0


def test_identity_placement_lints_clean(small_input):
    assembler = ModelAssembler(
        small_input, include_xd=False, fixed_placement=identity_placement(small_input)
    )
    asm = assembler.build()
    assert strict_check(assembler, asm, "simple-task") == []
