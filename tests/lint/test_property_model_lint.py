"""Property test: every LP the three paper builders emit is statically clean.

This is the load-bearing guarantee behind running ``strict`` solve paths in
production: on arbitrary clusters/workloads the shipped formulations must
never trip the model linter, so an ERROR finding always indicates a real
modelling bug rather than noise.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster.builder import ClusterBuilder
from repro.cluster.topology import Topology
from repro.core.assembly import ModelAssembler
from repro.core.model import SchedulingInput
from repro.core.simple_task import identity_placement
from repro.lint import lint_lips_model
from repro.workload.job import DataObject, Job, Workload


@st.composite
def scheduling_input(draw):
    n_machines = draw(st.integers(min_value=1, max_value=4))
    n_jobs = draw(st.integers(min_value=1, max_value=4))
    zones = ["z0", "z1"]
    b = ClusterBuilder(topology=Topology.of(zones), default_uptime=50_000.0)
    for i in range(n_machines):
        b.add_machine(
            f"m{i}",
            ecu=draw(st.sampled_from([1.0, 2.0, 5.0])),
            cpu_cost=draw(st.floats(min_value=1e-6, max_value=1e-4)),
            zone=zones[i % 2],
        )
    cluster = b.build()

    data, jobs = [], []
    for k in range(n_jobs):
        if draw(st.integers(min_value=0, max_value=3)) > 0:
            d = DataObject(
                data_id=len(data),
                name=f"d{len(data)}",
                size_mb=draw(st.floats(min_value=64.0, max_value=2048.0)),
                origin_store=draw(st.integers(min_value=0, max_value=n_machines - 1)),
            )
            data.append(d)
            jobs.append(
                Job(
                    job_id=k,
                    name=f"j{k}",
                    tcp=draw(st.floats(min_value=0.01, max_value=2.0)),
                    data_ids=[d.data_id],
                    num_tasks=draw(st.integers(min_value=1, max_value=32)),
                )
            )
        else:
            jobs.append(
                Job(
                    job_id=k,
                    name=f"j{k}",
                    tcp=0.0,
                    num_tasks=draw(st.integers(min_value=1, max_value=8)),
                    cpu_seconds_noinput=draw(st.floats(min_value=1.0, max_value=1000.0)),
                )
            )
    return SchedulingInput.from_parts(cluster, Workload(jobs=jobs, data=data))


@given(scheduling_input())
@settings(max_examples=25, deadline=None)
def test_simple_task_model_lints_clean(inp):
    assembler = ModelAssembler(
        inp, include_xd=False, fixed_placement=identity_placement(inp)
    )
    assert lint_lips_model(assembler, assembler.build(), "simple-task") == []


@given(scheduling_input())
@settings(max_examples=25, deadline=None)
def test_co_offline_model_lints_clean(inp):
    assembler = ModelAssembler(inp, include_xd=True)
    assert lint_lips_model(assembler, assembler.build(), "co-offline") == []


@given(scheduling_input(), st.floats(min_value=1.0, max_value=1e5))
@settings(max_examples=25, deadline=None)
def test_co_online_model_lints_clean(inp, epoch):
    assembler = ModelAssembler(
        inp, include_xd=True, horizon=epoch, include_fake=True, epoch_bandwidth=True
    )
    assert lint_lips_model(assembler, assembler.build(), "co-online") == []
