"""AST004 positive fixture: mutable default arguments."""


def push(item, acc=[]):
    acc.append(item)
    return acc


def tally(key, *, counts=dict()):
    counts[key] = counts.get(key, 0) + 1
    return counts
