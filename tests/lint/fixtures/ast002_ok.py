"""AST002 negative fixture: integral-float sentinels and tolerance compares."""

import math


def classify(x, y):
    if x == 0.0:  # exact-zero sentinel: legitimate
        return "unset"
    if y == 1.0:
        return "whole"
    return math.isclose(x, 0.5, abs_tol=1e-9)
