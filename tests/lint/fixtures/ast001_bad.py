"""AST001 positive fixture: iteration directly over unordered sets."""


def drain(items):
    out = []
    for item in {3, 1, 2}:
        out.append(item)
    out.extend(x for x in set(items))
    out.extend(y for y in set(items) - {0})
    return out
