"""AST006 negative fixture: fan-out APIs carry their seeds explicitly."""

from concurrent.futures import ProcessPoolExecutor


def sweep(fn, seeded_tasks, workers):
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, seeded_tasks))


def run_point(fn, task, seed):
    with ProcessPoolExecutor(max_workers=1) as pool:
        return pool.submit(fn, task, seed).result()


def plain_serial(tasks):
    return [str(t) for t in tasks]
