"""AST002 positive fixture: exact equality against non-integral floats."""


def classify(x, y):
    if x == 0.5:
        return "half"
    return y != 2.75
