"""AST001 negative fixture: set iteration with a fixed order."""


def drain(items):
    out = []
    for item in sorted({3, 1, 2}):
        out.append(item)
    out.extend(x for x in sorted(set(items)))
    for pair in [("a", 1), ("b", 2)]:
        out.append(pair)
    return out
