"""AST006 positive fixture: process fan-out with no seed parameter."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor


def sweep_unseeded(tasks):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(str, tasks))


def spawn_unseeded(target):
    proc = multiprocessing.Process(target=target)
    proc.start()
    return proc
