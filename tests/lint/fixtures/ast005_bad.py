"""AST005 positive fixture: a solve_assembled that bypasses lpprof."""


class SilentBackend:
    def solve_assembled(self, asm):
        return asm
