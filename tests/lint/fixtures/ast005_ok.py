"""AST005 negative fixture: solve_assembled reporting to lpprof."""

from repro.obs import lpprof


class ObservedBackend:
    def solve_assembled(self, asm):
        if lpprof.active():
            lpprof.observe(model=getattr(asm, "name", "lp"))
        return asm
