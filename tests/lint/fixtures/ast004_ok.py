"""AST004 negative fixture: None default with in-body construction."""


def push(item, acc=None):
    if acc is None:
        acc = []
    acc.append(item)
    return acc


def scaled(x, factor=1.0, label=("a", "b")):
    return x * factor, label
