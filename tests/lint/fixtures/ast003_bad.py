"""AST003 positive fixture: int(round(x)) banker's-rounding hazard."""


def task_count(fraction, total):
    return int(round(fraction * total))
