"""AST003 negative fixture: half-up rounding and two-arg round."""

import math


def task_count(fraction, total):
    return math.floor(fraction * total + 0.5)


def truncated(x):
    return int(round(x, 2))
