"""CLI tests for ``python -m repro lint`` and the subcommand registry."""

import json

import pytest

from repro.cli import SUBCOMMANDS, build_lint_parser, main


def test_lint_subcommand_registered():
    assert "lint" in SUBCOMMANDS
    assert "report" in SUBCOMMANDS


def test_repo_lints_clean(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_json_format_parses(capsys):
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["errors"] == 0
    assert payload["warnings"] == 0


def test_findings_set_exit_code(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x):\n    return int(round(x))\n")
    assert main(["lint", "--no-models", str(bad)]) == 1
    assert "AST003" in capsys.readouterr().out


def test_findings_exit_code_in_json_mode(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x, acc=[]):\n    return acc\n")
    assert main(["lint", "--no-models", "--format", "json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload["findings"]] == ["AST004"]
    assert payload["warnings"] == 1


def test_explicit_clean_path_exits_zero(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("def f(x):\n    return x + 1\n")
    assert main(["lint", "--no-models", str(good)]) == 0


def test_bad_format_is_usage_error():
    with pytest.raises(SystemExit) as exc:
        build_lint_parser().parse_args(["--format", "xml"])
    assert exc.value.code == 2


def test_unknown_experiment_mentions_subcommands(capsys):
    assert main(["bogus"]) == 2
    err = capsys.readouterr().err
    assert "lint" in err and "report" in err
