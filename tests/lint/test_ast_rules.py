"""AST rule tests driven by the fixture corpus in ``tests/lint/fixtures``.

Each rule has a ``<rule>_bad.py`` fixture that must trigger it (and nothing
else) and a ``<rule>_ok.py`` fixture that must lint clean — so a rule change
that widens or narrows its net fails here first.
"""

from pathlib import Path

import pytest

from repro.lint import Severity, lint_paths, lint_source
from repro.lint.runner import iter_python_files, suppressed_rules

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = [
    ("AST001", "ast001"),
    ("AST002", "ast002"),
    ("AST003", "ast003"),
    ("AST004", "ast004"),
    ("AST005", "ast005"),
    ("AST006", "ast006"),
]


@pytest.mark.parametrize("rule_id,stem", RULE_FIXTURES)
def test_bad_fixture_triggers_exactly_its_rule(rule_id, stem):
    findings = lint_paths([FIXTURES / f"{stem}_bad.py"])
    assert findings, f"{stem}_bad.py produced no findings"
    assert {f.rule for f in findings} == {rule_id}
    assert all(f.severity is Severity.WARNING for f in findings)
    assert all(f.line is not None for f in findings)


@pytest.mark.parametrize("rule_id,stem", RULE_FIXTURES)
def test_ok_fixture_is_clean(rule_id, stem):
    findings = lint_paths([FIXTURES / f"{stem}_ok.py"])
    assert findings == [], [f.render() for f in findings]


def test_ast001_counts_every_set_iteration():
    findings = lint_paths([FIXTURES / "ast001_bad.py"])
    # for-loop, generator over set(...), generator over set algebra
    assert len(findings) == 3


def test_ast004_flags_both_positional_and_keyword_defaults():
    findings = lint_paths([FIXTURES / "ast004_bad.py"])
    assert len(findings) == 2
    assert any("push" in f.message for f in findings)
    assert any("tally" in f.message for f in findings)


def test_ast006_flags_both_pool_styles():
    findings = lint_paths([FIXTURES / "ast006_bad.py"])
    assert len(findings) == 2
    assert any("sweep_unseeded" in f.message for f in findings)
    assert any("spawn_unseeded" in f.message for f in findings)


def test_suppression_comment_silences_one_rule():
    src = "def f(x):\n    return int(round(x))  # lint: ok=AST003\n"
    assert lint_source(src) == []
    # without the marker the finding comes back
    assert [f.rule for f in lint_source(src.replace("  # lint: ok=AST003", ""))] == ["AST003"]


def test_suppression_is_per_rule():
    src = "def f(x):\n    return int(round(x))  # lint: ok=AST001\n"
    assert [f.rule for f in lint_source(src)] == ["AST003"]


def test_suppressed_rules_parses_lists():
    assert suppressed_rules("x = 1  # lint: ok=AST001, AST003") == {"AST001", "AST003"}
    assert suppressed_rules("x = 1  # just a comment") == frozenset()


def test_syntax_error_becomes_ast999():
    findings = lint_source("def broken(:\n", filename="broken.py")
    assert [f.rule for f in findings] == ["AST999"]
    assert findings[0].severity is Severity.ERROR
    assert findings[0].location == "broken.py"


def test_unreadable_file_becomes_ast998(tmp_path):
    findings = lint_paths([tmp_path / "missing.py"])
    assert [f.rule for f in findings] == ["AST998"]
    assert findings[0].severity is Severity.ERROR


def test_iter_python_files_expands_directories():
    files = iter_python_files([FIXTURES])
    names = {p.name for p in files}
    assert {f"{stem}_bad.py" for _, stem in RULE_FIXTURES} <= names
    # deduplicates overlapping path specs
    assert iter_python_files([FIXTURES, FIXTURES / "ast001_bad.py"]) == files
