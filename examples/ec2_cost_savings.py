#!/usr/bin/env python
"""EC2 cost savings: replay the paper's 20-node Table IV experiment.

Simulates the full Hadoop cluster (HDFS blocks, slots, heartbeats) on the
paper's EC2 testbed — 20 nodes across three availability zones, with a
configurable share of cheap-per-cycle c1.medium instances — and runs the
Table IV workload (1608 map tasks, 100 GB) under three schedulers:

* Hadoop's default FIFO-locality scheduler (speculation on),
* the delay scheduler (speculation on),
* LiPS with a 30-minute epoch (speculation off, per the paper).

Run:  python examples/ec2_cost_savings.py [c1_fraction]
"""

import sys

from repro.cluster import build_paper_testbed
from repro.hadoop import HadoopSimulator, SimConfig
from repro.schedulers import DelayScheduler, FifoScheduler, LipsScheduler
from repro.workload import table4_jobs


def main() -> None:
    c1_fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    cluster = build_paper_testbed(20, c1_medium_fraction=c1_fraction)
    workload = table4_jobs()
    print(
        f"cluster: 20 nodes, {c1_fraction:.0%} c1.medium, 3 zones; "
        f"workload: {workload.num_jobs} jobs, {workload.total_tasks()} maps, "
        f"{workload.total_input_mb()/1024:.0f} GB\n"
    )

    lineup = [
        ("hadoop-default", FifoScheduler(), True),
        ("delay", DelayScheduler(), True),
        ("lips", LipsScheduler(epoch_length=1800.0), False),
    ]
    results = {}
    for name, scheduler, speculative in lineup:
        sim = HadoopSimulator(
            cluster,
            workload,
            scheduler,
            SimConfig(placement_seed=7, speculative=speculative),
        )
        m = sim.run().metrics
        results[name] = m
        print(
            f"{name:15s} cost=${m.total_cost:7.4f}  makespan={m.makespan:7.0f}s  "
            f"locality={m.data_locality:6.1%}  moved={m.moved_mb/1024:6.1f}GB"
        )

    base = results["delay"].total_cost
    lips = results["lips"].total_cost
    print(f"\nLiPS saves {1 - lips/base:.1%} of the dollar cost vs the delay scheduler")
    slow = results["lips"].makespan / results["delay"].makespan - 1
    print(f"...at the price of a {slow:.0%} longer makespan (the paper's tradeoff)")


if __name__ == "__main__":
    main()
