#!/usr/bin/env python
"""A dependent analytics pipeline: DAG levelling + co-scheduling.

The paper (Section III) reduces DAG workloads to independent levels and
co-schedules each level.  This example builds a small ETL-style diamond —

    ingest-logs ─┬─> sessionize ─┐
    ingest-docs ─┘                ├─> train-report
                   count-terms  ──┘

— levels it, co-schedules each level on a two-zone cluster, and shows how
the carried-forward data placement keeps later levels' reads local.  It
closes with the capacity shadow prices: what one more CPU-second on each
machine would be worth.

Run:  python examples/pipeline_dag.py
"""

from repro.cluster import ClusterBuilder, Topology
from repro.core.analysis import capacity_shadow_prices
from repro.core.model import SchedulingInput
from repro.workload.dag import JobDag, schedule_dag_offline
from repro.workload.job import DataObject, Job, Workload


def build_cluster():
    topo = Topology.of(["on-prem", "cloud"])
    # uptime chosen so the cheap cloud nodes alone cannot absorb the whole
    # pipeline: the shadow-price section below then shows them as the
    # bottleneck worth expanding
    b = ClusterBuilder(topology=topo, default_uptime=500.0)
    b.add_machine("prem-0", ecu=2.0, cpu_cost=4.5e-5, zone="on-prem")
    b.add_machine("prem-1", ecu=2.0, cpu_cost=4.5e-5, zone="on-prem")
    b.add_machine("cloud-0", ecu=5.0, cpu_cost=1.1e-5, zone="cloud")
    b.add_machine("cloud-1", ecu=5.0, cpu_cost=1.1e-5, zone="cloud")
    return b.build()


def build_pipeline():
    data = [
        DataObject(data_id=0, name="raw-logs", size_mb=4096.0, origin_store=0),
        DataObject(data_id=1, name="raw-docs", size_mb=2048.0, origin_store=1),
        DataObject(data_id=2, name="sessions", size_mb=1024.0, origin_store=0),
        DataObject(data_id=3, name="terms", size_mb=512.0, origin_store=1),
    ]
    jobs = [
        Job(job_id=0, name="ingest-logs", tcp=20 / 64, data_ids=[0], num_tasks=64),
        Job(job_id=1, name="ingest-docs", tcp=20 / 64, data_ids=[1], num_tasks=32),
        Job(job_id=2, name="sessionize", tcp=75 / 64, data_ids=[2], num_tasks=16),
        Job(job_id=3, name="count-terms", tcp=90 / 64, data_ids=[3], num_tasks=8),
        Job(job_id=4, name="train-report", tcp=90 / 64, data_ids=[2], num_tasks=16),
    ]
    dag = JobDag(Workload(jobs=jobs, data=data))
    dag.add_dependency(0, 2)  # sessionize needs ingested logs
    dag.add_dependency(1, 2)
    dag.add_dependency(1, 3)  # count-terms needs ingested docs
    dag.add_dependency(2, 4)  # the report trains on sessions
    dag.add_dependency(3, 4)
    return dag


def main() -> None:
    cluster = build_cluster()
    dag = build_pipeline()
    print("pipeline levels (independent job sets):")
    for i, level in enumerate(dag.levels()):
        names = [dag.workload.jobs[j].name for j in level]
        print(f"  level {i}: {', '.join(names)}")

    result = schedule_dag_offline(cluster, dag)
    print(f"\nco-scheduled {result.num_levels} levels:")
    for lvl in result.levels:
        names = [dag.workload.jobs[j].name for j in lvl.job_ids]
        print(
            f"  level {lvl.level_index}: cost=${lvl.cost:.4f} "
            f"span~{lvl.makespan_estimate:.0f}s  ({', '.join(names)})"
        )
    print(f"total pipeline cost: ${result.total_cost:.4f}")
    print(f"back-to-back makespan estimate: {result.makespan_estimate:.0f}s")

    # what would extra capacity be worth? (over the whole flattened set)
    inp = SchedulingInput.from_parts(cluster, dag.workload)
    sp = capacity_shadow_prices(inp)
    print("\ncapacity shadow prices ($ saved per extra equivalent-CPU-second):")
    for m in cluster.machines:
        tag = "  <- bottleneck" if sp.machine_cpu[m.machine_id] > 1e-12 else ""
        print(f"  {m.name:9s} {sp.machine_cpu[m.machine_id]:.2e}{tag}")


if __name__ == "__main__":
    main()
