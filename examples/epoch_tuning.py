#!/usr/bin/env python
"""Epoch tuning: explore LiPS' cost/performance dial (paper Figure 8).

The epoch length is LiPS' one user-facing knob: short epochs behave almost
greedily (fast, pricey), long epochs let the LP concentrate work on the
cheapest nodes (cheap, slow).  This example sweeps the epoch on the 20-node
testbed, prints the frontier, and picks the cheapest epoch meeting a
makespan budget — the "users can fine-tune the cost-performance tradeoff"
workflow the paper advertises.

Run:  python examples/epoch_tuning.py [makespan_budget_seconds]
"""

import sys

from repro.cluster import build_paper_testbed
from repro.hadoop import HadoopSimulator, SimConfig
from repro.schedulers import LipsScheduler
from repro.workload import table4_jobs

EPOCHS = (300.0, 600.0, 900.0, 1200.0, 1800.0, 2400.0)


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 3000.0
    cluster = build_paper_testbed(20, c1_medium_fraction=0.5)
    workload = table4_jobs()

    frontier = []
    print(f"{'epoch':>8s} {'cost $':>10s} {'makespan s':>12s}")
    for e in EPOCHS:
        sim = HadoopSimulator(
            cluster,
            workload,
            LipsScheduler(epoch_length=e),
            SimConfig(placement_seed=7, speculative=False),
        )
        m = sim.run().metrics
        frontier.append((e, m.total_cost, m.makespan))
        print(f"{e:8.0f} {m.total_cost:10.4f} {m.makespan:12.0f}")

    feasible = [(c, e, t) for e, c, t in frontier if t <= budget]
    print(f"\nmakespan budget: {budget:.0f}s")
    if feasible:
        cost, epoch, t = min(feasible)
        print(f"-> pick epoch={epoch:.0f}s: cost=${cost:.4f}, makespan={t:.0f}s")
    else:
        e, c, t = min(frontier, key=lambda r: r[2])
        print(f"-> no epoch meets the budget; fastest is epoch={e:.0f}s at {t:.0f}s")


if __name__ == "__main__":
    main()
