#!/usr/bin/env python
"""Multi-tenant billing: who pays what under LiPS?

The paper's cost framing is a cloud customer's bill; in a shared cluster
that bill must be split across teams.  This example runs a mixed
three-team workload under LiPS, records the attempt-level history, and
allocates the ledger into per-team bills (shared placement transfers are
spread proportionally to direct spend).  The closing ASCII timeline shows
LiPS packing the cheap nodes.

Run:  python examples/tenant_billing.py
"""

from repro.cluster import build_paper_testbed
from repro.cost.chargeback import chargeback
from repro.hadoop import HadoopSimulator, SimConfig
from repro.hadoop.history import render_timeline
from repro.schedulers import LipsScheduler
from repro.workload import DataObject, Workload, make_job


def build_workload():
    data = [
        DataObject(data_id=0, name="clickstream", size_mb=8 * 1024.0, origin_store=0),
        DataObject(data_id=1, name="catalog", size_mb=4 * 1024.0, origin_store=1),
        DataObject(data_id=2, name="logs", size_mb=6 * 1024.0, origin_store=2),
    ]
    jobs = [
        make_job("wordcount", 0, data_ids=[0], num_tasks=128, pool="analytics"),
        make_job("grep", 1, data_ids=[2], num_tasks=96, pool="sre"),
        make_job("stress2", 2, data_ids=[1], num_tasks=64, pool="search"),
        make_job("grep", 3, data_ids=[0], num_tasks=128, pool="analytics"),
        make_job("pi", 4, num_tasks=4, pool="search"),
    ]
    return Workload(jobs=jobs, data=data)


def main() -> None:
    cluster = build_paper_testbed(12, c1_medium_fraction=0.5, seed=3)
    workload = build_workload()
    sim = HadoopSimulator(
        cluster,
        workload,
        LipsScheduler(epoch_length=1800.0),
        SimConfig(placement_seed=5, speculative=False, record_history=True),
    )
    metrics = sim.run().metrics

    report = chargeback(metrics.ledger, workload)
    print(f"cluster bill: ${metrics.total_cost:.4f} over {metrics.makespan:.0f}s\n")
    print(f"{'team':12s} {'direct $':>10s} {'shared $':>10s} {'total $':>10s}")
    for pool, direct, shared, total in report.rows():
        print(f"{pool:12s} {direct:10.4f} {shared:10.4f} {total:10.4f}")
    assert abs(report.total - metrics.total_cost) < 1e-9

    cheap = sorted(
        cluster.machines, key=lambda m: m.cpu_cost
    )[:4]
    print("\noccupancy of the four cheapest nodes (LiPS packs them):")
    print(
        render_timeline(
            sim.history,
            [m.machine_id for m in cheap],
            width=60,
            labels={m.machine_id: m.name for m in cheap},
        )
    )


if __name__ == "__main__":
    main()
