#!/usr/bin/env python
"""A Facebook-like day at scale: the paper's 100-node SWIM experiment.

Synthesises a day-long, heavy-tailed MapReduce trace (interactive / medium /
long job classes, diurnal arrivals — the published shape of SWIM's FB-2010
workload), replays it on a 100-node, three-instance-type, three-zone EC2
cluster, and compares the dollar bill under the default, delay, and LiPS
schedulers.

This is the paper's Figures 9-10 at example scale (pass --full for the real
thing; it takes a few minutes).

Run:  python examples/facebook_day.py [--full]
"""

import sys

from repro.experiments.common import DEFAULT, DELAY, LIPS
from repro.experiments.fig9_100node_cost import run
from repro.workload import SwimConfig, synthesize_facebook_day
from repro.workload.swim import class_histogram


def main() -> None:
    full = "--full" in sys.argv
    params = {} if full else dict(num_nodes=30, num_jobs=90, duration_s=6 * 3600.0)

    # show what the synthetic trace looks like first
    preview = synthesize_facebook_day(SwimConfig(num_jobs=params.get("num_jobs", 400)))
    sizes = sorted(j.num_tasks for j in preview.jobs)
    print(
        f"trace preview: {preview.num_jobs} jobs, classes={class_histogram(preview)}, "
        f"map counts p50={sizes[len(sizes)//2]}, p90={sizes[int(len(sizes)*0.9)]}, "
        f"max={sizes[-1]}"
    )

    res = run(**params)
    comp = res.comparison
    print(f"\n{res.num_nodes}-node cluster, {res.num_jobs} jobs:")
    for name in (DEFAULT, DELAY, LIPS):
        m = comp.metrics[name]
        print(
            f"  {name:8s} cost=${m.total_cost:8.3f}  makespan={m.makespan:8.0f}s  "
            f"locality={m.data_locality:6.1%}"
        )
    print(
        f"\nLiPS saving: {comp.saving_vs(DEFAULT):.1%} vs default, "
        f"{comp.saving_vs(DELAY):.1%} vs delay "
        f"(paper at full scale: 68-69% vs both)"
    )


if __name__ == "__main__":
    main()
