#!/usr/bin/env python
"""Quickstart: co-schedule data and tasks on a toy heterogeneous cluster.

Builds a 6-node, two-zone cluster with a 5x CPU-price spread, a small mixed
workload, and solves the paper's offline co-scheduling LP (Figure 3).  Then
compares the optimal dollar cost with a locality-greedy baseline and shows
the LP's data-placement decisions.

Run:  python examples/quickstart.py
"""

from repro.cluster import ClusterBuilder, Topology
from repro.core import SchedulingInput, solve_co_offline, solve_simple_task, validate_solution
from repro.workload import DataObject, Job, Workload


def build_cluster():
    """Two zones; zone-b machines are 5x cheaper per CPU-second."""
    topo = Topology.of(["zone-a", "zone-b"])
    b = ClusterBuilder(topology=topo, default_uptime=7200.0)
    for i in range(3):
        b.add_machine(f"pricey-{i}", ecu=2.0, cpu_cost=5.0e-5, zone="zone-a")
    for i in range(3):
        b.add_machine(f"cheap-{i}", ecu=5.0, cpu_cost=1.0e-5, zone="zone-b")
    return b.build()


def build_workload():
    """Four jobs; two of them share the same input (co-scheduling pays:
    moving the shared object once beats two runtime remote reads)."""
    data = [
        DataObject(data_id=0, name="logs", size_mb=4096.0, origin_store=0),
        DataObject(data_id=1, name="docs", size_mb=2048.0, origin_store=1),
    ]
    jobs = [
        Job(job_id=0, name="grep-logs", tcp=20.0 / 64.0, data_ids=[0], num_tasks=64),
        Job(job_id=1, name="index-logs", tcp=37.0 / 64.0, data_ids=[0], num_tasks=64),
        Job(job_id=2, name="count-docs", tcp=90.0 / 64.0, data_ids=[1], num_tasks=32),
        Job(job_id=3, name="estimate-pi", tcp=0.0, num_tasks=8, cpu_seconds_noinput=2400.0),
    ]
    return Workload(jobs=jobs, data=data)


def main() -> None:
    cluster = build_cluster()
    workload = build_workload()
    inp = SchedulingInput.from_parts(cluster, workload)

    # Baseline: keep data where it is, schedule tasks cost-optimally around
    # the *fixed* placement (paper Figure 2).
    fixed = solve_simple_task(inp)
    # LiPS: let the LP move the data too (paper Figure 3).  The tiebreak
    # keeps the LP from scattering redundant copies over free intra-zone
    # stores.
    co = solve_co_offline(inp, placement_tiebreak=1e-5)

    report = validate_solution(inp, co)
    assert report.ok, report.violations

    print(f"fixed-placement optimal cost : ${fixed.objective:.4f}")
    print(f"co-scheduled optimal cost    : ${co.objective:.4f}")
    saving = 1.0 - co.objective / fixed.objective
    print(f"saving from moving the data  : {saving:.1%}\n")

    bd = co.cost_breakdown(inp)
    print("co-schedule cost breakdown:")
    print(f"  moving data into place : ${bd.placement_transfer:.4f}")
    print(f"  job execution          : ${bd.execution:.4f}")
    print(f"  runtime reads          : ${bd.runtime_transfer:.4f}\n")

    print("data placement chosen by the LP (fractions per store):")
    for d in workload.data:
        placed = {
            cluster.stores[j].name: round(float(co.xd[d.data_id, j]), 3)
            for j in range(cluster.num_stores)
            if co.xd[d.data_id, j] > 1e-6
        }
        print(f"  {d.name:6s} origin={cluster.stores[d.origin_store].name} -> {placed}")

    print("\nper-machine CPU load (equivalent-CPU-seconds):")
    load = co.machine_cpu_load(inp)
    for m in cluster.machines:
        print(f"  {m.name:10s} ({m.cpu_cost*1e5:.1f} millicent/cpu-s): {load[m.machine_id]:8.1f}")


if __name__ == "__main__":
    main()
